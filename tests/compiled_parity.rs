//! Compiled-bank / interpreter parity properties.
//!
//! The compiled flat-arena classifier bank (`sentinel-ml::compiled`)
//! exists purely as a faster representation of the per-type forest
//! bank: for every fingerprint it must produce the **bit-identical
//! candidate set** the reference tree-walking interpreter produces —
//! including after incremental `add_device_type` calls, after a
//! persistence round-trip, and across `ServiceCell` hot-reload epochs
//! (every published service carries a freshly compiled bank).

use proptest::prelude::*;

use iot_sentinel::core::{
    persist, CandidateScratch, DeviceTypeIdentifier, IdentifierConfig, IoTSecurityService,
    ServiceCell, Trainer, VulnerabilityDatabase,
};
use iot_sentinel::fingerprint::{
    Dataset, Fingerprint, FixedFingerprint, LabeledFingerprint, PacketFeatures, FEATURE_COUNT,
};
use iot_sentinel::ml::{ForestConfig, TreeConfig};

fn fp(tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                v[18] = 40 + *t;
                v[20] = t % 4;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn quick_config() -> IdentifierConfig {
    IdentifierConfig {
        forest: ForestConfig {
            n_trees: 7,
            tree: TreeConfig::default(),
            bootstrap: true,
            threads: 1,
        },
        ..IdentifierConfig::default()
    }
}

fn class_dataset(class_seeds: &[u32], samples_per_class: usize) -> Dataset {
    let mut ds = Dataset::new();
    for (ci, cs) in class_seeds.iter().enumerate() {
        for i in 0..samples_per_class as u32 {
            ds.push(LabeledFingerprint::new(
                format!("T{ci}"),
                fp(&[cs + i, cs + 17, cs + 31]),
            ));
        }
    }
    ds
}

/// Asserts the compiled bank and the interpreter agree on `fixed`,
/// through every stage-one entry point — including the quantized
/// 8-byte-node scan and the coarse-to-fine clustered scan, forced at
/// bank level so banks below the auto-routing thresholds exercise
/// them too.
fn assert_fixed_parity(
    identifier: &DeviceTypeIdentifier,
    scratch: &mut CandidateScratch,
    fixed: &FixedFingerprint,
    what: &str,
) {
    let compiled = identifier.classify_candidates(fixed);
    let interpreted = identifier.classify_candidates_interpreted(fixed);
    assert_eq!(
        compiled, interpreted,
        "compiled and interpreted candidate sets diverge on {what}"
    );
    identifier.classify_candidates_into(fixed, scratch);
    assert_eq!(scratch.candidates(), compiled.as_slice());
    let ids: Vec<_> = identifier.known_type_ids().collect();
    let bank = identifier.compiled_bank();
    let mut quant = Vec::new();
    bank.for_each_accepting_quant(fixed.as_slice(), |i| quant.push(ids[i]));
    assert_eq!(
        quant, interpreted,
        "quantized scan diverged from the interpreter on {what}"
    );
    let mut clustered = Vec::new();
    bank.for_each_accepting_clustered(fixed.as_slice(), |i| clustered.push(ids[i]));
    assert_eq!(
        clustered, interpreted,
        "clustered scan diverged from the interpreter on {what}"
    );
}

fn assert_parity(
    identifier: &DeviceTypeIdentifier,
    scratch: &mut CandidateScratch,
    probe: &Fingerprint,
) {
    let fixed = probe.to_fixed_with(identifier.config().fixed_prefix_len);
    assert_fixed_parity(identifier, scratch, &fixed, &format!("{probe:?}"));
}

/// Probes stuffed with the f32 values most likely to expose a
/// mis-quantized comparison: NaN (all comparisons false), signed
/// zeros (equal but bit-distinct), denormals, and infinities.
fn special_value_probes(identifier: &DeviceTypeIdentifier) -> Vec<(FixedFingerprint, String)> {
    let dims = identifier.config().fixed_prefix_len * FEATURE_COUNT;
    [
        f32::NAN,
        -0.0,
        f32::MIN_POSITIVE / 2.0,
        f32::from_bits(1),
        f32::INFINITY,
        f32::NEG_INFINITY,
    ]
    .iter()
    .enumerate()
    .map(|(si, s)| {
        let mut values = vec![41.5f32; dims];
        for v in values.iter_mut().step_by(si + 2) {
            *v = *s;
        }
        (
            FixedFingerprint::from_values(values),
            format!("special-value probe #{si} ({s})"),
        )
    })
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The compiled bank returns bit-identical candidate sets to the
    /// interpreter over arbitrary trained banks and random probes —
    /// both for in-distribution fingerprints and for alien ones.
    #[test]
    fn compiled_bank_matches_interpreter(
        class_seeds in proptest::collection::vec(0u32..10_000, 2..6),
        samples_per_class in 4usize..8,
        probe_tags in proptest::collection::vec(0u32..12_000, 1..16),
    ) {
        let ds = class_dataset(&class_seeds, samples_per_class);
        let identifier = Trainer::new(quick_config()).train(&ds, 5).unwrap();
        prop_assert_eq!(identifier.compiled_bank().forest_count(), identifier.type_count());
        prop_assert_eq!(
            identifier.compiled_bank().quantized_forest_count(),
            identifier.type_count(),
            "every trained forest must carry a proven-identical quantized form"
        );
        let mut scratch = CandidateScratch::new();
        for tag in probe_tags {
            assert_parity(&identifier, &mut scratch, &fp(&[tag, tag + 17, tag + 31]));
        }
        for (fixed, what) in special_value_probes(&identifier) {
            assert_fixed_parity(&identifier, &mut scratch, &fixed, &what);
        }
    }

    /// Parity survives incremental learning: `add_device_type` trains
    /// one new classifier and recompiles the bank; candidate sets stay
    /// bit-identical for old and new probes alike.
    #[test]
    fn parity_survives_add_device_type(
        class_seeds in proptest::collection::vec(0u32..8_000, 2..4),
        new_seed in 20_000u32..30_000,
        probe_tags in proptest::collection::vec(0u32..32_000, 1..12),
    ) {
        let ds = class_dataset(&class_seeds, 5);
        let mut identifier = Trainer::new(quick_config()).train(&ds, 7).unwrap();
        let new_fps: Vec<Fingerprint> = (0..5u32)
            .map(|i| fp(&[new_seed + i, new_seed + 17, new_seed + 31]))
            .collect();
        identifier.add_device_type("Late", &new_fps, 11).unwrap();
        prop_assert_eq!(identifier.compiled_bank().forest_count(), identifier.type_count());
        prop_assert_eq!(
            identifier.compiled_bank().quantized_forest_count(),
            identifier.type_count(),
            "incrementally appended forests must quantize and stay proven"
        );
        let mut scratch = CandidateScratch::new();
        assert_parity(&identifier, &mut scratch, &new_fps[0]);
        for tag in probe_tags {
            assert_parity(&identifier, &mut scratch, &fp(&[tag, tag + 17, tag + 31]));
        }
        for (fixed, what) in special_value_probes(&identifier) {
            assert_fixed_parity(&identifier, &mut scratch, &fixed, &what);
        }
    }

    /// Parity survives persistence and a `ServiceCell` hot reload: the
    /// loaded identifier recompiles its bank, the published epoch
    /// serves it, and candidate sets still match the interpreter.
    #[test]
    fn parity_survives_reload_epochs(
        class_seeds in proptest::collection::vec(0u32..8_000, 2..4),
        new_seed in 20_000u32..30_000,
        probe_tags in proptest::collection::vec(0u32..32_000, 1..10),
    ) {
        let ds = class_dataset(&class_seeds, 5);
        let identifier = Trainer::new(quick_config()).train(&ds, 9).unwrap();
        let cell = ServiceCell::new(IoTSecurityService::new(
            identifier,
            VulnerabilityDatabase::new(),
        ));

        // Persist the served model, reload it, extend it by one type,
        // and publish the result as epoch 2.
        let mut buf = Vec::new();
        persist::write_identifier(&mut buf, cell.load().identifier()).unwrap();
        let mut reloaded = persist::read_identifier(buf.as_slice()).unwrap();
        let new_fps: Vec<Fingerprint> = (0..5u32)
            .map(|i| fp(&[new_seed + i, new_seed + 17, new_seed + 31]))
            .collect();
        reloaded.add_device_type("Hotswap", &new_fps, 13).unwrap();
        // Serve a hot-first-relocated layout: the physical reorder
        // must be invisible to every candidate set the epoch answers.
        reloaded.optimize_bank_layout();
        prop_assert_eq!(cell.replace_identifier(reloaded).unwrap(), 2);

        let pinned = cell.load();
        let identifier = pinned.identifier();
        prop_assert_eq!(identifier.compiled_bank().forest_count(), identifier.type_count());
        prop_assert_eq!(
            identifier.compiled_bank().quantized_forest_count(),
            identifier.type_count(),
            "a reloaded, extended, relocated bank must re-prove every quantized forest"
        );
        let mut scratch = CandidateScratch::new();
        assert_parity(identifier, &mut scratch, &new_fps[0]);
        for tag in probe_tags {
            assert_parity(identifier, &mut scratch, &fp(&[tag, tag + 17, tag + 31]));
        }
        for (fixed, what) in special_value_probes(identifier) {
            assert_fixed_parity(identifier, &mut scratch, &fixed, &what);
        }
    }
}
