//! The `sentinel` CLI end to end: simulate → dataset → train →
//! identify → assess, all through the binary's file-based interface.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const GATEWAY_MAC: &str = "02:53:47:57:00:01";

fn sentinel(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sentinel"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("binary runs")
}

fn assert_success(output: &Output, what: &str) -> String {
    assert!(
        output.status.success(),
        "{what} failed: {}\n{}",
        String::from_utf8_lossy(&output.stderr),
        String::from_utf8_lossy(&output.stdout),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sentinel-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn full_workflow_simulate_train_identify() {
    let dir = temp_dir("workflow");

    let stdout = assert_success(&sentinel(&dir, &["catalog"]), "catalog");
    assert!(stdout.contains("D-LinkCam"));
    assert_eq!(stdout.lines().count(), 28, "header + 27 types");

    assert_success(
        &sentinel(
            &dir,
            &[
                "simulate",
                "--type",
                "HueBridge",
                "--out",
                "pcaps",
                "--runs",
                "2",
                "--seed",
                "5",
            ],
        ),
        "simulate",
    );
    assert!(dir.join("pcaps/HueBridge-setup-000.pcap").exists());

    // A small dataset is enough for a smoke-level model.
    assert_success(
        &sentinel(
            &dir,
            &["dataset", "--out", "ds.txt", "--runs", "4", "--seed", "3"],
        ),
        "dataset",
    );
    assert_success(
        &sentinel(
            &dir,
            &[
                "train",
                "--dataset",
                "ds.txt",
                "--model",
                "model.txt",
                "--seed",
                "9",
            ],
        ),
        "train",
    );

    let stdout = assert_success(
        &sentinel(
            &dir,
            &[
                "identify",
                "--model",
                "model.txt",
                "--pcap",
                "pcaps/HueBridge-setup-000.pcap",
                "--ignore-mac",
                GATEWAY_MAC,
            ],
        ),
        "identify",
    );
    assert!(
        stdout.contains("HueBridge"),
        "expected HueBridge identification, got: {stdout}"
    );

    let stdout = assert_success(&sentinel(&dir, &["assess", "--type", "EdnetCam"]), "assess");
    assert!(stdout.contains("vulnerable:      true"));
    assert!(stdout.contains("restricted"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn extract_appends_to_dataset_files() {
    let dir = temp_dir("extract");
    assert_success(
        &sentinel(
            &dir,
            &[
                "simulate", "--type", "Aria", "--out", "pcaps", "--runs", "1",
            ],
        ),
        "simulate",
    );
    for _ in 0..2 {
        assert_success(
            &sentinel(
                &dir,
                &[
                    "extract",
                    "--pcap",
                    "pcaps/Aria-setup-000.pcap",
                    "--label",
                    "Aria",
                    "--out",
                    "extra.txt",
                    "--ignore-mac",
                    GATEWAY_MAC,
                ],
            ),
            "extract",
        );
    }
    let contents = std::fs::read_to_string(dir.join("extra.txt")).unwrap();
    assert_eq!(contents.matches("sample Aria").count(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_fails_with_message() {
    let dir = temp_dir("usage");

    let output = sentinel(&dir, &["identify", "--model", "missing.txt"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--pcap"));

    let output = sentinel(&dir, &["simulate", "--type", "NoSuchDevice", "--out", "x"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown device type"));

    let output = sentinel(&dir, &["frobnicate"]);
    assert!(!output.status.success());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn import_builds_dataset_from_directory_tree() {
    let dir = temp_dir("import");
    for device in ["HueBridge", "Withings"] {
        assert_success(
            &sentinel(
                &dir,
                &[
                    "simulate",
                    "--type",
                    device,
                    "--out",
                    &format!("captures/{device}"),
                    "--runs",
                    "2",
                ],
            ),
            "simulate",
        );
    }
    let stdout = assert_success(
        &sentinel(
            &dir,
            &[
                "import",
                "--dir",
                "captures",
                "--out",
                "imported.txt",
                "--ignore-mac",
                GATEWAY_MAC,
            ],
        ),
        "import",
    );
    assert!(
        stdout.contains("wrote 4 fingerprints for 2 types"),
        "{stdout}"
    );

    // An empty or flat directory is a usage error, not a panic.
    std::fs::create_dir_all(dir.join("flat")).unwrap();
    let output = sentinel(&dir, &["import", "--dir", "flat", "--out", "x.txt"]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("subdirectories"));

    let _ = std::fs::remove_dir_all(&dir);
}
