//! Indexed / sharded / quantized / clustered scan parity properties.
//!
//! The feature-bitmap prefilter, the thread-sharded scan, the
//! quantized 8-byte-node scan, and the coarse-to-fine cluster scan
//! exist purely as faster routes through the compiled classifier
//! bank: for every fingerprint, over every bank shape we can randomly
//! construct — including probes stuffed with NaN, signed zeros,
//! denormals, and values one ulp either side of real split
//! thresholds — the candidate set (content **and** order) must be
//! bit-identical to the reference tree-walking interpreter — the same
//! contract `compiled_parity.rs` pins for the plain compiled scan. An index is
//! a correctness hazard (a wrongly skipped forest is a silently lost
//! candidate), so this suite drives the indexed paths through every
//! mutation path a served bank goes through: incremental
//! `add_device_type` appends (which extend the arena and index in
//! place), persistence round-trips, and `ServiceCell` hot-reload
//! epochs.

use proptest::prelude::*;

use iot_sentinel::core::{
    persist, DeviceTypeIdentifier, IdentifierConfig, IoTSecurityService, ServiceCell,
    ShardedScratch, Trainer, VulnerabilityDatabase,
};
use iot_sentinel::fingerprint::{
    Dataset, Fingerprint, FixedFingerprint, LabeledFingerprint, PacketFeatures, FEATURE_COUNT,
};
use iot_sentinel::ml::{ForestConfig, TreeConfig};

fn fp(tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                v[18] = 40 + *t;
                v[20] = t % 4;
                // A protocol-flag column keyed off the tag, so probes
                // differ in which of the 23 feature columns are
                // nonzero — the dimension the prefilter routes on.
                v[(t % 12) as usize] = 1;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn quick_config() -> IdentifierConfig {
    IdentifierConfig {
        forest: ForestConfig {
            n_trees: 7,
            tree: TreeConfig::default(),
            bootstrap: true,
            threads: 1,
        },
        ..IdentifierConfig::default()
    }
}

fn class_dataset(class_seeds: &[u32], samples_per_class: usize) -> Dataset {
    let mut ds = Dataset::new();
    for (ci, cs) in class_seeds.iter().enumerate() {
        for i in 0..samples_per_class as u32 {
            ds.push(LabeledFingerprint::new(
                format!("T{ci}"),
                fp(&[cs + i, cs + 17, cs + 31]),
            ));
        }
    }
    ds
}

/// Asserts every scan route — auto-routed, unindexed full, forced
/// prefilter, quantized, clustered, and sharded at several widths —
/// reproduces the interpreter's candidate set exactly, through the
/// owned-Vec and caller-scratch entry points.
fn assert_fixed_parity(
    identifier: &DeviceTypeIdentifier,
    scratch: &mut ShardedScratch,
    fixed: &FixedFingerprint,
    what: &str,
) {
    let interpreted = identifier.classify_candidates_interpreted(fixed);
    let routed = identifier.classify_candidates(fixed);
    assert_eq!(
        routed, interpreted,
        "auto-routed scan diverged from the interpreter on {what}"
    );
    assert_eq!(
        identifier.classify_candidates_full(fixed),
        interpreted,
        "full scan diverged from the interpreter on {what}"
    );
    // The hot path only consults the prefilter / cluster index past
    // their size thresholds; force each route at bank level so banks
    // of *every* size exercise the skip-to-cached-verdict, the
    // 8-byte-node, and the one-walk-per-group scans.
    let ids: Vec<_> = identifier.known_type_ids().collect();
    let bank = identifier.compiled_bank();
    let mut forced = Vec::new();
    bank.for_each_accepting_indexed(fixed.as_slice(), |i| forced.push(ids[i]));
    assert_eq!(
        forced, interpreted,
        "forced prefilter scan diverged from the interpreter on {what}"
    );
    let mut quant = Vec::new();
    bank.for_each_accepting_quant(fixed.as_slice(), |i| quant.push(ids[i]));
    assert_eq!(
        quant, interpreted,
        "quantized scan diverged from the interpreter on {what}"
    );
    let mut clustered = Vec::new();
    bank.for_each_accepting_clustered(fixed.as_slice(), |i| clustered.push(ids[i]));
    assert_eq!(
        clustered, interpreted,
        "clustered scan diverged from the interpreter on {what}"
    );
    for shards in [1usize, 2, 3, 7] {
        identifier.classify_candidates_sharded_into(fixed, shards, scratch);
        assert_eq!(
            scratch.candidates(),
            interpreted.as_slice(),
            "sharded({shards}) scan diverged on {what}"
        );
    }
}

fn assert_indexed_parity(
    identifier: &DeviceTypeIdentifier,
    scratch: &mut ShardedScratch,
    probe: &Fingerprint,
) {
    let fixed = probe.to_fixed_with(identifier.config().fixed_prefix_len);
    assert_fixed_parity(identifier, scratch, &fixed, &format!("{probe:?}"));
}

fn ulp_up(x: f32) -> f32 {
    if !x.is_finite() {
        x
    } else if x == 0.0 {
        f32::from_bits(1)
    } else if x > 0.0 {
        f32::from_bits(x.to_bits() + 1)
    } else {
        f32::from_bits(x.to_bits() - 1)
    }
}

fn ulp_down(x: f32) -> f32 {
    if !x.is_finite() {
        x
    } else if x == 0.0 {
        -f32::from_bits(1)
    } else if x > 0.0 {
        f32::from_bits(x.to_bits() - 1)
    } else {
        f32::from_bits(x.to_bits() + 1)
    }
}

/// Fixed-width probes packed with the IEEE-754 edge cases the
/// quantized bucket comparison must not reorder: NaN, ±0.0,
/// denormals, infinities, and values exactly on / one ulp either side
/// of real split thresholds harvested from the compiled arena.
fn adversarial_fixed_probes(identifier: &DeviceTypeIdentifier) -> Vec<(FixedFingerprint, String)> {
    let dims = identifier.config().fixed_prefix_len * FEATURE_COUNT;
    let specials = [
        f32::NAN,
        0.0,
        -0.0,
        f32::MIN_POSITIVE / 2.0, // denormal
        f32::from_bits(1),       // smallest positive denormal
        -f32::from_bits(1),
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::MAX,
    ];
    let mut probes = Vec::new();
    for (si, s) in specials.iter().enumerate() {
        let mut values = vec![0.0f32; dims];
        for v in values.iter_mut().skip(si % 3).step_by(si + 2) {
            *v = *s;
        }
        probes.push((
            FixedFingerprint::from_values(values),
            format!("special-value probe #{si} ({s})"),
        ));
    }
    // Straddle real split thresholds: exactly at, one ulp below, one
    // ulp above — the three points where a quantized bucket compare
    // could flip a branch the f32 compare would not.
    let bank = identifier.compiled_bank();
    for (ni, node) in bank.nodes().iter().enumerate().step_by(7).take(24) {
        let feature = usize::from(node.feature);
        for (which, value) in [
            ("at", node.threshold),
            ("just below", ulp_down(node.threshold)),
            ("just above", ulp_up(node.threshold)),
        ] {
            let mut values = vec![0.0f32; dims];
            // Paint the whole stripe so the probe hits every forest's
            // use of this feature column, not just one node.
            for v in values
                .iter_mut()
                .skip(feature % FEATURE_COUNT)
                .step_by(FEATURE_COUNT)
            {
                *v = value;
            }
            if feature < dims {
                values[feature] = value;
            }
            probes.push((
                FixedFingerprint::from_values(values),
                format!("node {ni} {which} threshold {}", node.threshold),
            ));
        }
    }
    probes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random banks × random fingerprints: the indexed and sharded
    /// candidate sets are bit-identical to the interpreter, for
    /// in-distribution and alien probes alike.
    #[test]
    fn indexed_scan_matches_interpreter(
        class_seeds in proptest::collection::vec(0u32..10_000, 2..6),
        samples_per_class in 4usize..8,
        probe_tags in proptest::collection::vec(0u32..12_000, 1..16),
    ) {
        let ds = class_dataset(&class_seeds, samples_per_class);
        let identifier = Trainer::new(quick_config()).train(&ds, 5).unwrap();
        let stats = identifier.bank_stats();
        prop_assert!(stats.indexed, "trained banks must carry a usable index");
        prop_assert_eq!(stats.stripes, 23);
        prop_assert_eq!(stats.forests, identifier.type_count());
        prop_assert_eq!(
            stats.quantized_forests, stats.forests,
            "every trained forest must carry a proven-identical quantized form"
        );
        let mut scratch = ShardedScratch::new();
        for tag in probe_tags {
            assert_indexed_parity(&identifier, &mut scratch, &fp(&[tag, tag + 17, tag + 31]));
        }
        // The all-default fingerprint exercises the pure
        // cached-verdict route (its nonzero bitmap is empty).
        assert_indexed_parity(&identifier, &mut scratch, &Fingerprint::from_columns(Vec::new()));
        // NaN / ±0.0 / denormal / bucket-edge probes: the quantized
        // and clustered routes must not reorder a single comparison.
        for (fixed, what) in adversarial_fixed_probes(&identifier) {
            assert_fixed_parity(&identifier, &mut scratch, &fixed, &what);
        }
    }

    /// Parity survives incremental learning: `add_device_type` appends
    /// the new forest's node region and index row in place (no
    /// recompilation of existing regions) and candidate sets stay
    /// bit-identical for old and new probes alike — across several
    /// consecutive appends.
    #[test]
    fn parity_survives_incremental_appends(
        class_seeds in proptest::collection::vec(0u32..8_000, 2..4),
        new_seeds in proptest::collection::vec(20_000u32..30_000, 1..4),
        probe_tags in proptest::collection::vec(0u32..32_000, 1..10),
    ) {
        let ds = class_dataset(&class_seeds, 5);
        let mut identifier = Trainer::new(quick_config()).train(&ds, 7).unwrap();
        let mut scratch = ShardedScratch::new();
        for (round, new_seed) in new_seeds.iter().enumerate() {
            let new_fps: Vec<Fingerprint> = (0..5u32)
                .map(|i| fp(&[new_seed + i, new_seed + 17, new_seed + 31]))
                .collect();
            identifier
                .add_device_type(&format!("Late{round}"), &new_fps, 11 + round as u64)
                .unwrap();
            prop_assert_eq!(identifier.bank_stats().forests, identifier.type_count());
            prop_assert!(identifier.bank_stats().indexed);
            prop_assert_eq!(
                identifier.bank_stats().quantized_forests,
                identifier.bank_stats().forests,
                "appended forests must quantize and stay proven"
            );
            assert_indexed_parity(&identifier, &mut scratch, &new_fps[0]);
        }
        for tag in &probe_tags {
            assert_indexed_parity(&identifier, &mut scratch, &fp(&[*tag, tag + 17, tag + 31]));
        }
        // Hot-first relocation is purely physical: re-laying the arena
        // most-accepted-first must leave every candidate set — and the
        // quantization / cluster statistics — untouched, and further
        // appends must keep working on the relocated bank.
        let before = identifier.bank_stats();
        identifier.optimize_bank_layout();
        let after = identifier.bank_stats();
        prop_assert_eq!(after.forests, before.forests);
        prop_assert_eq!(after.quantized_forests, before.quantized_forests);
        prop_assert_eq!(after.cluster_groups, before.cluster_groups);
        for tag in &probe_tags {
            assert_indexed_parity(&identifier, &mut scratch, &fp(&[*tag, tag + 17, tag + 31]));
        }
        let post_fps: Vec<Fingerprint> = (0..5u32)
            .map(|i| fp(&[40_000 + i, 40_017, 40_031]))
            .collect();
        identifier.add_device_type("PostLayout", &post_fps, 97).unwrap();
        prop_assert_eq!(
            identifier.bank_stats().quantized_forests,
            identifier.bank_stats().forests
        );
        assert_indexed_parity(&identifier, &mut scratch, &post_fps[0]);
        for (fixed, what) in adversarial_fixed_probes(&identifier) {
            assert_fixed_parity(&identifier, &mut scratch, &fixed, &what);
        }
    }

    /// Parity survives persistence and `ServiceCell` hot-reload
    /// epochs: the reloaded identifier recompiles (and re-indexes) its
    /// bank, an incremental append extends it, the published epoch
    /// serves it — and every scan route still matches the interpreter.
    #[test]
    fn parity_survives_reload_epochs(
        class_seeds in proptest::collection::vec(0u32..8_000, 2..4),
        new_seed in 20_000u32..30_000,
        probe_tags in proptest::collection::vec(0u32..32_000, 1..10),
    ) {
        let ds = class_dataset(&class_seeds, 5);
        let identifier = Trainer::new(quick_config()).train(&ds, 9).unwrap();
        let cell = ServiceCell::new(IoTSecurityService::new(
            identifier,
            VulnerabilityDatabase::new(),
        ));

        let mut buf = Vec::new();
        persist::write_identifier(&mut buf, cell.load().identifier()).unwrap();
        let mut reloaded = persist::read_identifier(buf.as_slice()).unwrap();
        prop_assert!(reloaded.bank_stats().indexed, "reload must re-index the bank");
        let new_fps: Vec<Fingerprint> = (0..5u32)
            .map(|i| fp(&[new_seed + i, new_seed + 17, new_seed + 31]))
            .collect();
        reloaded.add_device_type("Hotswap", &new_fps, 13).unwrap();
        prop_assert_eq!(
            reloaded.bank_stats().quantized_forests,
            reloaded.bank_stats().forests,
            "a reloaded-and-extended bank must re-prove every quantized forest"
        );
        // Publish a hot-first-relocated bank: the served epoch must be
        // bit-identical to the interpreter like any other.
        reloaded.optimize_bank_layout();
        prop_assert_eq!(cell.replace_identifier(reloaded).unwrap(), 2);

        let pinned = cell.load();
        let identifier = pinned.identifier();
        prop_assert_eq!(identifier.bank_stats().forests, identifier.type_count());
        prop_assert!(identifier.bank_stats().indexed);
        prop_assert_eq!(
            identifier.bank_stats().quantized_forests,
            identifier.bank_stats().forests
        );
        let mut scratch = ShardedScratch::new();
        assert_indexed_parity(identifier, &mut scratch, &new_fps[0]);
        for tag in probe_tags {
            assert_indexed_parity(identifier, &mut scratch, &fp(&[tag, tag + 17, tag + 31]));
        }
        for (fixed, what) in adversarial_fixed_probes(identifier) {
            assert_fixed_parity(identifier, &mut scratch, &fixed, &what);
        }
    }
}
