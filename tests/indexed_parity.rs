//! Indexed / sharded scan parity properties.
//!
//! The feature-bitmap prefilter and the thread-sharded scan exist
//! purely as faster routes through the compiled classifier bank: for
//! every fingerprint, over every bank shape we can randomly construct,
//! the candidate set (content **and** order) must be bit-identical to
//! the reference tree-walking interpreter — the same contract
//! `compiled_parity.rs` pins for the plain compiled scan. An index is
//! a correctness hazard (a wrongly skipped forest is a silently lost
//! candidate), so this suite drives the indexed paths through every
//! mutation path a served bank goes through: incremental
//! `add_device_type` appends (which extend the arena and index in
//! place), persistence round-trips, and `ServiceCell` hot-reload
//! epochs.

use proptest::prelude::*;

use iot_sentinel::core::{
    persist, IdentifierConfig, IoTSecurityService, ServiceCell, ShardedScratch, Trainer,
    VulnerabilityDatabase,
};
use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::ml::{ForestConfig, TreeConfig};

fn fp(tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                v[18] = 40 + *t;
                v[20] = t % 4;
                // A protocol-flag column keyed off the tag, so probes
                // differ in which of the 23 feature columns are
                // nonzero — the dimension the prefilter routes on.
                v[(t % 12) as usize] = 1;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn quick_config() -> IdentifierConfig {
    IdentifierConfig {
        forest: ForestConfig {
            n_trees: 7,
            tree: TreeConfig::default(),
            bootstrap: true,
            threads: 1,
        },
        ..IdentifierConfig::default()
    }
}

fn class_dataset(class_seeds: &[u32], samples_per_class: usize) -> Dataset {
    let mut ds = Dataset::new();
    for (ci, cs) in class_seeds.iter().enumerate() {
        for i in 0..samples_per_class as u32 {
            ds.push(LabeledFingerprint::new(
                format!("T{ci}"),
                fp(&[cs + i, cs + 17, cs + 31]),
            ));
        }
    }
    ds
}

/// Asserts the indexed scan, the unindexed full scan, and the sharded
/// scan at several widths all reproduce the interpreter's candidate
/// set exactly, through the owned-Vec and caller-scratch entry points.
fn assert_indexed_parity(
    identifier: &iot_sentinel::core::DeviceTypeIdentifier,
    scratch: &mut ShardedScratch,
    probe: &Fingerprint,
) {
    let fixed = probe.to_fixed_with(identifier.config().fixed_prefix_len);
    let interpreted = identifier.classify_candidates_interpreted(&fixed);
    let indexed = identifier.classify_candidates(&fixed);
    assert_eq!(
        indexed, interpreted,
        "indexed scan diverged from the interpreter on {probe:?}"
    );
    assert_eq!(
        identifier.classify_candidates_full(&fixed),
        interpreted,
        "full scan diverged from the interpreter on {probe:?}"
    );
    // The hot path only consults the prefilter past its size
    // threshold; force it at bank level so banks of *every* size
    // exercise the skip-to-cached-verdict route.
    let ids: Vec<_> = identifier.known_type_ids().collect();
    let mut forced = Vec::new();
    identifier
        .compiled_bank()
        .for_each_accepting_indexed(fixed.as_slice(), |i| forced.push(ids[i]));
    assert_eq!(
        forced, interpreted,
        "forced prefilter scan diverged from the interpreter on {probe:?}"
    );
    for shards in [1usize, 2, 3, 7] {
        identifier.classify_candidates_sharded_into(&fixed, shards, scratch);
        assert_eq!(
            scratch.candidates(),
            interpreted.as_slice(),
            "sharded({shards}) scan diverged on {probe:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random banks × random fingerprints: the indexed and sharded
    /// candidate sets are bit-identical to the interpreter, for
    /// in-distribution and alien probes alike.
    #[test]
    fn indexed_scan_matches_interpreter(
        class_seeds in proptest::collection::vec(0u32..10_000, 2..6),
        samples_per_class in 4usize..8,
        probe_tags in proptest::collection::vec(0u32..12_000, 1..16),
    ) {
        let ds = class_dataset(&class_seeds, samples_per_class);
        let identifier = Trainer::new(quick_config()).train(&ds, 5).unwrap();
        let stats = identifier.bank_stats();
        prop_assert!(stats.indexed, "trained banks must carry a usable index");
        prop_assert_eq!(stats.stripes, 23);
        prop_assert_eq!(stats.forests, identifier.type_count());
        let mut scratch = ShardedScratch::new();
        for tag in probe_tags {
            assert_indexed_parity(&identifier, &mut scratch, &fp(&[tag, tag + 17, tag + 31]));
        }
        // The all-default fingerprint exercises the pure
        // cached-verdict route (its nonzero bitmap is empty).
        assert_indexed_parity(&identifier, &mut scratch, &Fingerprint::from_columns(Vec::new()));
    }

    /// Parity survives incremental learning: `add_device_type` appends
    /// the new forest's node region and index row in place (no
    /// recompilation of existing regions) and candidate sets stay
    /// bit-identical for old and new probes alike — across several
    /// consecutive appends.
    #[test]
    fn parity_survives_incremental_appends(
        class_seeds in proptest::collection::vec(0u32..8_000, 2..4),
        new_seeds in proptest::collection::vec(20_000u32..30_000, 1..4),
        probe_tags in proptest::collection::vec(0u32..32_000, 1..10),
    ) {
        let ds = class_dataset(&class_seeds, 5);
        let mut identifier = Trainer::new(quick_config()).train(&ds, 7).unwrap();
        let mut scratch = ShardedScratch::new();
        for (round, new_seed) in new_seeds.iter().enumerate() {
            let new_fps: Vec<Fingerprint> = (0..5u32)
                .map(|i| fp(&[new_seed + i, new_seed + 17, new_seed + 31]))
                .collect();
            identifier
                .add_device_type(&format!("Late{round}"), &new_fps, 11 + round as u64)
                .unwrap();
            prop_assert_eq!(identifier.bank_stats().forests, identifier.type_count());
            prop_assert!(identifier.bank_stats().indexed);
            assert_indexed_parity(&identifier, &mut scratch, &new_fps[0]);
        }
        for tag in probe_tags {
            assert_indexed_parity(&identifier, &mut scratch, &fp(&[tag, tag + 17, tag + 31]));
        }
    }

    /// Parity survives persistence and `ServiceCell` hot-reload
    /// epochs: the reloaded identifier recompiles (and re-indexes) its
    /// bank, an incremental append extends it, the published epoch
    /// serves it — and every scan route still matches the interpreter.
    #[test]
    fn parity_survives_reload_epochs(
        class_seeds in proptest::collection::vec(0u32..8_000, 2..4),
        new_seed in 20_000u32..30_000,
        probe_tags in proptest::collection::vec(0u32..32_000, 1..10),
    ) {
        let ds = class_dataset(&class_seeds, 5);
        let identifier = Trainer::new(quick_config()).train(&ds, 9).unwrap();
        let cell = ServiceCell::new(IoTSecurityService::new(
            identifier,
            VulnerabilityDatabase::new(),
        ));

        let mut buf = Vec::new();
        persist::write_identifier(&mut buf, cell.load().identifier()).unwrap();
        let mut reloaded = persist::read_identifier(buf.as_slice()).unwrap();
        prop_assert!(reloaded.bank_stats().indexed, "reload must re-index the bank");
        let new_fps: Vec<Fingerprint> = (0..5u32)
            .map(|i| fp(&[new_seed + i, new_seed + 17, new_seed + 31]))
            .collect();
        reloaded.add_device_type("Hotswap", &new_fps, 13).unwrap();
        prop_assert_eq!(cell.replace_identifier(reloaded).unwrap(), 2);

        let pinned = cell.load();
        let identifier = pinned.identifier();
        prop_assert_eq!(identifier.bank_stats().forests, identifier.type_count());
        prop_assert!(identifier.bank_stats().indexed);
        let mut scratch = ShardedScratch::new();
        assert_indexed_parity(identifier, &mut scratch, &new_fps[0]);
        for tag in probe_tags {
            assert_indexed_parity(identifier, &mut scratch, &fp(&[tag, tag + 17, tag + 31]));
        }
    }
}
