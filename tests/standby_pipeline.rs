//! §VIII-A standby identification across crates: standby-trained
//! models must identify standby windows well, setup-trained models
//! must not transfer to standby traffic, and the sibling confusion
//! structure must persist across behavioural domains.

use iot_sentinel::core::eval::evaluate_transfer;
use iot_sentinel::core::IdentifierConfig;
use iot_sentinel::devices::{catalog, generate_dataset, standby, NetworkEnvironment};
use iot_sentinel::ml::{ForestConfig, TreeConfig};

fn fast_config() -> IdentifierConfig {
    IdentifierConfig {
        forest: ForestConfig {
            n_trees: 15,
            tree: TreeConfig::default(),
            bootstrap: true,
            threads: 1,
        },
        ..IdentifierConfig::default()
    }
}

/// A compact, distinct-type subset keeps these tests fast while still
/// exercising several behaviour classes (scale, hub, camera, plug).
const SUBSET: [&str; 6] = [
    "Aria",
    "HueBridge",
    "EdimaxCam",
    "WeMoSwitch",
    "MAXGateway",
    "Lightify",
];

fn subset(
    profiles: &[iot_sentinel::devices::DeviceProfile],
) -> Vec<iot_sentinel::devices::DeviceProfile> {
    profiles
        .iter()
        .filter(|p| SUBSET.contains(&p.type_name.as_str()))
        .cloned()
        .collect()
}

#[test]
fn standby_trained_models_identify_standby_windows() {
    let env = NetworkEnvironment::default();
    let standby_profiles = subset(&standby::standby_catalog());
    let train = generate_dataset(&standby_profiles, &env, 10, 41);
    let test = generate_dataset(&standby_profiles, &env, 4, 99);
    let report = evaluate_transfer(&train, &test, &fast_config(), 17).unwrap();
    assert!(
        report.global_accuracy() > 0.85,
        "distinct types should identify well from standby traffic: {}",
        report.global_accuracy()
    );
}

#[test]
fn setup_models_do_not_transfer_to_standby() {
    let env = NetworkEnvironment::default();
    let setup_train = generate_dataset(&subset(&catalog::standard_catalog()), &env, 10, 41);
    let standby_test = generate_dataset(&subset(&standby::standby_catalog()), &env, 4, 99);
    let report = evaluate_transfer(&setup_train, &standby_test, &fast_config(), 17).unwrap();
    assert!(
        report.global_accuracy() < 0.5,
        "setup-trained models must not transfer to standby traffic: {}",
        report.global_accuracy()
    );
}

#[test]
fn sibling_confusion_persists_in_standby() {
    let env = NetworkEnvironment::default();
    let profiles: Vec<_> = standby::standby_catalog()
        .into_iter()
        .filter(|p| {
            ["SmarterCoffee", "iKettle2", "HueBridge", "Aria"].contains(&p.type_name.as_str())
        })
        .collect();
    let train = generate_dataset(&profiles, &env, 10, 41);
    let test = generate_dataset(&profiles, &env, 6, 99);
    let report = evaluate_transfer(&train, &test, &fast_config(), 17).unwrap();

    let acc = |name: &str| {
        report
            .per_type_accuracy()
            .into_iter()
            .find(|(l, _)| l == name)
            .map(|(_, a)| a)
            .unwrap_or(0.0)
    };
    // The identical-firmware appliances stay confusable in standby...
    let smarter = (acc("SmarterCoffee") + acc("iKettle2")) / 2.0;
    assert!(
        smarter < 0.95,
        "identical Smarter siblings should stay confusable: {smarter}"
    );
    // ...while distinct types stay clean.
    assert!(acc("HueBridge") > 0.9, "HueBridge: {}", acc("HueBridge"));
    assert!(acc("Aria") > 0.9, "Aria: {}", acc("Aria"));
}
