//! End-to-end identification across crates: device simulation →
//! capture monitoring → fingerprinting → two-stage identification.

use iot_sentinel::core::{IdentifierConfig, Trainer};
use iot_sentinel::devices::{capture_setups, catalog, generate_dataset, NetworkEnvironment};
use iot_sentinel::fingerprint::FingerprintExtractor;
use iot_sentinel::ml::{ForestConfig, TreeConfig};

/// A light config so debug-mode tests stay fast.
fn fast_config() -> IdentifierConfig {
    IdentifierConfig {
        forest: ForestConfig {
            n_trees: 15,
            tree: TreeConfig::default(),
            bootstrap: true,
            threads: 1,
        },
        ..IdentifierConfig::default()
    }
}

/// Distinct device types are identified near-perfectly from held-out
/// setups the trainer never saw.
#[test]
fn distinct_types_identify_from_fresh_captures() {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let distinct = [
        "Aria",
        "HueBridge",
        "Withings",
        "MAXGateway",
        "WeMoLink",
        "EdimaxCam",
        "D-LinkDayCam",
    ];
    let selected: Vec<_> = profiles
        .iter()
        .filter(|p| distinct.contains(&p.type_name.as_str()))
        .cloned()
        .collect();
    let dataset = generate_dataset(&selected, &env, 8, 1);
    let identifier = Trainer::new(fast_config()).train(&dataset, 9).unwrap();

    let mut correct = 0;
    let mut total = 0;
    for profile in &selected {
        // Fresh captures with a different seed than training.
        for capture in capture_setups(profile, &env, 3, 0xF00D) {
            let fp = FingerprintExtractor::extract_from(capture.packets());
            let result = identifier.identify(&fp);
            if identifier.name_of(&result) == Some(profile.type_name.as_str()) {
                correct += 1;
            }
            total += 1;
        }
    }
    let accuracy = f64::from(correct) / f64::from(total);
    assert!(
        accuracy >= 0.9,
        "distinct types should identify near-perfectly, got {accuracy} ({correct}/{total})"
    );
}

/// Sibling devices (TP-Link plug pair) confuse mutually but stay
/// within the pair — the Table III block structure.
#[test]
fn sibling_pair_confusion_stays_within_pair() {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let selected: Vec<_> = profiles
        .iter()
        .filter(|p| {
            [
                "TP-LinkPlugHS110",
                "TP-LinkPlugHS100",
                "HueBridge",
                "Aria",
                "MAXGateway",
                "Withings",
                "EdimaxCam",
                "WeMoLink",
                "Lightify",
                "EdnetCam",
                "D-LinkDayCam",
                "D-LinkHomeHub",
            ]
            .contains(&p.type_name.as_str())
        })
        .cloned()
        .collect();
    let dataset = generate_dataset(&selected, &env, 8, 2);
    let identifier = Trainer::new(fast_config()).train(&dataset, 10).unwrap();

    let pair = ["TP-LinkPlugHS110", "TP-LinkPlugHS100"];
    let mut within_pair = 0;
    let mut total = 0;
    for name in pair {
        let profile = profiles.iter().find(|p| p.type_name == name).unwrap();
        for capture in capture_setups(profile, &env, 4, 0xCAFE) {
            let fp = FingerprintExtractor::extract_from(capture.packets());
            let result = identifier.identify(&fp);
            if let Some(predicted) = identifier.name_of(&result) {
                if pair.contains(&predicted) {
                    within_pair += 1;
                }
            }
            total += 1;
        }
    }
    assert!(
        within_pair * 10 >= total * 8,
        "plug predictions should stay within the sibling pair: {within_pair}/{total}"
    );
}

/// The evaluation dataset has the paper's shape: 540 fingerprints, 27
/// labels, each fingerprint non-trivial.
#[test]
fn dataset_statistics_match_paper_setup() {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let dataset = generate_dataset(&profiles, &env, 20, 3);
    assert_eq!(dataset.len(), 540, "27 types x 20 setups");
    assert_eq!(dataset.labels().len(), 27);
    for sample in dataset.iter() {
        assert!(
            sample.fingerprint().len() >= 2,
            "{} produced a trivial fingerprint",
            sample.label()
        );
        assert_eq!(sample.fixed().dims(), 276);
    }
}
