//! Incremental learning (§IV-B-1) and the legacy re-keying flow
//! (§VIII-A) across crates.

use iot_sentinel::core::{IdentifierConfig, Trainer};
use iot_sentinel::devices::{capture_setups, catalog, generate_dataset, NetworkEnvironment};
use iot_sentinel::fingerprint::FingerprintExtractor;
use iot_sentinel::gateway::{Overlay, OverlayMap, WpsRegistrar};
use iot_sentinel::ml::{ForestConfig, TreeConfig};
use iot_sentinel::net::MacAddr;

fn fast_config() -> IdentifierConfig {
    IdentifierConfig {
        forest: ForestConfig {
            n_trees: 15,
            tree: TreeConfig::default(),
            bootstrap: true,
            threads: 1,
        },
        ..IdentifierConfig::default()
    }
}

/// Adding a new device type must not change predictions for existing
/// types (no relearning of existing classifiers).
#[test]
fn incremental_type_addition_preserves_existing_predictions() {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let initial = [
        "Aria",
        "HueBridge",
        "Withings",
        "MAXGateway",
        "WeMoLink",
        "EdimaxCam",
    ];
    let selected: Vec<_> = profiles
        .iter()
        .filter(|p| initial.contains(&p.type_name.as_str()))
        .cloned()
        .collect();
    let dataset = generate_dataset(&selected, &env, 8, 6);
    let mut identifier = Trainer::new(fast_config()).train(&dataset, 31).unwrap();

    // Record predictions on held-out captures before the addition.
    let probes: Vec<_> = selected
        .iter()
        .flat_map(|p| capture_setups(p, &env, 2, 0xEE))
        .map(|c| FingerprintExtractor::extract_from(c.packets()))
        .collect();
    let before: Vec<_> = probes
        .iter()
        .map(|fp| identifier.identify(fp).device_type())
        .collect();

    // Add a brand-new type incrementally.
    let newcomer = profiles.iter().find(|p| p.type_name == "Lightify").unwrap();
    let new_fps: Vec<_> = capture_setups(newcomer, &env, 8, 0x11)
        .iter()
        .map(|c| FingerprintExtractor::extract_from(c.packets()))
        .collect();
    identifier
        .add_device_type("Lightify", &new_fps, 77)
        .unwrap();
    assert_eq!(identifier.type_count(), 7);

    // Existing predictions unchanged.
    let after: Vec<_> = probes
        .iter()
        .map(|fp| identifier.identify(fp).device_type())
        .collect();
    assert_eq!(before, after, "existing classifiers must be untouched");

    // The new type is recognised.
    let fresh = capture_setups(newcomer, &env, 2, 0x22);
    for capture in fresh {
        let fp = FingerprintExtractor::extract_from(capture.packets());
        let result = identifier.identify(&fp);
        assert_eq!(identifier.name_of(&result), Some("Lightify"));
    }
}

/// §VIII-A: deprecating the legacy network PSK re-keys WPS-capable
/// devices into device-specific credentials; clean devices move to the
/// trusted overlay, the rest stay untrusted or need manual
/// re-introduction.
#[test]
fn legacy_rekeying_flow() {
    let mut registrar = WpsRegistrar::new();
    let mut overlays = OverlayMap::new();
    let mac = |i: u8| MacAddr::new([2, 0x1e, 0, 0, 0, i]);

    // A legacy installation: everything shares the network PSK, all in
    // the untrusted overlay initially.
    let devices = [
        (mac(1), true, true),  // wps-capable, clean
        (mac(2), true, false), // wps-capable, vulnerable
        (mac(3), false, true), // no wps, clean
    ];
    for (m, wps, _) in devices {
        registrar.register_legacy(m, wps);
        overlays.assign(m, Overlay::Untrusted);
    }

    let report = registrar.deprecate_network_psk();
    assert_eq!(report.rekeyed, vec![mac(1), mac(2)]);
    assert_eq!(report.needs_manual_reintroduction, vec![mac(3)]);

    // Identification + vulnerability assessment decides overlay for
    // re-keyed devices: clean → trusted, vulnerable stays untrusted.
    for (m, _, clean) in devices.iter().take(2) {
        if *clean {
            overlays.assign(*m, Overlay::Trusted);
        }
    }
    assert_eq!(overlays.overlay_of(mac(1)), Overlay::Trusted);
    assert_eq!(overlays.overlay_of(mac(2)), Overlay::Untrusted);
    // The trusted and untrusted overlays stay mutually isolated.
    assert!(!overlays.permits_peer_traffic(mac(1), mac(2)));
    // Credentials reflect the re-keying.
    assert!(registrar.credential(mac(1)).unwrap().device_specific);
    assert!(registrar.credential(mac(3)).is_none());
    assert!(!registrar.network_psk_active());
}
