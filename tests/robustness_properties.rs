//! Property-based tests for the extension surfaces: model
//! persistence, the notification lifecycle and incident correlation.

use proptest::prelude::*;

use iot_sentinel::core::incidents::{
    CorrelatorConfig, GatewayId, IncidentCorrelator, IncidentKind, IncidentReport,
};
use iot_sentinel::core::{persist, IdentifierConfig, Trainer};
use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::gateway::{NotificationCenter, NotificationState, SideChannel};
use iot_sentinel::ml::{ForestConfig, TreeConfig};
use iot_sentinel::net::{MacAddr, SimDuration, SimTime};

fn fp(tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                v[18] = 40 + *t;
                v[20] = t % 4;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn quick_config() -> IdentifierConfig {
    IdentifierConfig {
        forest: ForestConfig {
            n_trees: 7,
            tree: TreeConfig::default(),
            bootstrap: true,
            threads: 1,
        },
        ..IdentifierConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Persisted identifiers reproduce every identification exactly,
    /// for arbitrary class layouts and fingerprint contents.
    #[test]
    fn persisted_identifier_is_behaviourally_identical(
        class_seeds in proptest::collection::vec(0u32..10_000, 2..5),
        samples_per_class in 4usize..8,
        probe_tags in proptest::collection::vec(0u32..12_000, 1..12),
    ) {
        let mut ds = Dataset::new();
        for (ci, cs) in class_seeds.iter().enumerate() {
            for i in 0..samples_per_class as u32 {
                ds.push(LabeledFingerprint::new(
                    format!("T{ci}"),
                    fp(&[cs + i, cs + 17, cs + 31]),
                ));
            }
        }
        let identifier = Trainer::new(quick_config()).train(&ds, 3).unwrap();
        let mut buf = Vec::new();
        persist::write_identifier(&mut buf, &identifier).unwrap();
        let back = persist::read_identifier(buf.as_slice()).unwrap();

        prop_assert_eq!(back.known_types(), identifier.known_types());
        for tag in probe_tags {
            let probe = fp(&[tag, tag + 17, tag + 31]);
            prop_assert_eq!(back.identify(&probe), identifier.identify(&probe));
        }
    }

    /// Truncating a model document anywhere yields an error, never a
    /// panic and never a silently wrong model.
    #[test]
    fn truncated_model_never_panics(cut in 0.0f64..1.0) {
        let mut ds = Dataset::new();
        for i in 0..5u32 {
            ds.push(LabeledFingerprint::new("A", fp(&[i, 17, 31])));
            ds.push(LabeledFingerprint::new("B", fp(&[500 + i, 517, 531])));
        }
        let identifier = Trainer::new(quick_config()).train(&ds, 4).unwrap();
        let mut buf = Vec::new();
        persist::write_identifier(&mut buf, &identifier).unwrap();
        let keep = ((buf.len() as f64) * cut) as usize;
        if keep < buf.len() {
            buf.truncate(keep);
            prop_assert!(persist::read_identifier(buf.as_slice()).is_err());
        }
    }

    /// Notification lifecycle invariants under arbitrary event
    /// sequences: ids stay unique, per-device advisories stay
    /// deduplicated, and `RemovalVerified` implies the device was
    /// silent for the whole quiet period beforehand.
    #[test]
    fn notification_center_invariants(
        events in proptest::collection::vec((0u8..4, 0u8..6, 0u64..500), 1..60),
    ) {
        let quiet = SimDuration::from_secs(60);
        let mut center = NotificationCenter::new(quiet);
        let mut now = SimTime::from_secs(0);
        let mut last_traffic: std::collections::HashMap<MacAddr, SimTime> =
            std::collections::HashMap::new();
        let mut issued: Vec<u64> = Vec::new();

        for (op, device, advance) in events {
            now += SimDuration::from_secs(advance);
            let mac = MacAddr::new([2, 0, 0, 0, 0, device]);
            match op {
                0 => {
                    let id = center.advise_removal(mac, None, SideChannel::Bluetooth, now);
                    if !issued.contains(&id) {
                        issued.push(id);
                    }
                    // Dedup: re-advising the same device returns the same id.
                    prop_assert_eq!(
                        center.advise_removal(mac, None, SideChannel::Bluetooth, now),
                        id
                    );
                }
                1 => {
                    center.observe_traffic(mac, now);
                    last_traffic.insert(mac, now);
                }
                2 => {
                    if let Some(n) = center.for_device(mac) {
                        let id = n.id();
                        center.acknowledge(id).unwrap();
                    }
                }
                _ => {
                    for id in center.verify_removals(now) {
                        let n = center.get(id).unwrap();
                        let last = last_traffic
                            .get(&n.mac())
                            .copied()
                            .unwrap_or(n.issued_at());
                        prop_assert!(
                            now.duration_since(last) >= quiet,
                            "verified while device was recently active"
                        );
                    }
                }
            }
        }
        // Ids are unique and every issued advisory is retrievable.
        let mut sorted = issued.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), issued.len());
        for id in issued {
            prop_assert!(center.get(id).is_some());
        }
        // A verified advisory's device has been silent for >= quiet.
        for n in center.open() {
            prop_assert_ne!(n.state(), NotificationState::RemovalVerified);
        }
    }

    /// Correlator flagging is monotone: relaxing the thresholds can
    /// only grow the flagged set, and every flagged type meets its
    /// thresholds.
    #[test]
    fn correlator_thresholds_are_monotone(
        reports in proptest::collection::vec((0u64..6, 0u8..4, 0u64..2_000), 0..80),
    ) {
        let window = SimDuration::from_secs(1_000);
        let strict = CorrelatorConfig {
            window, min_gateways: 3, min_reports: 5, ..CorrelatorConfig::default()
        };
        let relaxed = CorrelatorConfig {
            window, min_gateways: 2, min_reports: 2, ..CorrelatorConfig::default()
        };
        let mut registry = iot_sentinel::core::TypeRegistry::new();
        let mut a = IncidentCorrelator::new(strict);
        let mut b = IncidentCorrelator::new(relaxed);
        for (gw, device, at) in &reports {
            let r = IncidentReport::new(
                GatewayId(*gw),
                registry.intern(&format!("D{device}")),
                IncidentKind::PolicyViolation,
                SimTime::from_secs(*at),
            );
            a.submit(r);
            b.submit(r);
        }
        let now = SimTime::from_secs(2_000);
        let strict_flags = a.flagged_types(now);
        let relaxed_flags = b.flagged_types(now);
        for f in &strict_flags {
            prop_assert!(
                relaxed_flags.iter().any(|g| g.device_type == f.device_type),
                "strictly-flagged {} missing under relaxed thresholds",
                f.device_type
            );
            prop_assert!(f.distinct_gateways >= strict.min_gateways);
            prop_assert!(f.reports_in_window >= strict.min_reports);
        }
    }
}
