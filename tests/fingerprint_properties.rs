//! Property-based tests on the fingerprint pipeline and the
//! discrimination metric, using randomly generated packet sequences.

use proptest::prelude::*;

use iot_sentinel::editdist::{fingerprint_distance, DistanceVariant};
use iot_sentinel::fingerprint::{
    Fingerprint, FingerprintExtractor, PacketFeatures, FEATURE_COUNT, FIXED_DIMS,
};
use iot_sentinel::net::{MacAddr, Packet, Port};

/// A strategy producing random (but valid) device packets.
fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u8..5,  // shape selector
        0u16..4, // dst ip selector
        40usize..600,
        0u16..60000,
    )
        .prop_map(|(shape, ip_sel, size, port)| {
            let src = MacAddr::new([2, 0, 0, 0, 0, 1]);
            let dst = MacAddr::new([2, 0, 0, 0, 0, 2]);
            let dst_ip = std::net::Ipv4Addr::new(10, 0, ip_sel as u8, 1);
            let src_ip = std::net::Ipv4Addr::new(192, 168, 1, 50);
            let builder = Packet::builder(src, dst).wire_len(size);
            match shape {
                0 => builder
                    .arp(1, std::net::Ipv4Addr::UNSPECIFIED, dst_ip)
                    .build(),
                1 => builder
                    .ipv4(src_ip, dst_ip)
                    .udp(Port::new(port.max(1)), Port::DNS)
                    .dns(false, 1)
                    .build(),
                2 => builder
                    .ipv4(src_ip, dst_ip)
                    .tcp(Port::new(port.max(1)), Port::HTTPS, Default::default())
                    .tls(22)
                    .build(),
                3 => builder.eapol(2, 1).build(),
                _ => builder
                    .ipv4(src_ip, dst_ip)
                    .udp(Port::new(port.max(1)), Port::new(20560))
                    .opaque(size / 2)
                    .build(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The extractor never produces consecutive duplicate columns, and
    /// F′ always has exactly 276 dimensions.
    #[test]
    fn extractor_invariants(packets in proptest::collection::vec(arb_packet(), 0..60)) {
        let fp = FingerprintExtractor::extract_from(&packets);
        prop_assert!(fp.len() <= packets.len());
        for pair in fp.columns().windows(2) {
            prop_assert_ne!(pair[0], pair[1], "consecutive duplicates must be discarded");
        }
        let fixed = fp.to_fixed();
        prop_assert_eq!(fixed.dims(), FIXED_DIMS);
        prop_assert!(fixed.filled_slots() <= 12);
    }

    /// Extraction is deterministic and insensitive to being split into
    /// two passes (online == batch).
    #[test]
    fn extraction_deterministic(packets in proptest::collection::vec(arb_packet(), 0..40)) {
        let a = FingerprintExtractor::extract_from(&packets);
        let mut ex = FingerprintExtractor::new();
        for p in &packets {
            ex.observe(p);
        }
        let b = ex.finish();
        prop_assert_eq!(a, b);
    }

    /// The destination-IP counter feature is always dense: observed
    /// counter values form a prefix 1..=k of the naturals (0 reserved
    /// for portless/non-IP packets).
    #[test]
    fn dst_counter_values_are_dense(packets in proptest::collection::vec(arb_packet(), 0..60)) {
        let fp = FingerprintExtractor::extract_from(&packets);
        let mut counters: Vec<u32> = fp
            .columns()
            .iter()
            .map(|c| c.values()[20])
            .filter(|v| *v > 0)
            .collect();
        counters.sort_unstable();
        counters.dedup();
        for (i, c) in counters.iter().enumerate() {
            prop_assert_eq!(*c, i as u32 + 1, "counters must be 1..=k without gaps");
        }
    }

    /// Normalised fingerprint distance is a bounded semimetric on the
    /// fingerprints the pipeline produces.
    #[test]
    fn distance_properties(
        pa in proptest::collection::vec(arb_packet(), 1..40),
        pb in proptest::collection::vec(arb_packet(), 1..40),
    ) {
        let a = FingerprintExtractor::extract_from(&pa);
        let b = FingerprintExtractor::extract_from(&pb);
        for variant in [DistanceVariant::Osa, DistanceVariant::FullDamerau, DistanceVariant::Levenshtein] {
            let dab = fingerprint_distance(&a, &b, variant);
            let dba = fingerprint_distance(&b, &a, variant);
            prop_assert!((0.0..=1.0).contains(&dab));
            prop_assert!((dab - dba).abs() < 1e-12, "symmetry");
            prop_assert_eq!(fingerprint_distance(&a, &a, variant), 0.0, "identity");
        }
    }

    /// Raw feature vectors survive the fixed-fingerprint flattening:
    /// slot i of F′ equals unique column i of F.
    #[test]
    fn fixed_flattening_preserves_columns(packets in proptest::collection::vec(arb_packet(), 1..30)) {
        let fp = FingerprintExtractor::extract_from(&packets);
        let fixed = fp.to_fixed();
        let unique = fp.unique_prefix(12);
        for (slot, col) in unique.iter().enumerate() {
            let expected = col.to_f32();
            let actual = &fixed.as_slice()[slot * FEATURE_COUNT..(slot + 1) * FEATURE_COUNT];
            prop_assert_eq!(actual, &expected[..]);
        }
    }
}

/// Deterministic spot checks complementing the property tests.
#[test]
fn empty_sequence_yields_empty_fingerprint() {
    let fp = FingerprintExtractor::extract_from(&[]);
    assert!(fp.is_empty());
    assert_eq!(fp.to_fixed().filled_slots(), 0);
    assert_eq!(
        fingerprint_distance(&fp, &Fingerprint::default(), DistanceVariant::Osa),
        0.0
    );
}

#[test]
fn single_packet_fingerprint() {
    let src = MacAddr::new([2, 0, 0, 0, 0, 1]);
    let dst = MacAddr::new([2, 0, 0, 0, 0, 2]);
    let pkt = Packet::builder(src, dst)
        .udp(Port::new(50000), Port::DNS)
        .dns(false, 1)
        .build();
    let fp = FingerprintExtractor::extract_from(&[pkt]);
    assert_eq!(fp.len(), 1);
    let col: &PacketFeatures = &fp.columns()[0];
    // The builder's `.udp()` defaults an IPv4 header (broadcast dst),
    // so this packet carries the first observed destination.
    assert_eq!(
        col.values()[20],
        1,
        "first destination IP maps to counter 1"
    );
}
