//! Chaos acceptance over loopback: a seeded fault plan must be
//! bit-reproducible (pinned digest), and a full soak — attacker
//! connections injecting stalls/truncations/hangups concurrently with
//! a fleet replay, scheduled compute-pool panics, and a hot reload
//! under fire — must leave a live server whose books reconcile
//! exactly: every request answered or typed-shed, faults counted to
//! the unit, zero epoch regressions.

use std::sync::Arc;
use std::time::{Duration, Instant};

use iot_sentinel::chaos::{self, ChaosConfig, FaultPlan, RegistrySlot};
use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::fleet::{
    simulate, DriveConfig, FingerprintPool, FleetConfig, LinkConfig, Pacing, ReloadHook,
};
use iot_sentinel::obs::Counter;
use iot_sentinel::serve::{ClientConfig, SentinelClient, ServerConfig};
use iot_sentinel::{Sentinel, SentinelBuilder};

fn fp_bits(bits: u32, tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                for (b, slot) in v.iter_mut().enumerate().take(12) {
                    *slot = (bits >> b) & 1;
                }
                v[18] = *t;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn tiny_dataset() -> Dataset {
    let mut ds = Dataset::new();
    for i in 0..12u32 {
        ds.push(LabeledFingerprint::new(
            "AlphaCam",
            fp_bits(0b001, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "BetaPlug",
            fp_bits(0b010, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "GammaHub",
            fp_bits(0b100, &[100 + i, 110, 120]),
        ));
    }
    ds
}

fn tiny_sentinel() -> Sentinel {
    SentinelBuilder::new()
        .dataset(tiny_dataset())
        .training_seed(4)
        .build()
        .unwrap()
}

/// The exact plan shape `sentinel fleet --chaos` runs, so the pinned
/// digest below also pins the CLI soak's schedule.
fn cli_chaos_config(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        connections: 6,
        panic_every: 20,
        panics: 3,
        ..ChaosConfig::default()
    }
}

#[test]
fn same_seed_reproduces_the_same_fault_plan_bit_for_bit() {
    let first = FaultPlan::generate(&cli_chaos_config(99));
    let second = FaultPlan::generate(&cli_chaos_config(99));
    assert_eq!(first, second, "plans diverged under one seed");
    assert_eq!(first.digest(), second.digest());

    let other = FaultPlan::generate(&cli_chaos_config(100));
    assert_ne!(first.digest(), other.digest(), "seed had no effect");

    // Pinned: the schedule is part of the compatibility surface — a
    // failing soak is replayed by seed, so generation must never
    // silently change shape. Regenerate deliberately if the plan
    // format changes, and say so in the changelog.
    assert_eq!(
        first.digest(),
        0x747b_5c84_49df_67a6,
        "seed-99 CLI plan digest drifted"
    );
    assert_eq!(first.panic_queries, vec![20, 40, 60]);
}

#[test]
fn chaos_soak_contains_every_fault_and_reconciles_exactly() {
    // A fleet trace big enough that all three scheduled panics (query
    // batches 20/40/60) fire well inside the run.
    let pool = FingerprintPool::from_dataset(&tiny_dataset());
    let fleet_config = FleetConfig {
        devices: 150,
        seed: 21,
        duration: Duration::from_secs(6),
        ramp: Duration::from_secs(1),
        setup_queries_min: 2,
        setup_queries_max: 5,
        setup_gap_min: Duration::from_millis(50),
        setup_gap_max: Duration::from_millis(300),
        steady_min: Duration::from_millis(800),
        steady_max: Duration::from_secs(2),
        standby_probability: 0.2,
        standby_duration: Duration::from_secs(1),
        churn_lifetime: Some(Duration::from_secs(3)),
        replacement_delay: Duration::from_millis(400),
        reload_at: Some(Duration::from_secs(2)),
        link: LinkConfig {
            min_gap: Duration::from_millis(5),
            ..LinkConfig::default()
        },
    };
    let trace = simulate(&fleet_config, pool.types());
    assert!(
        trace.summary.queries > 200,
        "thin trace: {:?}",
        trace.summary
    );

    let plan = FaultPlan::generate(&cli_chaos_config(99));
    let scheduled_panics = plan.panic_queries.len() as u64;
    let slot = RegistrySlot::new();
    let mut s = tiny_sentinel();
    let handle = s
        .serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 6,
                poll_interval: Duration::from_millis(20),
                io_timeout: Duration::from_secs(5),
                max_inflight: 2,
                queue_deadline: Duration::from_millis(25),
                fault_injection: Some(chaos::query_panic_hook(&plan, slot.clone())),
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback server");
    let addr = handle.local_addr().to_string();
    let registry = Arc::clone(handle.metrics());
    slot.bind(Arc::clone(&registry));

    // Attacker connections run *concurrently* with the fleet replay
    // and the mid-run reload: stalls, truncated frames and hangups
    // land while real work is in flight.
    let injector = {
        let plan = plan.clone();
        let addr = addr.clone();
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || chaos::inject(addr.as_str(), &plan, Some(&registry)))
    };

    let hook: ReloadHook<'_> = Box::new(|| s.reload().map_err(|e| e.to_string()));
    let drive_config = DriveConfig {
        connections: 3,
        pacing: Pacing::Uncapped,
        client: ClientConfig {
            retry_jitter_seed: fleet_config.seed,
            ..ClientConfig::default()
        },
    };
    let outcome = iot_sentinel::fleet::drive(&trace, &pool, &addr, &drive_config, Some(hook))
        .expect("drive fleet under chaos");
    let injected = injector
        .join()
        .expect("injector thread")
        .expect("injector I/O");

    // The injector executed its whole plan (loopback never broke a
    // connection early), so the planned and applied fault counts agree.
    assert_eq!(injected.faults(), plan.frame_faults());
    assert_eq!(injected.connections, plan.connections.len() as u64);

    // Drain: client teardown races server bookkeeping by milliseconds.
    let deadline = Instant::now() + Duration::from_secs(10);
    while registry.get(Counter::ConnectionsActive) != 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        registry.get(Counter::ConnectionsActive),
        0,
        "connections leaked"
    );

    let worker_panics = registry.get(Counter::WorkerPanics);
    assert_eq!(
        worker_panics, scheduled_panics,
        "every scheduled panic fires exactly once, and nothing else panics"
    );

    // Accounting closes to the unit. Driver side: every planned query
    // was sent, and every sent query was either answered or is
    // explained by a typed shed or a scheduled-panic casualty.
    assert_eq!(outcome.queries_sent, trace.summary.queries);
    assert_eq!(
        outcome.errors,
        outcome.shed + worker_panics,
        "an error that is neither a typed shed nor a scheduled panic"
    );
    assert_eq!(outcome.responses_ok + outcome.errors, outcome.queries_sent);

    // Server side: fault books reconcile against the injector's own
    // report, and abuse cost exactly what the fault model promises —
    // one protocol error per truncated frame, zero for stalls and
    // clean hangups.
    assert_eq!(
        registry.get(Counter::FaultsInjected),
        injected.faults() + worker_panics
    );
    assert_eq!(registry.get(Counter::ProtocolErrors), injected.truncates);
    assert_eq!(registry.get(Counter::QueriesAnswered), outcome.responses_ok);
    assert_eq!(
        registry.get(Counter::QueriesShed),
        outcome.shed + outcome.overload_retries,
        "every shed frame was a 1-fingerprint batch: retried sheds plus surfaced sheds"
    );

    // Reload under fire still advanced the epoch cleanly.
    let reload = outcome.reload.as_ref().expect("reload outcome missing");
    assert_eq!(reload.epoch, 2, "reload under chaos must advance the epoch");
    assert_eq!(reload.stale_responses, 0, "epoch regressions");

    // And the server is still alive for the next client.
    let mut probe_client =
        SentinelClient::connect(addr.as_str(), ClientConfig::default()).expect("post-soak connect");
    probe_client.ping().expect("post-soak ping");
    let probe = fp_bits(0b001, &[101, 110, 120]);
    let answers = probe_client
        .query_batch(std::slice::from_ref(&probe))
        .expect("post-soak query");
    assert_eq!(answers.len(), 1);
    drop(probe_client);

    let stats = handle.shutdown();
    assert_eq!(stats.worker_panics, worker_panics, "stats: {stats:?}");
}

#[test]
fn rerunning_the_same_soak_seed_injects_the_same_faults() {
    // The injector's applied-fault counts are a pure function of the
    // plan: two servers, one seed, identical reports.
    let plan = FaultPlan::generate(&cli_chaos_config(5));
    let mut reports = Vec::new();
    for _ in 0..2 {
        let mut s = tiny_sentinel();
        let handle = s
            .serve(
                "127.0.0.1:0",
                ServerConfig {
                    workers: 2,
                    poll_interval: Duration::from_millis(20),
                    ..ServerConfig::default()
                },
            )
            .expect("bind loopback server");
        let addr = handle.local_addr().to_string();
        let report = chaos::inject(addr.as_str(), &plan, Some(handle.metrics()))
            .expect("inject against live server");
        assert_eq!(
            handle.metrics().get(Counter::FaultsInjected),
            report.faults()
        );
        assert_eq!(
            handle.metrics().get(Counter::ProtocolErrors),
            report.truncates,
            "truncates cost exactly one protocol error each"
        );
        handle.shutdown();
        reports.push(report);
    }
    assert_eq!(reports[0], reports[1], "same seed, same injected faults");
    assert_eq!(reports[0].faults(), plan.frame_faults());
}
