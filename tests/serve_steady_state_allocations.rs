//! Allocation accounting for the server's steady-state frame path.
//!
//! PR 3 replaced the per-frame `vec![0u8; len]` payload buffer with
//! one per-connection read buffer that is resized in place (server
//! *and* client side). This test pins the result with a counting
//! global allocator: once a connection is warm, a frame round-trip
//! whose payload decodes without owned data — a ping, or a query with
//! an empty batch (3 payload bytes, so the read buffer is genuinely
//! exercised) — performs **zero** heap allocations end to end: client
//! encode, server read + decode + respond, client read + decode all
//! run out of reused buffers.
//!
//! The test drives the loopback server synchronously (one round-trip
//! at a time), so every allocation inside the measured window belongs
//! to the frame path: the accept thread and idle workers only poll
//! with stack buffers.
//!
//! The compute-pool redesign adds two pins on the same window: the
//! batch hand-off now runs on the cell's persistent pool, so warm
//! round-trips must also be **zero thread spawns** (the pool's workers
//! were pinned at startup; nothing on the frame path may spawn), and
//! the pool's accounting must reconcile — exactly one `run` hand-off
//! per query frame, every task submitted also executed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::obs::{Counter, Stage};
use iot_sentinel::serve::{ClientConfig, SentinelClient, ServerConfig};
use iot_sentinel::SentinelBuilder;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

fn fp_bits(bits: u32, tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                for (b, slot) in v.iter_mut().enumerate().take(12) {
                    *slot = (bits >> b) & 1;
                }
                v[18] = *t;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

#[test]
fn steady_state_frames_allocate_nothing_on_the_read_side() {
    let mut ds = Dataset::new();
    for i in 0..12u32 {
        ds.push(LabeledFingerprint::new(
            "TypeA",
            fp_bits(0b001, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "TypeB",
            fp_bits(0b010, &[100 + i, 110, 120]),
        ));
    }
    let mut sentinel = SentinelBuilder::new()
        .dataset(ds)
        .training_seed(4)
        .build()
        .expect("train");
    let handle = sentinel
        .serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                poll_interval: Duration::from_millis(20),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
    let mut client =
        SentinelClient::connect(handle.local_addr(), ClientConfig::default()).expect("connect");

    // Warm-up: grow every reused buffer (client send/receive, server
    // read/write) to its steady-state capacity.
    for _ in 0..16 {
        client.ping().expect("warm-up ping");
        let empty = client.query_batch(&[]).expect("warm-up empty batch");
        assert!(empty.is_empty());
    }

    // Steady state: a ping round-trip (empty payload) and an
    // empty-batch query round-trip (3 payload bytes through the
    // server's read buffer, 2 through the client's) — with reused
    // buffers on both sides, none of it touches the heap. The metrics
    // registry is live on this path (counters and stage histograms per
    // frame), so the deltas below double as proof that the
    // zero-allocation claim holds *with instrumentation recording*.
    let registry = handle.metrics().clone();
    // The server counts a frame *after* writing its response, so the
    // client can observe the reply a beat before the counter lands.
    // The connection is synchronous and idle here, so waiting for the
    // count to stop moving makes the before/after deltas exact.
    let settle = |registry: &iot_sentinel::obs::MetricsRegistry| {
        let mut last = registry.get(Counter::FramesServed);
        let mut stable = 0;
        for _ in 0..1_000 {
            std::thread::sleep(Duration::from_millis(1));
            let now = registry.get(Counter::FramesServed);
            if now == last {
                stable += 1;
                if stable >= 5 {
                    return;
                }
            } else {
                stable = 0;
                last = now;
            }
        }
    };
    settle(&registry);
    let frames_before = registry.get(Counter::FramesServed);
    let query_frames_before = registry.get(Counter::QueryFrames);
    let stage_counts_before: Vec<u64> = Stage::ALL
        .iter()
        .map(|&stage| registry.stage_histogram(stage).count())
        .collect();
    let spawns_before = iot_sentinel::pool::thread_spawns();
    let pool_before = handle.cell().pool().counters();
    let (allocs, _) = allocations_during(|| {
        for _ in 0..64 {
            client.ping().expect("steady-state ping");
            client.query_batch(&[]).expect("steady-state empty batch");
        }
    });
    assert_eq!(
        allocs, 0,
        "128 warm frame round-trips must not allocate: the read path \
         reuses one buffer per connection and the metrics registry is \
         lock-free and fixed-size"
    );

    // The instrumentation really ran inside the measured window: every
    // round-trip counted a served frame, every query frame recorded
    // all four pipeline stages.
    settle(&registry);
    assert_eq!(registry.get(Counter::FramesServed) - frames_before, 128);
    assert_eq!(registry.get(Counter::QueryFrames) - query_frames_before, 64);
    for (&stage, before) in Stage::ALL.iter().zip(stage_counts_before) {
        assert_eq!(
            registry.stage_histogram(stage).count() - before,
            64,
            "stage {} must record once per query frame",
            stage.name()
        );
    }

    // Zero thread spawns in steady state: the compute pool's workers
    // and the server's I/O threads all predate the measured window.
    assert_eq!(
        iot_sentinel::pool::thread_spawns(),
        spawns_before,
        "warm round-trips must not spawn threads"
    );
    // And the pool's ledger reconciles: each of the 64 query frames
    // was exactly one `run` hand-off to the cell's pool (pings never
    // touch it), and everything submitted has executed.
    let pool_after = handle.cell().pool().counters();
    assert_eq!(
        pool_after.submitted - pool_before.submitted,
        64,
        "one pool hand-off per query frame"
    );
    assert_eq!(
        pool_after.submitted, pool_after.executed,
        "every task handed to the pool must have run"
    );
    // The Stats wire frame reports the same pool counters.
    let snapshot = handle.metrics_snapshot();
    assert_eq!(
        snapshot.counter(Counter::PoolTasksSubmitted),
        handle.cell().pool().counters().submitted,
        "the Stats overlay must mirror the live pool ledger"
    );

    // Sanity: real queries still answer (and are allowed to allocate —
    // decoded fingerprints and response vectors are owned data).
    let result = client
        .query(&fp_bits(0b001, &[104, 110, 120]))
        .expect("real query");
    assert!(result.response.device_type.is_some());

    handle.shutdown();
}
