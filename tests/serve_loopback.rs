//! End-to-end acceptance for the network front-end: a
//! [`iot_sentinel::serve`] server started from the `Sentinel` facade
//! must answer batch queries **byte-identically** to the in-process
//! `handle_batch`, under concurrent client connections, survive
//! malformed frames, and hot-swap model epochs under live traffic
//! without a single dropped connection or torn batch.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use iot_sentinel::core::{IsolationClass, ServiceResponse};
use iot_sentinel::core::{Severity, VulnerabilityRecord};
use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::serve::{ClientConfig, SentinelClient, ServerConfig};
use iot_sentinel::{Sentinel, SentinelBuilder};

fn fp_bits(bits: u32, tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                for (b, slot) in v.iter_mut().enumerate().take(12) {
                    *slot = (bits >> b) & 1;
                }
                v[18] = *t;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn sentinel() -> Sentinel {
    let mut ds = Dataset::new();
    for i in 0..12u32 {
        ds.push(LabeledFingerprint::new(
            "CleanType",
            fp_bits(0b001, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "VulnType",
            fp_bits(0b010, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "OtherType",
            fp_bits(0b100, &[100 + i, 110, 120]),
        ));
    }
    SentinelBuilder::new()
        .dataset(ds)
        .training_seed(4)
        .vulnerability(
            "VulnType",
            VulnerabilityRecord::new("CVE-L-1", "demo", Severity::High),
        )
        .build()
        .unwrap()
}

fn probes(n: usize) -> Vec<Fingerprint> {
    (0..n)
        .map(|i| fp_bits(1 << (i % 4), &[100 + i as u32 % 9, 110, 120]))
        .collect()
}

fn server_config() -> ServerConfig {
    ServerConfig {
        workers: 6,
        poll_interval: Duration::from_millis(20),
        ..ServerConfig::default()
    }
}

#[test]
fn loopback_batch_is_byte_identical_to_in_process() {
    let mut s = sentinel();
    let batch = probes(150); // spans multiple BATCH_CHUNKs server-side
    let local = s.handle_batch(&batch);

    let handle = s.serve("127.0.0.1:0", server_config()).expect("bind");
    let mut client =
        SentinelClient::connect(handle.local_addr(), ClientConfig::default()).expect("connect");
    let remote = client.query_batch(&batch).expect("remote batch");
    let remote_responses: Vec<_> = remote.iter().map(|r| r.response).collect();
    assert_eq!(remote_responses, local);
    // The Sentinel stays fully usable while serving.
    assert_eq!(s.handle(&batch[0]), local[0]);
    handle.shutdown();
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let mut s = sentinel();
    let handle = s.serve("127.0.0.1:0", server_config()).expect("bind");
    let addr = handle.local_addr();

    // Four client threads, each with its own probe mix, each checked
    // against the in-process truth.
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let s = &s;
            scope.spawn(move || {
                let batch: Vec<Fingerprint> = (0..40)
                    .map(|i| {
                        fp_bits(
                            1 << ((i + worker) % 4),
                            &[100 + ((i + worker) as u32 % 9), 110, 120],
                        )
                    })
                    .collect();
                let expected = s.handle_batch(&batch);
                let mut client =
                    SentinelClient::connect(addr, ClientConfig::default()).expect("connect");
                for round in 0..3 {
                    let remote = client.query_batch(&batch).expect("remote batch");
                    let got: Vec<_> = remote.iter().map(|r| r.response).collect();
                    assert_eq!(got, expected, "client {worker} round {round}");
                }
            });
        }
    });

    let stats = handle.shutdown();
    assert_eq!(stats.connections_accepted, 4);
    assert_eq!(stats.queries_answered, 4 * 3 * 40);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn malformed_frames_leave_healthy_clients_unaffected() {
    let mut s = sentinel();
    let handle = s.serve("127.0.0.1:0", server_config()).expect("bind");
    let addr = handle.local_addr();

    let mut healthy =
        SentinelClient::connect(addr, ClientConfig::default()).expect("connect healthy");
    healthy.ping().expect("ping before abuse");

    // A hostile peer sprays garbage and disappears.
    for _ in 0..3 {
        let mut hostile = TcpStream::connect(addr).expect("connect hostile");
        let _ = hostile.write_all(&[0xFF; 64]);
        drop(hostile);
    }

    // The healthy client's established connection still answers.
    let batch = probes(10);
    let expected = s.handle_batch(&batch);
    let remote = healthy.query_batch(&batch).expect("query after abuse");
    let got: Vec<_> = remote.iter().map(|r| r.response).collect();
    assert_eq!(got, expected);
    // And so do fresh connections.
    let mut fresh = SentinelClient::connect(addr, ClientConfig::default()).expect("connect fresh");
    fresh.ping().expect("ping after abuse");

    // The hostile connections are handled asynchronously; wait for
    // their protocol errors to land in the stats before shutting down
    // (shutdown closes still-queued connections without reading them).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.stats().protocol_errors < 3 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = handle.shutdown();
    assert!(stats.protocol_errors >= 3, "stats: {stats:?}");
}

/// The acceptance pin for hot reload: 4 client threads hammer
/// `query_batch` while the main thread publishes two new epochs — one
/// adding a device type, one flipping an advisory's isolation class.
/// No client may see an error, every batch response must match *one*
/// published epoch exactly (a mixed-epoch answer means a model swap
/// tore a batch), and post-reload queries must identify the new type.
#[test]
fn reload_under_load_swaps_epochs_without_tearing_or_dropping() {
    let mut s = sentinel();
    // One probe per trained type, plus one matching the type published
    // in the first reload (unknown until then).
    let batch: Vec<Fingerprint> = vec![
        fp_bits(0b001, &[104, 110, 120]),
        fp_bits(0b010, &[105, 110, 120]),
        fp_bits(0b100, &[106, 110, 120]),
        fp_bits(0b1000, &[903, 910, 920]),
    ];
    // Every expected answer vector is registered here *before* the
    // epoch that produces it is published, so whatever a client reads
    // back is already in the list when it checks.
    let published: Mutex<Vec<Vec<ServiceResponse>>> = Mutex::new(vec![s.handle_batch(&batch)]);
    let handle = s.serve("127.0.0.1:0", server_config()).expect("bind");
    let addr = handle.local_addr();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for client_id in 0..4usize {
            let batch = &batch;
            let published = &published;
            let stop = &stop;
            scope.spawn(move || {
                let mut client = SentinelClient::connect(addr, ClientConfig::default())
                    .expect("client connects");
                let mut rounds = 0u64;
                let mut epochs_seen = std::collections::HashSet::new();
                while !stop.load(Ordering::Acquire) {
                    // Zero tolerated errors: a dropped connection or
                    // errored query during a reload fails the test.
                    let remote = client
                        .query_batch(batch)
                        .unwrap_or_else(|e| panic!("client {client_id} errored: {e}"));
                    let got: Vec<ServiceResponse> = remote.iter().map(|r| r.response).collect();
                    let known = published.lock().unwrap();
                    let epoch = known.iter().position(|expected| *expected == got);
                    assert!(
                        epoch.is_some(),
                        "client {client_id} round {rounds}: response matches no \
                         published epoch (torn batch?): {got:?} vs {known:?}"
                    );
                    epochs_seen.insert(epoch.unwrap());
                    rounds += 1;
                }
                assert!(rounds > 0, "client {client_id} never completed a round");
                epochs_seen
            });
        }

        // Let the clients hit epoch 1, then roll out two epochs under
        // their feet.
        std::thread::sleep(Duration::from_millis(60));

        // Reload 1: a new device type appears.
        let new_fps: Vec<Fingerprint> = (0..10)
            .map(|i| fp_bits(0b1000, &[900 + i, 910, 920]))
            .collect();
        s.add_device_type("HotType", &new_fps, 9)
            .expect("incremental training");
        let expected = s.handle_batch(&batch);
        published.lock().unwrap().push(expected);
        assert_eq!(s.reload().expect("first reload"), 2);

        std::thread::sleep(Duration::from_millis(60));

        // Reload 2: an advisory flips CleanType's isolation class.
        s.add_vulnerability(
            "CleanType",
            VulnerabilityRecord::new("CVE-HOT-1", "published mid-flight", Severity::Critical),
        );
        let expected = s.handle_batch(&batch);
        published.lock().unwrap().push(expected);
        assert_eq!(s.reload().expect("second reload"), 3);

        std::thread::sleep(Duration::from_millis(60));
        stop.store(true, Ordering::Release);
    });

    // Post-reload: a fresh query identifies the hot-added type and
    // sees the new advisory's verdict.
    let final_responses = {
        let mut client = SentinelClient::connect(addr, ClientConfig::default()).expect("connect");
        client.query_batch(&batch).expect("post-reload batch")
    };
    let hot_id = s.identifier().registry().get("HotType").expect("interned");
    assert_eq!(final_responses[3].response.device_type, Some(hot_id));
    assert_eq!(
        final_responses[0].response.isolation,
        IsolationClass::Restricted
    );
    assert_eq!(
        final_responses,
        {
            let published = published.lock().unwrap();
            published
                .last()
                .unwrap()
                .iter()
                .map(|r| iot_sentinel::serve::QueryResult {
                    response: *r,
                    name: None,
                })
                .collect::<Vec<_>>()
        },
        "a fresh connection must serve the final epoch"
    );

    let stats = handle.shutdown();
    assert_eq!(stats.reloads, 2, "stats: {stats:?}");
    assert_eq!(stats.epoch, 3, "stats: {stats:?}");
    assert_eq!(stats.protocol_errors, 0, "stats: {stats:?}");
    assert_eq!(stats.worker_panics, 0, "stats: {stats:?}");
    assert_eq!(stats.connections_active, 0, "stats: {stats:?}");
}

#[test]
fn resolved_names_match_the_registry() {
    let mut s = sentinel();
    let handle = s.serve("127.0.0.1:0", server_config()).expect("bind");
    let mut client = SentinelClient::connect(
        handle.local_addr(),
        ClientConfig {
            resolve_names: true,
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let batch = probes(12);
    let remote = client.query_batch(&batch).expect("remote batch");
    for (probe, item) in batch.iter().zip(&remote) {
        let expected = s.handle(probe);
        assert_eq!(item.response, expected);
        assert_eq!(
            item.name.as_deref(),
            s.type_name(expected.device_type),
            "remote name must be the registry's name"
        );
    }
    handle.shutdown();
}
