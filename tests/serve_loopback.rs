//! End-to-end acceptance for the network front-end: a
//! [`iot_sentinel::serve`] server started from the `Sentinel` facade
//! must answer batch queries **byte-identically** to the in-process
//! `handle_batch`, under concurrent client connections, and survive
//! malformed frames.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use iot_sentinel::core::{Severity, VulnerabilityRecord};
use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::serve::{ClientConfig, SentinelClient, ServerConfig};
use iot_sentinel::{Sentinel, SentinelBuilder};

fn fp_bits(bits: u32, tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                for (b, slot) in v.iter_mut().enumerate().take(12) {
                    *slot = (bits >> b) & 1;
                }
                v[18] = *t;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn sentinel() -> Sentinel {
    let mut ds = Dataset::new();
    for i in 0..12u32 {
        ds.push(LabeledFingerprint::new(
            "CleanType",
            fp_bits(0b001, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "VulnType",
            fp_bits(0b010, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "OtherType",
            fp_bits(0b100, &[100 + i, 110, 120]),
        ));
    }
    SentinelBuilder::new()
        .dataset(ds)
        .training_seed(4)
        .vulnerability(
            "VulnType",
            VulnerabilityRecord::new("CVE-L-1", "demo", Severity::High),
        )
        .build()
        .unwrap()
}

fn probes(n: usize) -> Vec<Fingerprint> {
    (0..n)
        .map(|i| fp_bits(1 << (i % 4), &[100 + i as u32 % 9, 110, 120]))
        .collect()
}

fn server_config() -> ServerConfig {
    ServerConfig {
        workers: 6,
        poll_interval: Duration::from_millis(20),
        ..ServerConfig::default()
    }
}

#[test]
fn loopback_batch_is_byte_identical_to_in_process() {
    let s = sentinel();
    let batch = probes(150); // spans multiple BATCH_CHUNKs server-side
    let local = s.handle_batch(&batch);

    let handle = s.serve("127.0.0.1:0", server_config()).expect("bind");
    let mut client =
        SentinelClient::connect(handle.local_addr(), ClientConfig::default()).expect("connect");
    let remote = client.query_batch(&batch).expect("remote batch");
    let remote_responses: Vec<_> = remote.iter().map(|r| r.response).collect();
    assert_eq!(remote_responses, local);
    // The Sentinel stays fully usable while serving.
    assert_eq!(s.handle(&batch[0]), local[0]);
    handle.shutdown();
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let s = sentinel();
    let handle = s.serve("127.0.0.1:0", server_config()).expect("bind");
    let addr = handle.local_addr();

    // Four client threads, each with its own probe mix, each checked
    // against the in-process truth.
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let s = &s;
            scope.spawn(move || {
                let batch: Vec<Fingerprint> = (0..40)
                    .map(|i| {
                        fp_bits(
                            1 << ((i + worker) % 4),
                            &[100 + ((i + worker) as u32 % 9), 110, 120],
                        )
                    })
                    .collect();
                let expected = s.handle_batch(&batch);
                let mut client =
                    SentinelClient::connect(addr, ClientConfig::default()).expect("connect");
                for round in 0..3 {
                    let remote = client.query_batch(&batch).expect("remote batch");
                    let got: Vec<_> = remote.iter().map(|r| r.response).collect();
                    assert_eq!(got, expected, "client {worker} round {round}");
                }
            });
        }
    });

    let stats = handle.shutdown();
    assert_eq!(stats.connections_accepted, 4);
    assert_eq!(stats.queries_answered, 4 * 3 * 40);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn malformed_frames_leave_healthy_clients_unaffected() {
    let s = sentinel();
    let handle = s.serve("127.0.0.1:0", server_config()).expect("bind");
    let addr = handle.local_addr();

    let mut healthy =
        SentinelClient::connect(addr, ClientConfig::default()).expect("connect healthy");
    healthy.ping().expect("ping before abuse");

    // A hostile peer sprays garbage and disappears.
    for _ in 0..3 {
        let mut hostile = TcpStream::connect(addr).expect("connect hostile");
        let _ = hostile.write_all(&[0xFF; 64]);
        drop(hostile);
    }

    // The healthy client's established connection still answers.
    let batch = probes(10);
    let expected = s.handle_batch(&batch);
    let remote = healthy.query_batch(&batch).expect("query after abuse");
    let got: Vec<_> = remote.iter().map(|r| r.response).collect();
    assert_eq!(got, expected);
    // And so do fresh connections.
    let mut fresh = SentinelClient::connect(addr, ClientConfig::default()).expect("connect fresh");
    fresh.ping().expect("ping after abuse");

    // The hostile connections are handled asynchronously; wait for
    // their protocol errors to land in the stats before shutting down
    // (shutdown closes still-queued connections without reading them).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.stats().protocol_errors < 3 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = handle.shutdown();
    assert!(stats.protocol_errors >= 3, "stats: {stats:?}");
}

#[test]
fn resolved_names_match_the_registry() {
    let s = sentinel();
    let handle = s.serve("127.0.0.1:0", server_config()).expect("bind");
    let mut client = SentinelClient::connect(
        handle.local_addr(),
        ClientConfig {
            resolve_names: true,
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let batch = probes(12);
    let remote = client.query_batch(&batch).expect("remote batch");
    for (probe, item) in batch.iter().zip(&remote) {
        let expected = s.handle(probe);
        assert_eq!(item.response, expected);
        assert_eq!(
            item.name.as_deref(),
            s.type_name(expected.device_type),
            "remote name must be the registry's name"
        );
    }
    handle.shutdown();
}
