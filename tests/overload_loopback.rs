//! Overload acceptance over loopback: when offered load exceeds the
//! server's in-flight work budget, accepted queries stay correct,
//! shed queries get the typed retryable `Overloaded` answer on a
//! connection that stays usable, the shed/overload counters reconcile
//! exactly, and the client's seeded backoff turns a shed answer into
//! an eventual success. The reload-hardening half lives here too: the
//! admin token bucket refuses with `Overloaded`, and a reload task
//! that panics mid-validation rolls back to the previous epoch with a
//! typed `ReloadRejected` answer instead of a dead connection.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use iot_sentinel::core::persist;
use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::obs::Counter;
use iot_sentinel::serve::{
    ClientConfig, ClientError, ErrorCode, ReloadRate, SentinelClient, ServerConfig,
};
use iot_sentinel::{Sentinel, SentinelBuilder};

fn fp_bits(bits: u32, tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                for (b, slot) in v.iter_mut().enumerate().take(12) {
                    *slot = (bits >> b) & 1;
                }
                v[18] = *t;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn tiny_dataset() -> Dataset {
    let mut ds = Dataset::new();
    for i in 0..12u32 {
        ds.push(LabeledFingerprint::new(
            "AlphaCam",
            fp_bits(0b001, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "BetaPlug",
            fp_bits(0b010, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "GammaHub",
            fp_bits(0b100, &[100 + i, 110, 120]),
        ));
    }
    ds
}

fn tiny_sentinel() -> Sentinel {
    SentinelBuilder::new()
        .dataset(tiny_dataset())
        .training_seed(4)
        .build()
        .unwrap()
}

/// Waits until `ready()` holds or panics after a CI-sized grace.
fn settle(what: &str, ready: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A server whose compute path can be wedged on demand: query requests
/// with `resolve_names` set spin inside their pool task while `block`
/// stays raised, holding their in-flight permit — which is exactly the
/// saturated-pool shape admission control exists for.
fn blockable_config(block: &Arc<AtomicBool>, entered: &Arc<AtomicU64>) -> ServerConfig {
    let block = Arc::clone(block);
    let entered = Arc::clone(entered);
    ServerConfig {
        workers: 4,
        poll_interval: Duration::from_millis(20),
        io_timeout: Duration::from_secs(5),
        max_inflight: 1,
        queue_deadline: Duration::ZERO,
        fault_injection: Some(Arc::new(move |request| {
            if request.resolve_names {
                entered.fetch_add(1, Ordering::SeqCst);
                while block.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        })),
        ..ServerConfig::default()
    }
}

fn victim_config(overload_retries: u32) -> ClientConfig {
    ClientConfig {
        overload_retries,
        retry_delay: Duration::from_millis(10),
        max_retry_delay: Duration::from_millis(40),
        retry_jitter_seed: 7,
        ..ClientConfig::default()
    }
}

#[test]
fn full_budget_sheds_with_typed_retryable_error_and_exact_counters() {
    let block = Arc::new(AtomicBool::new(true));
    let entered = Arc::new(AtomicU64::new(0));
    let mut s = tiny_sentinel();
    let handle = s
        .serve("127.0.0.1:0", blockable_config(&block, &entered))
        .expect("bind loopback server");
    let addr = handle.local_addr().to_string();
    let registry = Arc::clone(handle.metrics());

    // The blocker takes the single permit and wedges inside its pool
    // task until released.
    let blocker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = SentinelClient::connect(
                addr.as_str(),
                ClientConfig {
                    resolve_names: true,
                    ..victim_config(0)
                },
            )
            .expect("blocker connect");
            let probe = fp_bits(0b001, &[101, 110, 120]);
            client.query_batch(std::slice::from_ref(&probe))
        })
    };
    settle("blocker to wedge in its pool task", || {
        entered.load(Ordering::SeqCst) >= 1
    });

    // With the budget full and a zero queue deadline, the victim's
    // queries shed immediately with the retryable typed error — and
    // the connection survives to be used again.
    let mut victim =
        SentinelClient::connect(addr.as_str(), victim_config(0)).expect("victim connect");
    let single = fp_bits(0b010, &[102, 110, 120]);
    let error = victim
        .query_batch(std::slice::from_ref(&single))
        .expect_err("budget is full: the single query must shed");
    match &error {
        ClientError::Server { code, message } => {
            assert_eq!(*code, ErrorCode::Overloaded, "unexpected code: {message}");
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }
    assert!(error.is_retryable(), "Overloaded must classify retryable");

    // A shed batch of 3 counts 3 fingerprints and 1 rejection: the
    // counters distinguish refused work items from refused frames.
    let batch = vec![
        fp_bits(0b001, &[103, 110, 120]),
        fp_bits(0b010, &[104, 110, 120]),
        fp_bits(0b100, &[105, 110, 120]),
    ];
    let error = victim
        .query_batch(&batch)
        .expect_err("budget is full: the batch must shed");
    assert!(error.is_retryable(), "batch shed must be retryable too");
    assert_eq!(registry.get(Counter::QueriesShed), 4, "1 + 3 fingerprints");
    assert_eq!(registry.get(Counter::OverloadRejections), 2, "two frames");

    // Shed answers leave the connection healthy: same socket, no
    // reconnect, and once capacity frees the same query succeeds and
    // is answered correctly.
    victim.ping().expect("shed connection must stay usable");
    block.store(false, Ordering::SeqCst);
    blocker
        .join()
        .expect("blocker thread")
        .expect("blocker query succeeds once released");
    settle("the blocker's permit to free", || {
        registry.get(Counter::QueriesShed) == 4
    });
    let answers = victim
        .query_batch(std::slice::from_ref(&single))
        .expect("query succeeds once capacity freed");
    assert_eq!(answers.len(), 1);

    let stats = handle.shutdown();
    assert_eq!(stats.worker_panics, 0, "stats: {stats:?}");
    assert_eq!(
        stats.protocol_errors, 0,
        "shed frames are not protocol errors"
    );
    // Every fingerprint was either answered or shed — none vanished.
    assert_eq!(
        stats.queries_answered, 2,
        "blocker's 1 + victim's retried 1"
    );
}

#[test]
fn client_backoff_turns_shed_into_success() {
    let block = Arc::new(AtomicBool::new(true));
    let entered = Arc::new(AtomicU64::new(0));
    let mut s = tiny_sentinel();
    let handle = s
        .serve("127.0.0.1:0", blockable_config(&block, &entered))
        .expect("bind loopback server");
    let addr = handle.local_addr().to_string();
    let registry = Arc::clone(handle.metrics());

    let blocker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = SentinelClient::connect(
                addr.as_str(),
                ClientConfig {
                    resolve_names: true,
                    ..victim_config(0)
                },
            )
            .expect("blocker connect");
            let probe = fp_bits(0b001, &[101, 110, 120]);
            client.query_batch(std::slice::from_ref(&probe))
        })
    };
    settle("blocker to wedge in its pool task", || {
        entered.load(Ordering::SeqCst) >= 1
    });

    // The victim retries its seeded backoff schedule; we free the
    // budget once the server has demonstrably shed at least one of its
    // attempts, so success must arrive *through* the retry loop.
    let victim = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client =
                SentinelClient::connect(addr.as_str(), victim_config(8)).expect("victim connect");
            let probe = fp_bits(0b010, &[102, 110, 120]);
            let answers = client
                .query_batch(std::slice::from_ref(&probe))
                .expect("retries must eventually land the query");
            (answers.len(), client.stats().overload_retries)
        })
    };
    settle("at least one shed attempt", || {
        registry.get(Counter::OverloadRejections) >= 1
    });
    block.store(false, Ordering::SeqCst);
    blocker
        .join()
        .expect("blocker thread")
        .expect("blocker query succeeds once released");

    let (answered, retries) = victim.join().expect("victim thread");
    assert_eq!(answered, 1);
    assert!(retries >= 1, "success must have come via the retry loop");
    let shed = registry.get(Counter::QueriesShed);
    assert!(shed >= 1, "server must have shed at least one attempt");
    // Reconciliation: every shed attempt was a whole 1-fingerprint
    // frame, so the two counters move in lockstep.
    assert_eq!(shed, registry.get(Counter::OverloadRejections));
    handle.shutdown();
}

#[test]
fn reload_rate_limit_refuses_with_retryable_overloaded() {
    let mut s = tiny_sentinel();
    let mut model = Vec::new();
    persist::write_identifier(&mut model, s.identifier()).expect("persist model");
    let handle = s
        .serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                poll_interval: Duration::from_millis(20),
                admin: true,
                reload_rate: Some(ReloadRate {
                    burst: 1,
                    refill_per_sec: 0.0,
                }),
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback server");
    let registry = Arc::clone(handle.metrics());

    let mut client = SentinelClient::connect(handle.local_addr(), ClientConfig::default())
        .expect("admin connect");
    let ack = client
        .reload(model.clone())
        .expect("first reload fits the burst");
    assert_eq!(ack.epoch, 2);

    // The bucket never refills: the second reload must be refused with
    // the retryable code, audited, and must NOT advance the epoch or
    // burn the connection.
    let error = client
        .reload(model.clone())
        .expect_err("second reload must trip the rate limit");
    match &error {
        ClientError::Server { code, message } => {
            assert_eq!(*code, ErrorCode::Overloaded, "unexpected code: {message}");
            assert!(message.contains("rate limit"), "message: {message}");
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }
    assert!(error.is_retryable());
    assert_eq!(registry.get(Counter::ReloadsRateLimited), 1);
    assert_eq!(registry.get(Counter::OverloadRejections), 1);
    let snapshot = handle.metrics_snapshot();
    assert_eq!(
        snapshot.counter(Counter::Reloads),
        1,
        "only the first landed"
    );
    assert_eq!(snapshot.epoch, 2, "epoch must not move");

    client.ping().expect("rate-limited connection stays usable");
    let probe = fp_bits(0b001, &[101, 110, 120]);
    let answers = client
        .query_batch(std::slice::from_ref(&probe))
        .expect("queries unaffected by the reload refusal");
    assert_eq!(answers.len(), 1);
    handle.shutdown();
}

#[test]
fn reload_panic_rolls_back_and_answers_typed_rejection() {
    let fail_once = Arc::new(AtomicBool::new(true));
    let mut s = tiny_sentinel();
    let mut model = Vec::new();
    persist::write_identifier(&mut model, s.identifier()).expect("persist model");
    let hook_flag = Arc::clone(&fail_once);
    let handle = s
        .serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                poll_interval: Duration::from_millis(20),
                admin: true,
                reload_fault_injection: Some(Arc::new(move |_payload| {
                    if hook_flag.swap(false, Ordering::SeqCst) {
                        panic!("injected reload fault");
                    }
                })),
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback server");
    let registry = Arc::clone(handle.metrics());

    let mut client = SentinelClient::connect(handle.local_addr(), ClientConfig::default())
        .expect("admin connect");

    // The panicking reload must cost nothing but a typed answer: the
    // previous epoch keeps serving (rollback), the connection thread
    // survives, and the audit counter records exactly one rollback.
    let error = client
        .reload(model.clone())
        .expect_err("hooked reload must fail");
    match &error {
        ClientError::Server { code, message } => {
            assert_eq!(*code, ErrorCode::ReloadRejected, "message: {message}");
            assert!(message.contains("panicked"), "message: {message}");
            assert!(
                message.contains("previous epoch kept"),
                "message: {message}"
            );
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }
    let snapshot = handle.metrics_snapshot();
    assert_eq!(snapshot.epoch, 1, "epoch must not move");
    assert_eq!(registry.get(Counter::ReloadRollbacks), 1);
    assert_eq!(snapshot.counter(Counter::Reloads), 0);

    // Same connection, second attempt (hook now disarmed): the swap
    // completes — containment cost one answer, not the service.
    let ack = client.reload(model).expect("clean reload succeeds");
    assert_eq!(ack.epoch, 2);
    assert_eq!(handle.metrics_snapshot().counter(Counter::Reloads), 1);
    let probe = fp_bits(0b001, &[101, 110, 120]);
    let answers = client
        .query_batch(std::slice::from_ref(&probe))
        .expect("post-rollback queries work");
    assert_eq!(answers.len(), 1);

    let stats = handle.shutdown();
    assert_eq!(stats.worker_panics, 0, "rollback is not a worker panic");
}
