//! End-to-end acceptance for the fleet simulator: the simulation half
//! must be a pure function of (seed, config) — bit-identical traces on
//! replay — and the drive half must push a ~200-device fleet (churn,
//! standby, one hot reload under fire) through a live loopback server
//! with zero protocol errors and zero failed queries.

use std::time::Duration;

use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::fleet::{
    simulate, DriveConfig, FingerprintPool, FleetConfig, FleetReport, LinkConfig, Pacing,
    ReloadHook,
};
use iot_sentinel::serve::{ClientConfig, ServerConfig};
use iot_sentinel::{Sentinel, SentinelBuilder};

fn fp_bits(bits: u32, tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                for (b, slot) in v.iter_mut().enumerate().take(12) {
                    *slot = (bits >> b) & 1;
                }
                v[18] = *t;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

/// A tiny 3-type corpus: fast to train, enough label diversity that
/// the fleet's catalog mix exercises distinct classifier paths.
fn tiny_dataset() -> Dataset {
    let mut ds = Dataset::new();
    for i in 0..12u32 {
        ds.push(LabeledFingerprint::new(
            "AlphaCam",
            fp_bits(0b001, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "BetaPlug",
            fp_bits(0b010, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "GammaHub",
            fp_bits(0b100, &[100 + i, 110, 120]),
        ));
    }
    ds
}

fn tiny_sentinel() -> Sentinel {
    SentinelBuilder::new()
        .dataset(tiny_dataset())
        .training_seed(4)
        .build()
        .unwrap()
}

/// A fleet config sized for CI: ~200 devices over a short virtual
/// horizon with every lifecycle phase reachable — setup bursts,
/// steady re-fingerprints, standby naps, churn with replacement.
fn smoke_config(seed: u64) -> FleetConfig {
    FleetConfig {
        devices: 200,
        seed,
        duration: Duration::from_secs(8),
        ramp: Duration::from_secs(1),
        setup_queries_min: 2,
        setup_queries_max: 5,
        setup_gap_min: Duration::from_millis(50),
        setup_gap_max: Duration::from_millis(300),
        steady_min: Duration::from_millis(800),
        steady_max: Duration::from_secs(2),
        standby_probability: 0.2,
        standby_duration: Duration::from_secs(1),
        churn_lifetime: Some(Duration::from_secs(4)),
        replacement_delay: Duration::from_millis(400),
        reload_at: Some(Duration::from_secs(3)),
        link: LinkConfig {
            min_gap: Duration::from_millis(5),
            ..LinkConfig::default()
        },
    }
}

#[test]
fn same_seed_yields_a_bit_identical_trace() {
    let pool = FingerprintPool::from_dataset(&tiny_dataset());
    let config = smoke_config(42);

    let first = simulate(&config, pool.types());
    let second = simulate(&config, pool.types());
    assert_eq!(first.events, second.events, "event traces diverged");
    assert_eq!(first.summary, second.summary, "summaries diverged");
    assert_eq!(first.digest(), second.digest(), "digests diverged");

    // And the digest is actually sensitive to the seed.
    let other = simulate(&smoke_config(43), pool.types());
    assert_ne!(first.digest(), other.digest(), "seed had no effect");
}

#[test]
fn loopback_fleet_survives_churn_and_a_reload_with_zero_errors() {
    let pool = FingerprintPool::from_dataset(&tiny_dataset());
    let config = smoke_config(42);
    let trace = simulate(&config, pool.types());
    // The scenario must actually contain the phases it claims to test.
    assert!(trace.summary.churned > 0, "no churn in {:?}", trace.summary);
    assert!(
        trace.summary.replacements > 0,
        "no replacements in {:?}",
        trace.summary
    );
    assert!(
        trace.summary.queries > 200,
        "thin trace: {:?}",
        trace.summary
    );

    let mut s = tiny_sentinel();
    let handle = s
        .serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 4,
                poll_interval: Duration::from_millis(20),
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback server");
    let addr = handle.local_addr().to_string();

    // The reload hook republishes the current model in-process — a
    // registry-compatible swap that bumps the serving epoch to 2.
    let hook: ReloadHook<'_> = Box::new(|| s.reload().map_err(|e| e.to_string()));

    let drive_config = DriveConfig {
        connections: 3,
        pacing: Pacing::Uncapped,
        client: ClientConfig {
            retry_jitter_seed: config.seed,
            ..ClientConfig::default()
        },
    };
    let outcome = iot_sentinel::fleet::drive(&trace, &pool, &addr, &drive_config, Some(hook))
        .expect("drive fleet");

    assert_eq!(outcome.errors, 0, "fleet saw query errors");
    assert_eq!(outcome.responses_ok, outcome.queries_sent, "lost responses");
    assert_eq!(
        outcome.queries_sent, trace.summary.queries,
        "driver dropped planned queries"
    );
    assert!(outcome.latency.count() > 0, "no latencies recorded");

    let reload = outcome.reload.as_ref().expect("reload outcome missing");
    assert_eq!(reload.epoch, 2, "unexpected post-reload epoch");
    assert_eq!(reload.stale_responses, 0, "stale epochs after reload ack");
    assert!(
        reload.connections_observed > 0,
        "no connection observed the new epoch"
    );

    let report = FleetReport::compose(&config, &trace, &outcome);
    assert_eq!(report.trace_digest, trace.digest());
    assert_eq!(report.errors, 0);
    assert_eq!(report.reload_epoch, Some(2));
    assert_eq!(report.sim, trace.summary);

    let stats = handle.shutdown();
    assert_eq!(stats.protocol_errors, 0, "stats: {stats:?}");
    assert_eq!(stats.worker_panics, 0, "stats: {stats:?}");
    assert_eq!(stats.reloads, 1, "stats: {stats:?}");
    assert_eq!(
        stats.queries_answered, outcome.responses_ok,
        "server and driver disagree on answered queries"
    );
}
