//! The full enforcement pipeline: raw frames → capture monitor →
//! fingerprint → IoT Security Service → SDN controller → switch
//! decisions, assembled through the `SentinelBuilder` facade.

use std::net::{IpAddr, Ipv4Addr};

use iot_sentinel::core::{
    Endpoint, IdentifierConfig, IsolationClass, Severity, VulnerabilityRecord,
};
use iot_sentinel::devices::{catalog, generate_dataset, NetworkEnvironment, SetupSimulator};
use iot_sentinel::fingerprint::FingerprintExtractor;
use iot_sentinel::gateway::{FlowDecision, FlowKey, OvsSwitch};
use iot_sentinel::ml::{ForestConfig, TreeConfig};
use iot_sentinel::net::{CaptureMonitor, MacAddr, Port, SetupDetectorConfig, SimTime};
use iot_sentinel::SentinelBuilder;

fn fast_config() -> IdentifierConfig {
    IdentifierConfig {
        forest: ForestConfig {
            n_trees: 15,
            tree: TreeConfig::default(),
            bootstrap: true,
            threads: 1,
        },
        ..IdentifierConfig::default()
    }
}

fn flow(src: MacAddr, dst: MacAddr, dst_ip: Ipv4Addr) -> FlowKey {
    FlowKey {
        src_mac: src,
        dst_mac: dst,
        src_ip: IpAddr::V4(Ipv4Addr::new(192, 168, 1, 50)),
        dst_ip: IpAddr::V4(dst_ip),
        protocol: 6,
        src_port: Port::new(51000),
        dst_port: Port::new(443),
    }
}

#[test]
fn frames_to_flow_decisions() {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let used = [
        "HueBridge",
        "EdnetCam",
        "Aria",
        "MAXGateway",
        "Withings",
        "WeMoLink",
    ];
    let selected: Vec<_> = profiles
        .iter()
        .filter(|p| used.contains(&p.type_name.as_str()))
        .cloned()
        .collect();

    // Build the whole stack through the facade; EdnetCam is
    // known-vulnerable.
    let dataset = generate_dataset(&selected, &env, 8, 4);
    let mut sentinel = SentinelBuilder::new()
        .dataset(dataset)
        .identifier_config(fast_config())
        .training_seed(21)
        .vulnerability(
            "EdnetCam",
            VulnerabilityRecord::new("CVE-DEMO-1", "open stream", Severity::Critical),
        )
        .vendor_endpoint("EdnetCam", Endpoint::Host("ipcam.ednet.example".into()))
        .build()
        .unwrap();
    let mut switch = OvsSwitch::new();
    let resolver_env = env.clone();
    let resolver = move |host: &str| Some(IpAddr::V4(resolver_env.resolve_host(host)));

    // Two devices join: a clean bridge and the vulnerable camera.
    let mut sim = SetupSimulator::new(env.clone(), 0xAA);
    let mut monitor = CaptureMonitor::new(SetupDetectorConfig::default());
    monitor.ignore_mac(env.gateway_mac);
    let mut macs = std::collections::HashMap::new();
    for name in ["HueBridge", "EdnetCam"] {
        let profile = profiles.iter().find(|p| p.type_name == name).unwrap();
        let trace = sim.simulate(profile, 50);
        for frame in trace.iter() {
            monitor.observe_frame(frame).unwrap();
        }
        for capture in monitor.finish_all() {
            sentinel
                .device_appeared(capture.mac(), capture.first_seen())
                .unwrap();
            let fp = FingerprintExtractor::extract_from(capture.packets());
            let response = sentinel
                .complete_setup(capture.mac(), &fp, &resolver)
                .unwrap();
            assert_eq!(
                sentinel.type_name(response.device_type),
                Some(name),
                "device must be identified correctly for this test to be meaningful"
            );
            macs.insert(name, capture.mac());
        }
    }
    let hue = macs["HueBridge"];
    let cam = macs["EdnetCam"];

    // Isolation levels took effect.
    assert_eq!(
        sentinel.device(hue).unwrap().isolation.class(),
        IsolationClass::Trusted
    );
    assert_eq!(
        sentinel.device(cam).unwrap().isolation.class(),
        IsolationClass::Restricted
    );

    // Trusted bridge: full Internet.
    let d = switch.process_packet(
        flow(hue, env.gateway_mac, Ipv4Addr::new(8, 8, 8, 8)),
        false,
        SimTime::ZERO,
        sentinel.controller_mut(),
    );
    assert_eq!(d, FlowDecision::Allow);

    // Restricted camera: vendor cloud allowed, rest blocked.
    let cloud = env.resolve_host("ipcam.ednet.example");
    let d = switch.process_packet(
        flow(cam, env.gateway_mac, cloud),
        false,
        SimTime::ZERO,
        sentinel.controller_mut(),
    );
    assert_eq!(d, FlowDecision::Allow, "vendor cloud must stay reachable");
    let d = switch.process_packet(
        flow(cam, env.gateway_mac, Ipv4Addr::new(8, 8, 8, 8)),
        false,
        SimTime::ZERO,
        sentinel.controller_mut(),
    );
    assert!(!d.is_allowed(), "non-vendor Internet must be blocked");

    // Cross-overlay device-to-device blocked both ways.
    let d = switch.process_packet(
        flow(cam, hue, Ipv4Addr::new(192, 168, 1, 20)),
        true,
        SimTime::ZERO,
        sentinel.controller_mut(),
    );
    assert!(!d.is_allowed());
    let d = switch.process_packet(
        flow(hue, cam, Ipv4Addr::new(192, 168, 1, 21)),
        true,
        SimTime::ZERO,
        sentinel.controller_mut(),
    );
    assert!(!d.is_allowed());

    // Flow-table caching: replaying a flow does not re-consult the
    // controller.
    let before = sentinel.controller().packet_in_count();
    for _ in 0..5 {
        switch.process_packet(
            flow(hue, env.gateway_mac, Ipv4Addr::new(8, 8, 8, 8)),
            false,
            SimTime::ZERO,
            sentinel.controller_mut(),
        );
    }
    assert_eq!(
        sentinel.controller().packet_in_count(),
        before,
        "cached flows skip packet-in"
    );
}
