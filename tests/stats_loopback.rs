//! End-to-end acceptance for the observability layer: a live server
//! polled with `Stats` frames while query traffic and a hot reload are
//! in flight must answer every poll (never an error), every snapshot
//! must be internally consistent, and per-metric counts must be
//! monotone from poll to poll. Once traffic drains, the final snapshot
//! must reconcile exactly with what the clients sent: stage histogram
//! counts equal to query frames served, one reload, epoch two.
//!
//! Consistency here is deliberately *per metric*: the registry uses
//! relaxed atomics, so cross-metric equalities (e.g. decode count ==
//! frame count) only hold at quiescence — mid-flight polls assert
//! monotonicity and summary sanity instead.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::obs::{Counter, HistogramSummary, MetricsSnapshot, Stage};
use iot_sentinel::serve::{ClientConfig, SentinelClient, ServerConfig};
use iot_sentinel::{Sentinel, SentinelBuilder};

fn fp_bits(bits: u32, tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                for (b, slot) in v.iter_mut().enumerate().take(12) {
                    *slot = (bits >> b) & 1;
                }
                v[18] = *t;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn sentinel() -> Sentinel {
    let mut ds = Dataset::new();
    for i in 0..12u32 {
        ds.push(LabeledFingerprint::new(
            "TypeA",
            fp_bits(0b001, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "TypeB",
            fp_bits(0b010, &[100 + i, 110, 120]),
        ));
    }
    SentinelBuilder::new()
        .dataset(ds)
        .training_seed(4)
        .build()
        .expect("train")
}

/// Counters that must never decrease between successive snapshots:
/// everything except the active-connections gauge and the per-model
/// scan counters, which reset when a reload installs a fresh bank.
fn monotone_counters() -> impl Iterator<Item = Counter> {
    Counter::ALL.into_iter().filter(|c| c.is_monotone())
}

/// Per-snapshot invariants that hold even mid-flight.
fn assert_snapshot_sane(snapshot: &MetricsSnapshot) {
    for stage in Stage::ALL {
        let Some(summary) = snapshot.stage(stage) else {
            continue;
        };
        if summary.count == 0 {
            assert_eq!(
                *summary,
                HistogramSummary::default(),
                "an empty {} summary must be all zeros",
                stage.name()
            );
            continue;
        }
        // Quantiles of one histogram are ordered by construction; the
        // relaxed min/max cells are excluded mid-flight (they can lag
        // the bucket counts by an update).
        assert!(
            summary.p50_ns <= summary.p90_ns
                && summary.p90_ns <= summary.p99_ns
                && summary.p99_ns <= summary.p999_ns,
            "stage {} quantiles out of order: {summary:?}",
            stage.name()
        );
    }
    // The epoch only ever moves 1 -> 2 in this test.
    assert!(
        snapshot.epoch == 1 || snapshot.epoch == 2,
        "unexpected epoch {}",
        snapshot.epoch
    );
    assert!(snapshot.counter(Counter::Reloads) <= 1);
    assert_eq!(snapshot.counter(Counter::WorkerPanics), 0);
    assert_eq!(snapshot.counter(Counter::ProtocolErrors), 0);
}

/// Every monotone counter and every stage count moved forward (or held).
fn assert_monotone(prev: &MetricsSnapshot, next: &MetricsSnapshot) {
    assert!(
        prev.epoch <= next.epoch,
        "epoch regressed: {} -> {}",
        prev.epoch,
        next.epoch
    );
    for counter in monotone_counters() {
        assert!(
            prev.counter(counter) <= next.counter(counter),
            "counter {} regressed: {} -> {}",
            counter.name(),
            prev.counter(counter),
            next.counter(counter)
        );
    }
    for stage in Stage::ALL {
        let before = prev.stage(stage).map_or(0, |s| s.count);
        let after = next.stage(stage).map_or(0, |s| s.count);
        assert!(
            before <= after,
            "stage {} count regressed: {before} -> {after}",
            stage.name()
        );
    }
}

#[test]
fn stats_polls_stay_consistent_under_fire_and_reload() {
    let mut s = sentinel();
    let handle = s
        .serve(
            "127.0.0.1:0",
            ServerConfig {
                workers: 6,
                poll_interval: Duration::from_millis(20),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
    let addr = handle.local_addr();
    let stop = AtomicBool::new(false);
    let batch: Vec<Fingerprint> = vec![
        fp_bits(0b001, &[104, 110, 120]),
        fp_bits(0b010, &[105, 110, 120]),
        fp_bits(0b1000, &[903, 910, 920]),
    ];

    let (query_frames_sent, polls) = std::thread::scope(|scope| {
        // Three query clients hammer batches until told to stop.
        let workers: Vec<_> = (0..3usize)
            .map(|id| {
                let batch = &batch;
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = SentinelClient::connect(addr, ClientConfig::default())
                        .unwrap_or_else(|e| panic!("query client {id}: {e}"));
                    let mut frames = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        client
                            .query_batch(batch)
                            .unwrap_or_else(|e| panic!("query client {id} errored: {e}"));
                        frames += 1;
                    }
                    frames
                })
            })
            .collect();

        // One poller reads Stats frames the whole time. Every poll must
        // succeed, parse, and extend the previous snapshot.
        let poller = scope.spawn(|| {
            let mut client =
                SentinelClient::connect(addr, ClientConfig::default()).expect("stats client");
            let mut prev: Option<MetricsSnapshot> = None;
            let mut polls = 0u64;
            while !stop.load(Ordering::Acquire) {
                let snapshot = client.server_stats().expect("stats poll mid-fire");
                assert_snapshot_sane(&snapshot);
                if let Some(prev) = &prev {
                    assert_monotone(prev, &snapshot);
                }
                prev = Some(snapshot);
                polls += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            polls
        });

        // Let traffic and polling overlap, then reload under fire.
        std::thread::sleep(Duration::from_millis(80));
        let new_fps: Vec<Fingerprint> = (0..10)
            .map(|i| fp_bits(0b1000, &[900 + i, 910, 920]))
            .collect();
        s.add_device_type("HotType", &new_fps, 9)
            .expect("incremental training");
        assert_eq!(s.reload().expect("reload under fire"), 2);
        std::thread::sleep(Duration::from_millis(80));

        stop.store(true, Ordering::Release);
        let sent: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
        (sent, poller.join().expect("poller"))
    });
    assert!(query_frames_sent > 0, "no query traffic was generated");
    assert!(polls > 0, "no stats polls completed");

    // Quiescence: all clients joined, so every sent frame is answered
    // and counted. The counting happens just *after* the response is
    // written, so give the workers a beat to land the last increments
    // before asserting exact equalities.
    let expected_queries = query_frames_sent * batch.len() as u64;
    for _ in 0..1_000 {
        if handle.metrics().get(Counter::QueriesAnswered) == expected_queries {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let last = {
        let mut client = SentinelClient::connect(addr, ClientConfig::default()).expect("connect");
        client.server_stats().expect("final stats poll")
    };
    assert_eq!(last.epoch, 2);
    assert_eq!(last.counter(Counter::Reloads), 1);
    assert_eq!(last.counter(Counter::QueryFrames), query_frames_sent);
    assert_eq!(
        last.counter(Counter::QueriesAnswered),
        query_frames_sent * batch.len() as u64
    );
    for stage in Stage::ALL {
        let summary = last.stage(stage).expect("stage present after traffic");
        assert_eq!(
            summary.count,
            query_frames_sent,
            "stage {} must have recorded exactly once per query frame",
            stage.name()
        );
        assert!(summary.min_ns <= summary.max_ns);
        assert!(summary.p999_ns <= summary.max_ns);
        assert!(summary.sum_ns >= summary.count * summary.min_ns);
    }
    // The scan counters rode along: one scan query per fingerprint —
    // but only since the reload, because they live in the compiled
    // bank the reload replaced.
    let scans = last.counter(Counter::ScanQueries);
    assert!(
        scans > 0 && scans <= expected_queries,
        "post-reload scan count {scans} outside (0, {expected_queries}]"
    );

    // The in-process snapshot agrees with the wire snapshot at
    // quiescence (modulo the stats/connection traffic of the final
    // poll itself, which touches neither stages nor query counters).
    let local = handle.metrics_snapshot();
    assert_eq!(local.counter(Counter::QueryFrames), query_frames_sent);
    for stage in Stage::ALL {
        assert_eq!(
            local.stage(stage).map(|s| s.count),
            last.stage(stage).map(|s| s.count)
        );
    }

    let stats = handle.shutdown();
    assert_eq!(
        stats.queries_answered,
        query_frames_sent * batch.len() as u64
    );
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.worker_panics, 0);
}
