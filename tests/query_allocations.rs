//! Allocation accounting for the IoTSSP query hot path.
//!
//! Two stacked claims are pinned with a counting global allocator:
//!
//! * The `TypeId` redesign: answering a query allocates no strings —
//!   a [`ServiceResponse`] is a `Copy` value (interned id + isolation
//!   class), and names are resolved by *borrowing* from the
//!   [`TypeRegistry`]. Response assembly performs **zero** heap
//!   allocations.
//! * The compiled classifier bank: `identify` runs stage one against
//!   a flat node arena through a per-thread `CandidateScratch`, so a
//!   warm single-candidate (or unknown) query performs **zero** heap
//!   allocations end to end — F′ conversion, candidate collection,
//!   vote counting, identification result and response included.
//! * The feature-usage index: trained banks now route stage one
//!   through the prefilter (query bitmap + cached default verdicts),
//!   and that must not cost an allocation either — the zero-allocation
//!   pins above now hold *for the indexed scan*.
//! * The compute pool: parallel paths no longer spawn scoped threads
//!   per call — sharded scans and batch fan-out run on persistent
//!   pinned workers, so a warm pooled call is **zero heap
//!   allocations** AND **zero thread spawns** (pinned by the
//!   workspace-wide spawn ledger), and the pool's own accounting
//!   reconciles: every task submitted was executed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use iot_sentinel::core::{
    CandidateScratch, IsolationClass, Severity, ShardedScratch, VulnerabilityRecord,
};
use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::ml::ShardScratch;
use iot_sentinel::pool::{thread_spawns, ComputePool};
use iot_sentinel::{Sentinel, SentinelBuilder};

/// The allocation counter is process-global, so concurrently running
/// tests would pollute each other's measured windows. Every test in
/// this binary holds this lock for its whole body.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Heap allocations performed while running `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

fn fp_bits(bits: u32, tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                for (b, slot) in v.iter_mut().enumerate().take(12) {
                    *slot = (bits >> b) & 1;
                }
                v[18] = *t;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn sentinel() -> Sentinel {
    let mut ds = Dataset::new();
    for i in 0..12u32 {
        ds.push(LabeledFingerprint::new(
            "CleanType",
            fp_bits(0b001, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "VulnType",
            fp_bits(0b010, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "OtherType",
            fp_bits(0b100, &[100 + i, 110, 120]),
        ));
    }
    SentinelBuilder::new()
        .dataset(ds)
        .training_seed(4)
        .vulnerability(
            "VulnType",
            VulnerabilityRecord::new("CVE-A", "demo", Severity::High),
        )
        .build()
        .unwrap()
}

/// The probes every test below agrees on: two clean single-candidate
/// matches and one unknown device. None of them needs discrimination,
/// so all three sit on the allocation-free fast path.
const PROBE_BITS: [u32; 3] = [0b001, 0b010, 0b1000];

#[test]
fn response_assembly_is_allocation_free() {
    let _serial = serial();
    let s = sentinel();
    let service = s.service();
    for (bits, expected) in [
        (0b001u32, IsolationClass::Trusted),
        (0b010, IsolationClass::Restricted),
        (0b1000, IsolationClass::Strict),
    ] {
        let probe = fp_bits(bits, &[104, 110, 120]);
        // Identification runs outside the measured region; what is
        // measured is everything the redesign claims is free:
        // assessment, response construction, and name resolution.
        let (_, identification) = service.handle_detailed(&probe);
        let device_type = identification.device_type();
        let (allocs, response) = allocations_during(|| {
            let isolation = service.vulnerabilities().assess(device_type);
            let name: Option<&str> = service.registry().resolve(device_type);
            std::hint::black_box(name);
            iot_sentinel::core::ServiceResponse {
                device_type,
                isolation,
                needed_discrimination: identification.needed_discrimination(),
            }
        });
        assert_eq!(response.isolation, expected);
        assert_eq!(
            allocs, 0,
            "assembling a response for {expected:?} must not touch the heap"
        );
    }
}

#[test]
fn warm_identify_is_allocation_free() {
    let _serial = serial();
    // The compiled-bank claim in full: stage one runs against the flat
    // arena, candidates land in the per-thread scratch, and the
    // single-candidate / unknown outcomes own no heap data — so a warm
    // `identify` performs zero allocations.
    let s = sentinel();
    let identifier = s.identifier();
    for bits in PROBE_BITS {
        let probe = fp_bits(bits, &[104, 110, 120]);
        // Warm up the thread-local scratch (and any lazy state).
        std::hint::black_box(identifier.identify(&probe));

        let (identify_allocs, result) =
            allocations_during(|| std::hint::black_box(identifier.identify(&probe)));
        assert!(
            !result.needed_discrimination(),
            "probe {bits:#b} must sit on the single-candidate fast path"
        );
        assert_eq!(
            identify_allocs, 0,
            "warm identify (bits {bits:#b}) must not touch the heap"
        );
    }
}

#[test]
fn classify_candidates_into_reuses_the_scratch() {
    let _serial = serial();
    let s = sentinel();
    let identifier = s.identifier();
    let prefix_len = identifier.config().fixed_prefix_len;
    let mut scratch = CandidateScratch::new();
    for bits in PROBE_BITS {
        let probe = fp_bits(bits, &[104, 110, 120]);
        let fixed = probe.to_fixed_with(prefix_len);
        // First call may grow the scratch buffers...
        identifier.classify_candidates_into(&fixed, &mut scratch);
        // ...after which classification is allocation-free.
        let (allocs, ()) =
            allocations_during(|| identifier.classify_candidates_into(&fixed, &mut scratch));
        assert_eq!(
            allocs, 0,
            "classify_candidates_into (bits {bits:#b}) must reuse the scratch"
        );
        assert_eq!(
            scratch.candidates(),
            identifier.classify_candidates(&fixed).as_slice(),
            "scratch and owned-Vec entry points must agree"
        );
        // And the caller-owned-scratch identify is equally free.
        std::hint::black_box(identifier.identify_with(&probe, &mut scratch));
        let (allocs, _) = allocations_during(|| {
            std::hint::black_box(identifier.identify_with(&probe, &mut scratch))
        });
        assert_eq!(allocs, 0, "warm identify_with (bits {bits:#b})");
    }
    // The conversion the scratch replaces is a real cost: computing F′
    // from scratch does allocate.
    let probe = fp_bits(0b001, &[104, 110, 120]);
    let (fresh_conversion_allocs, _) =
        allocations_during(|| std::hint::black_box(probe.to_fixed_with(prefix_len)));
    assert!(
        fresh_conversion_allocs > 0,
        "to_fixed_with without a scratch is expected to allocate"
    );
}

#[test]
fn warm_handle_is_allocation_free() {
    let _serial = serial();
    // End to end: the full service query (identify + assess + respond)
    // must be allocation-free once the per-thread scratch is warm.
    let s = sentinel();
    let service = s.service();
    for bits in PROBE_BITS {
        let probe = fp_bits(bits, &[104, 110, 120]);
        // Warm up any lazily initialised state.
        std::hint::black_box(service.handle(&probe));

        let (handle_allocs, _) =
            allocations_during(|| std::hint::black_box(service.handle(&probe)));
        assert_eq!(
            handle_allocs, 0,
            "a warm single-candidate handle (bits {bits:#b}) must not touch the heap"
        );
    }
}

/// The 5-type dataset the sharded tests train on, so shard counts up
/// to 4 are not clamped away.
fn five_type_dataset() -> Dataset {
    let mut ds = Dataset::new();
    for (label, bits) in [
        ("TypeA", 0b00001u32),
        ("TypeB", 0b00010),
        ("TypeC", 0b00100),
        ("TypeD", 0b10000),
        ("TypeE", 0b100000),
    ] {
        for i in 0..12u32 {
            ds.push(LabeledFingerprint::new(
                label,
                fp_bits(bits, &[100 + i, 110, 120]),
            ));
        }
    }
    ds
}

#[test]
fn pooled_sharded_scan_is_allocation_and_spawn_free() {
    let _serial = serial();
    // The sharded scan used to spawn scoped threads per call and was
    // allowed their fixed per-spawn bookkeeping. On the compute pool
    // the workers are persistent, so the pin tightens to zero: a warm
    // pooled scan at ANY shard count allocates nothing and spawns
    // nothing — the lanes live in the caller's scratch and the
    // tickets in the pool's reused deques.
    let s = SentinelBuilder::new()
        .dataset(five_type_dataset())
        .training_seed(4)
        .build()
        .unwrap();
    let identifier = s.identifier();
    let probe = fp_bits(0b001, &[104, 110, 120]);
    let expected = identifier.identify(&probe);
    let pool = ComputePool::new(3);
    let mut scratch = CandidateScratch::new();
    let mut lanes = ShardScratch::default();
    // Grow every lane buffer and the pool's queues at the widest
    // shard count before measuring.
    for _ in 0..4 {
        std::hint::black_box(identifier.identify_sharded_on(
            &pool,
            &probe,
            4,
            &mut scratch,
            &mut lanes,
        ));
    }

    let spawns_before = thread_spawns();
    for shards in [1usize, 2, 3, 4] {
        identifier.identify_sharded_on(&pool, &probe, shards, &mut scratch, &mut lanes);
        let (allocs, result) = allocations_during(|| {
            std::hint::black_box(identifier.identify_sharded_on(
                &pool,
                &probe,
                shards,
                &mut scratch,
                &mut lanes,
            ))
        });
        assert_eq!(
            result.device_type(),
            expected.device_type(),
            "{shards}-shard identification diverged from the sequential result"
        );
        assert_eq!(
            allocs, 0,
            "a warm {shards}-shard pooled scan must not touch the heap"
        );
    }
    assert_eq!(
        thread_spawns(),
        spawns_before,
        "pooled scans must not spawn threads"
    );
    let counters = pool.counters();
    assert_eq!(
        counters.submitted, counters.executed,
        "every task handed to the pool must have run"
    );
    assert!(
        counters.submitted > 0,
        "multi-shard scans must actually have used the pool"
    );
}

#[test]
fn small_bank_auto_sharding_is_inline_and_allocation_free() {
    let _serial = serial();
    // The auto-router sends banks below the sharding threshold through
    // the plain inline scan: same results, zero allocations, zero
    // spawns, and no pool traffic at all.
    let s = SentinelBuilder::new()
        .dataset(five_type_dataset())
        .training_seed(4)
        .build()
        .unwrap();
    let identifier = s.identifier();
    let prefix_len = identifier.config().fixed_prefix_len;
    let probe = fp_bits(0b001, &[104, 110, 120]).to_fixed_with(prefix_len);
    let expected = identifier.classify_candidates(&probe);
    let mut scratch = ShardedScratch::new();
    for _ in 0..2 {
        identifier.classify_candidates_sharded_into(&probe, 4, &mut scratch);
    }
    let spawns_before = thread_spawns();
    for shards in [1usize, 2, 3, 4] {
        let (allocs, ()) = allocations_during(|| {
            identifier.classify_candidates_sharded_into(&probe, shards, &mut scratch)
        });
        assert_eq!(scratch.candidates(), expected.as_slice());
        assert_eq!(
            allocs, 0,
            "a warm auto-routed {shards}-shard scan must not touch the heap"
        );
    }
    assert_eq!(
        thread_spawns(),
        spawns_before,
        "small banks must scan inline without spawning"
    );
}

#[test]
fn warm_pooled_batch_is_allocation_and_spawn_free() {
    let _serial = serial();
    // handle_batch's parallel arm fans chunks out on the pool; with
    // the response buffer caller-owned (`handle_batch_into`), a warm
    // batch is zero allocations and zero spawns end to end.
    let s = sentinel();
    let service = s.service();
    let pool = ComputePool::new(2);
    let probes: Vec<Fingerprint> = (0..iot_sentinel::core::BATCH_CHUNK * 2 + 5)
        .map(|i| {
            let bits = PROBE_BITS[i % PROBE_BITS.len()];
            fp_bits(bits, &[104, 110, 120])
        })
        .collect();
    let sequential = service.handle_batch_with(&probes, 1);
    let mut out = Vec::new();
    // Chunk→worker placement is racy, so a cold worker could warm its
    // thread-local query scratch inside the measured window. Warm
    // every executor deterministically instead: threads+1 barrier
    // tasks force the caller and both workers to run exactly one task
    // each (an executor blocked in the barrier cannot take a second),
    // and each task warms its own thread's scratch.
    let barrier = std::sync::Barrier::new(3);
    pool.for_each(3, |_| {
        barrier.wait();
        for bits in PROBE_BITS {
            std::hint::black_box(service.handle(&fp_bits(bits, &[104, 110, 120])));
        }
    })
    .unwrap();
    // Then warm the caller-side lane and output buffers.
    for _ in 0..2 {
        service.handle_batch_into(&pool, &probes, &mut out);
    }
    let spawns_before = thread_spawns();
    let (allocs, ()) = allocations_during(|| service.handle_batch_into(&pool, &probes, &mut out));
    assert_eq!(allocs, 0, "a warm pooled batch must not touch the heap");
    assert_eq!(
        thread_spawns(),
        spawns_before,
        "pooled batches must not spawn threads"
    );
    assert_eq!(out, sequential, "pooled batch responses diverged");
    let counters = pool.counters();
    assert_eq!(
        counters.submitted, counters.executed,
        "every task handed to the pool must have run"
    );
}

#[test]
fn scan_instrumentation_counts_without_allocating() {
    let _serial = serial();
    // The compiled bank now keeps live scan counters (queries seen,
    // prefilter consultations, forests skipped). They are plain
    // relaxed atomics bumped at query granularity, so the warm handle
    // path must stay allocation-free with them recording — and they
    // must actually advance inside the measured window.
    let s = sentinel();
    let service = s.service();
    let probe = fp_bits(0b001, &[104, 110, 120]);
    std::hint::black_box(service.handle(&probe));

    let before = service.bank_stats().scan;
    let (allocs, _) = allocations_during(|| {
        for _ in 0..32 {
            std::hint::black_box(service.handle(&probe));
        }
    });
    let after = service.bank_stats().scan;
    assert_eq!(
        allocs, 0,
        "warm handle with scan counters live must not touch the heap"
    );
    assert_eq!(
        after.queries - before.queries,
        32,
        "every warm handle must count exactly one scan query"
    );
    assert!(
        after.prefiltered >= before.prefiltered,
        "prefilter consultations must never regress"
    );
}

#[test]
fn interpreted_bank_no_longer_allocates_vote_vectors() {
    let _serial = serial();
    // The reference interpreter also stopped paying `predict_proba`'s
    // per-classifier vote vector: scanning the bank through
    // `classify_candidates_interpreted` allocates only the returned
    // candidate Vec (at most one allocation per non-empty result).
    let s = sentinel();
    let identifier = s.identifier();
    let prefix_len = identifier.config().fixed_prefix_len;
    for bits in PROBE_BITS {
        let fixed = fp_bits(bits, &[104, 110, 120]).to_fixed_with(prefix_len);
        let (allocs, candidates) =
            allocations_during(|| identifier.classify_candidates_interpreted(&fixed));
        let budget = u64::from(!candidates.is_empty());
        assert!(
            allocs <= budget,
            "interpreted scan (bits {bits:#b}) allocated {allocs} times for \
             {} candidates — the vote vectors are supposed to be gone",
            candidates.len()
        );
    }
}
