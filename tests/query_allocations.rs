//! Allocation accounting for the IoTSSP query hot path.
//!
//! The `TypeId` redesign's core claim: answering a query allocates no
//! strings — a [`ServiceResponse`] is a `Copy` value (interned id +
//! isolation class), and names are resolved by *borrowing* from the
//! [`TypeRegistry`]. This test pins the claim with a counting global
//! allocator: response assembly (assessment + response construction +
//! name resolution) performs **zero** heap allocations, and `handle`
//! allocates exactly as much as the identification stage alone — the
//! response adds nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use iot_sentinel::core::{IsolationClass, Severity, VulnerabilityRecord};
use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::{Sentinel, SentinelBuilder};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Heap allocations performed while running `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

fn fp_bits(bits: u32, tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                for (b, slot) in v.iter_mut().enumerate().take(12) {
                    *slot = (bits >> b) & 1;
                }
                v[18] = *t;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn sentinel() -> Sentinel {
    let mut ds = Dataset::new();
    for i in 0..12u32 {
        ds.push(LabeledFingerprint::new(
            "CleanType",
            fp_bits(0b001, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "VulnType",
            fp_bits(0b010, &[100 + i, 110, 120]),
        ));
        ds.push(LabeledFingerprint::new(
            "OtherType",
            fp_bits(0b100, &[100 + i, 110, 120]),
        ));
    }
    SentinelBuilder::new()
        .dataset(ds)
        .training_seed(4)
        .vulnerability(
            "VulnType",
            VulnerabilityRecord::new("CVE-A", "demo", Severity::High),
        )
        .build()
        .unwrap()
}

#[test]
fn response_assembly_is_allocation_free() {
    let s = sentinel();
    let service = s.service();
    for (bits, expected) in [
        (0b001u32, IsolationClass::Trusted),
        (0b010, IsolationClass::Restricted),
        (0b1000, IsolationClass::Strict),
    ] {
        let probe = fp_bits(bits, &[104, 110, 120]);
        // Identification runs outside the measured region; what is
        // measured is everything the redesign claims is free:
        // assessment, response construction, and name resolution.
        let (_, identification) = service.handle_detailed(&probe);
        let device_type = identification.device_type();
        let (allocs, response) = allocations_during(|| {
            let isolation = service.vulnerabilities().assess(device_type);
            let name: Option<&str> = service.registry().resolve(device_type);
            std::hint::black_box(name);
            iot_sentinel::core::ServiceResponse {
                device_type,
                isolation,
                needed_discrimination: identification.needed_discrimination(),
            }
        });
        assert_eq!(response.isolation, expected);
        assert_eq!(
            allocs, 0,
            "assembling a response for {expected:?} must not touch the heap"
        );
    }
}

#[test]
fn identify_fixed_conversion_is_allocation_free_in_steady_state() {
    // `identify` converts F to F′ through a per-thread scratch buffer;
    // once that scratch is warm, identification allocates exactly what
    // candidate classification alone allocates — the per-query
    // fixed-vector (and unique-prefix) allocations are gone.
    let s = sentinel();
    let identifier = s.identifier();
    let prefix_len = identifier.config().fixed_prefix_len;
    for bits in [0b001u32, 0b010, 0b1000] {
        let probe = fp_bits(bits, &[104, 110, 120]);
        let fixed = probe.to_fixed_with(prefix_len);
        // Warm up the thread-local scratch (and any lazy state).
        std::hint::black_box(identifier.identify(&probe));
        std::hint::black_box(identifier.classify_candidates(&fixed));

        let (classify_allocs, _) =
            allocations_during(|| std::hint::black_box(identifier.classify_candidates(&fixed)));
        let (identify_allocs, _) =
            allocations_during(|| std::hint::black_box(identifier.identify(&probe)));
        assert_eq!(
            identify_allocs, classify_allocs,
            "identify (bits {bits:#b}) must allocate exactly as much as \
             classification alone: the F->F' conversion reuses the scratch"
        );
        // And the conversion it avoids is a real cost: computing F'
        // from scratch allocates.
        let (fresh_conversion_allocs, _) =
            allocations_during(|| std::hint::black_box(probe.to_fixed_with(prefix_len)));
        assert!(
            fresh_conversion_allocs > 0,
            "to_fixed_with without a scratch is expected to allocate"
        );
    }
}

#[test]
fn handle_allocates_no_more_than_identification_alone() {
    let s = sentinel();
    let service = s.service();
    for bits in [0b001u32, 0b010, 0b1000] {
        let probe = fp_bits(bits, &[104, 110, 120]);
        // Warm up any lazily initialised state.
        std::hint::black_box(service.handle(&probe));
        std::hint::black_box(service.identifier().identify(&probe));

        let (identify_allocs, _) =
            allocations_during(|| std::hint::black_box(service.identifier().identify(&probe)));
        let (handle_allocs, _) =
            allocations_during(|| std::hint::black_box(service.handle(&probe)));
        assert_eq!(
            handle_allocs, identify_allocs,
            "the response layer on top of identification must add zero allocations"
        );
    }
}
