//! Thread accounting for the compute pool.
//!
//! The pool redesign's structural claim: all parallel execution —
//! sharded scans, batch fan-out, the batch×shard product — runs on
//! **one persistent set of pinned workers** sized when the
//! [`ServiceCell`] is built, and on nothing else. These tests pin that
//! with process-level evidence from `/proc/self/status`:
//!
//! * driving batches over a pool-equipped cell never raises the live
//!   thread count above the baseline measured right after the pool
//!   came up (no per-batch, per-shard or per-chunk spawning), and
//! * hot-reload epoch swaps neither kill nor re-create workers — the
//!   same pool instance (and the same thread count) survives every
//!   swap, and dropping the last handle to a private pool joins all
//!   of its workers.
//!
//! Thread counts are process-global state, so every test here holds
//! one serialising lock for its whole body, and the suite lives in its
//! own integration binary (its own process) so sibling test binaries
//! cannot pollute the counts.

use std::sync::{Arc, Mutex};

use iot_sentinel::core::ServiceCell;
use iot_sentinel::fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
use iot_sentinel::pool::ComputePool;
use iot_sentinel::SentinelBuilder;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Live threads in this process per `/proc/self/status`; 0 where
/// procfs is unavailable, which degrades the assertions below to
/// spawn-ledger accounting only.
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn fp_bits(bits: u32, tags: &[u32]) -> Fingerprint {
    Fingerprint::from_columns(
        tags.iter()
            .map(|t| {
                let mut v = [0u32; 23];
                for (b, slot) in v.iter_mut().enumerate().take(12) {
                    *slot = (bits >> b) & 1;
                }
                v[18] = *t;
                PacketFeatures::from_raw(v)
            })
            .collect(),
    )
}

fn dataset() -> Dataset {
    let mut ds = Dataset::new();
    for (label, bits) in [
        ("TypeA", 0b00001u32),
        ("TypeB", 0b00010),
        ("TypeC", 0b00100),
        ("TypeD", 0b10000),
        ("TypeE", 0b100000),
    ] {
        for i in 0..12u32 {
            ds.push(LabeledFingerprint::new(
                label,
                fp_bits(bits, &[100 + i, 110, 120]),
            ));
        }
    }
    ds
}

fn probes(count: usize) -> Vec<Fingerprint> {
    (0..count)
        .map(|i| match i % 3 {
            0 => fp_bits(0b00001, &[103 + (i as u32 % 5), 110, 120]),
            1 => fp_bits(0b00010, &[104 + (i as u32 % 5), 110, 120]),
            // Bit 11 stays clear of both the trained types (bits 0–5)
            // and the hot-reload swap types (bits 6–8): this probe is
            // an unknown device in every epoch.
            _ => fp_bits(0b1000_0000_0000, &[105, 110, 120]),
        })
        .collect()
}

#[test]
fn batch_load_never_exceeds_the_configured_pool_size() {
    let _serial = serial();
    let mut sentinel = SentinelBuilder::new()
        .dataset(dataset())
        .training_seed(4)
        .compute_threads(3)
        .build()
        .unwrap();
    let cell = Arc::clone(sentinel.service_cell());
    assert_eq!(cell.pool().threads(), 3, "--compute-threads sizing");

    // Baseline *after* the pool exists: its 3 pinned workers are the
    // only compute threads this process is ever allowed to hold.
    let baseline = live_threads();
    let spawns_before = iot_sentinel::pool::thread_spawns();
    let batch = probes(iot_sentinel::core::BATCH_CHUNK * 3 + 7);
    let service = cell.load();
    let sequential = service.handle_batch_with(&batch, 1);
    for round in 0..10 {
        let pooled = service.handle_batch_on(cell.pool(), &batch);
        assert_eq!(pooled, sequential, "round {round} diverged");
        // The batch×shard product fans out on the SAME workers.
        let sharded = service.handle_batch_sharded_on(cell.pool(), &batch, 2);
        assert_eq!(sharded, sequential, "sharded round {round} diverged");
        let now = live_threads();
        if baseline > 0 {
            assert!(
                now <= baseline,
                "round {round}: {now} live threads exceed the post-pool \
                 baseline of {baseline} — something spawned per batch"
            );
        }
    }
    assert_eq!(
        iot_sentinel::pool::thread_spawns(),
        spawns_before,
        "driving warm batches must not spawn a single thread"
    );
    let counters = cell.pool().counters();
    assert_eq!(
        counters.submitted, counters.executed,
        "every task handed to the pool must have run"
    );
}

#[test]
fn epoch_swaps_keep_the_pool_and_drop_joins_its_workers() {
    let _serial = serial();
    let mut sentinel = SentinelBuilder::new()
        .dataset(dataset())
        .training_seed(4)
        .build()
        .unwrap();
    let service = sentinel.service().clone();
    let before_pool = live_threads();
    {
        let pool = Arc::new(ComputePool::new(2));
        let cell = ServiceCell::with_pool(service, Arc::clone(&pool));
        let after_pool = live_threads();
        if before_pool > 0 {
            assert_eq!(after_pool, before_pool + 2, "pool spun up its workers");
        }
        let batch = probes(40);
        let expected = cell.load().handle_batch_with(&batch, 1);
        for round in 0..3 {
            let fps: Vec<Fingerprint> = (0..12)
                .map(|i| fp_bits(0b1 << (6 + round), &[3000 + 100 * round as u32 + i, 7, 8]))
                .collect();
            sentinel
                .add_device_type(&format!("Swap{round}"), &fps, 9)
                .unwrap();
            let refreshed = sentinel.service().clone();
            cell.replace(refreshed).unwrap();
            // The swap re-publishes the model; it must neither touch
            // the pool instance nor its threads.
            assert_eq!(
                Arc::as_ptr(cell.pool()),
                Arc::as_ptr(&pool),
                "round {round}: epoch swap replaced the pool"
            );
            if before_pool > 0 {
                assert_eq!(
                    live_threads(),
                    after_pool,
                    "round {round}: epoch swap changed the worker set"
                );
            }
            assert_eq!(cell.load().handle_batch_on(cell.pool(), &batch), expected);
        }
        drop(cell);
        drop(pool);
    }
    if before_pool > 0 {
        assert_eq!(
            live_threads(),
            before_pool,
            "dropping the cell and pool must join every worker"
        );
    }
}
