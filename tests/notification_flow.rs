//! §III-C-3 end to end: a vulnerable device with an uncontrollable
//! side channel cannot be confined by isolation or filtering, so the
//! pipeline escalates to a user removal advisory — and verifies the
//! removal actually happened.

use iot_sentinel::core::{
    IdentifierConfig, IsolationClass, Severity, TypeRegistry, VulnerabilityDatabase,
    VulnerabilityRecord,
};
use iot_sentinel::devices::{capture_setups, catalog, generate_dataset, NetworkEnvironment};
use iot_sentinel::fingerprint::FingerprintExtractor;
use iot_sentinel::gateway::{NotificationCenter, NotificationState, SideChannel};
use iot_sentinel::ml::{ForestConfig, TreeConfig};
use iot_sentinel::net::{SimDuration, SimTime};
use iot_sentinel::SentinelBuilder;

fn fast_config() -> IdentifierConfig {
    IdentifierConfig {
        forest: ForestConfig {
            n_trees: 15,
            tree: TreeConfig::default(),
            bootstrap: true,
            threads: 1,
        },
        ..IdentifierConfig::default()
    }
}

#[test]
fn uncontrollable_vulnerable_device_triggers_removal_advisory() {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();

    // Train on a small neighbourhood including the HomeMatic plug —
    // the one catalogue type whose only radio is proprietary RF.
    let selected: Vec<_> = profiles
        .iter()
        .filter(|p| {
            [
                "HomeMaticPlug",
                "HueBridge",
                "Aria",
                "EdimaxCam",
                "WeMoSwitch",
            ]
            .contains(&p.type_name.as_str())
        })
        .cloned()
        .collect();

    // The IoTSSP knows a CVE for the HomeMatic plug.
    let sentinel = SentinelBuilder::new()
        .dataset(generate_dataset(&selected, &env, 8, 3))
        .identifier_config(fast_config())
        .training_seed(11)
        .demo_vulnerabilities()
        .vulnerability(
            "HomeMaticPlug",
            VulnerabilityRecord::new(
                "CVE-DEMO-2016-0009",
                "unauthenticated RF pairing",
                Severity::High,
            ),
        )
        .build()
        .unwrap();

    // The device joins; the gateway identifies it.
    let homematic = selected
        .iter()
        .find(|p| p.type_name == "HomeMaticPlug")
        .unwrap();
    let t0 = SimTime::from_secs(0);
    let capture = capture_setups(homematic, &env, 1, 0x77).remove(0);
    let fingerprint = FingerprintExtractor::extract_from(capture.packets());
    let response = sentinel.handle(&fingerprint);
    assert_eq!(
        sentinel.type_name(response.device_type),
        Some("HomeMaticPlug")
    );

    // Vulnerable + uncontrollable channel → isolation is insufficient,
    // escalate to a removal advisory.
    let device_type = response.device_type.unwrap();
    assert!(sentinel
        .service()
        .vulnerabilities()
        .is_vulnerable(device_type));
    assert!(homematic.connectivity.has_uncontrollable_channel());

    let mut center = NotificationCenter::new(SimDuration::from_secs(300));
    let mac = homematic.instance_mac(0);
    let id = center.advise_removal(
        mac,
        sentinel.type_name(response.device_type),
        SideChannel::ProprietaryRf,
        t0,
    );
    let advisory = center.get(id).unwrap();
    assert_eq!(advisory.state(), NotificationState::Pending);
    assert!(advisory.message().contains("HomeMaticPlug"));

    // The user acknowledges; the device keeps talking for a while.
    center.acknowledge(id).unwrap();
    center.observe_traffic(mac, t0 + SimDuration::from_secs(100));
    assert!(
        center
            .verify_removals(t0 + SimDuration::from_secs(200))
            .is_empty(),
        "device still present: removal must not verify"
    );

    // The user unplugs it; after the quiet period removal is verified.
    let verified = center.verify_removals(t0 + SimDuration::from_secs(401));
    assert_eq!(verified, vec![id]);
    assert!(center.open().is_empty());
}

#[test]
fn controllable_vulnerable_device_is_confined_not_removed() {
    // A WiFi-only vulnerable device (EdnetCam in the demo DB) is fully
    // controllable by the gateway: restricted isolation applies and no
    // advisory is needed.
    let profiles = catalog::standard_catalog();
    let cam = profiles.iter().find(|p| p.type_name == "EdnetCam").unwrap();
    assert!(!cam.connectivity.has_uncontrollable_channel());

    let mut registry = TypeRegistry::new();
    let vulnerabilities = VulnerabilityDatabase::demo(&mut registry);
    let cam_id = registry.get("EdnetCam").unwrap();
    assert!(vulnerabilities.is_vulnerable(cam_id));
    assert_eq!(
        vulnerabilities.assess(Some(cam_id)),
        IsolationClass::Restricted
    );
}
