//! Capture-plane integration: pcap round trips and monitor behaviour
//! on simulated setup traffic.

use iot_sentinel::devices::{catalog, NetworkEnvironment, SetupSimulator};
use iot_sentinel::fingerprint::FingerprintExtractor;
use iot_sentinel::net::{CaptureMonitor, SetupDetectorConfig, TraceCapture};

/// Writing a simulated setup to pcap and reading it back must preserve
/// every frame and produce the identical fingerprint.
#[test]
fn pcap_round_trip_preserves_fingerprints() {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    for profile in profiles.iter().take(8) {
        let trace = SetupSimulator::new(env.clone(), 0x1234).simulate(profile, 0);
        let mut pcap = Vec::new();
        trace.to_pcap(&mut pcap).unwrap();
        let replayed = TraceCapture::from_pcap(&pcap[..]).unwrap();
        assert_eq!(replayed.len(), trace.len(), "{}", profile.type_name);

        let fingerprint_of = |t: &TraceCapture| {
            let mut monitor = CaptureMonitor::new(SetupDetectorConfig::default());
            monitor.ignore_mac(env.gateway_mac);
            for frame in t.iter() {
                monitor.observe_frame(frame).unwrap();
            }
            let capture = monitor.finish_all().remove(0);
            FingerprintExtractor::extract_from(capture.packets())
        };
        assert_eq!(
            fingerprint_of(&trace),
            fingerprint_of(&replayed),
            "pcap round trip changed the fingerprint of {}",
            profile.type_name
        );
    }
}

/// Every catalogue profile produces a decodable trace whose device
/// packets all come from the device MAC, and whose fingerprint fills a
/// reasonable share of F′.
#[test]
fn all_catalog_profiles_produce_wellformed_traces() {
    let env = NetworkEnvironment::default();
    for profile in catalog::standard_catalog() {
        let trace = SetupSimulator::new(env.clone(), 7).simulate(&profile, 2);
        let packets = trace.decode_all().expect("frames decode");
        assert!(
            packets.len() >= 4,
            "{}: too little traffic ({})",
            profile.type_name,
            packets.len()
        );
        let mut monitor = CaptureMonitor::new(SetupDetectorConfig::default());
        monitor.ignore_mac(env.gateway_mac);
        for frame in trace.iter() {
            monitor.observe_frame(frame).unwrap();
        }
        let captures = monitor.finish_all();
        assert_eq!(captures.len(), 1, "{}", profile.type_name);
        let capture = &captures[0];
        assert_eq!(capture.mac(), profile.instance_mac(2));
        let fp = FingerprintExtractor::extract_from(capture.packets());
        assert!(
            fp.len() >= 2,
            "{}: fingerprint too short ({} columns)",
            profile.type_name,
            fp.len()
        );
        let fixed = fp.to_fixed();
        assert!(
            fixed.filled_slots() >= 2,
            "{}: F' nearly empty",
            profile.type_name
        );
    }
}

/// Two devices setting up simultaneously are separated cleanly by the
/// monitor (interleaved frames).
#[test]
fn interleaved_setups_are_separated() {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let a = &profiles[0];
    let b = &profiles[4];
    let mut sim = SetupSimulator::new(env.clone(), 0x77);
    let trace_a = sim.simulate(a, 0);
    let trace_b = sim.simulate(b, 0);
    // Interleave by timestamp.
    let mut frames: Vec<_> = trace_a.iter().chain(trace_b.iter()).cloned().collect();
    frames.sort_by_key(|f| f.time());

    let mut monitor = CaptureMonitor::new(SetupDetectorConfig::default());
    monitor.ignore_mac(env.gateway_mac);
    for frame in &frames {
        monitor.observe_frame(frame).unwrap();
    }
    let captures = monitor.finish_all();
    assert_eq!(captures.len(), 2);
    let macs: Vec<_> = captures.iter().map(|c| c.mac()).collect();
    assert!(macs.contains(&a.instance_mac(0)));
    assert!(macs.contains(&b.instance_mac(0)));
    // Per-device streams contain only that device's packets.
    for capture in &captures {
        assert!(capture
            .packets()
            .iter()
            .all(|p| p.src_mac() == capture.mac()));
    }
}
