//! Error type for dataset parsing and I/O.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors from fingerprint dataset persistence.
#[derive(Debug)]
#[non_exhaustive]
pub enum FingerprintError {
    /// A line of the text codec could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
    /// Requested a fold split that cannot be satisfied.
    BadFold {
        /// The requested number of folds.
        folds: usize,
        /// The smallest class size.
        smallest_class: usize,
    },
}

impl FingerprintError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        FingerprintError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for FingerprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FingerprintError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            FingerprintError::Io(e) => write!(f, "i/o error: {e}"),
            FingerprintError::BadFold {
                folds,
                smallest_class,
            } => write!(
                f,
                "cannot split into {folds} folds: smallest class has {smallest_class} samples"
            ),
        }
    }
}

impl Error for FingerprintError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FingerprintError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FingerprintError {
    fn from(e: io::Error) -> Self {
        FingerprintError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            FingerprintError::parse(3, "bad count").to_string(),
            "parse error at line 3: bad count"
        );
        assert!(FingerprintError::BadFold {
            folds: 10,
            smallest_class: 5
        }
        .to_string()
        .contains("10 folds"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<FingerprintError>();
    }
}
