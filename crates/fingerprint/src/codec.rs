//! Self-contained text codec for fingerprint datasets.
//!
//! The format is line-oriented so datasets remain diff-able and
//! inspectable (the paper's dataset was distributed as pcap + CSV):
//!
//! ```text
//! iot-sentinel-fingerprints v1
//! sample <label> <n-columns>
//! <23 space-separated integers>   (n-columns lines)
//! ...
//! end
//! ```
//!
//! Using a hand-rolled codec keeps the workspace inside its approved
//! dependency set (no `serde_json`); the grammar is trivial enough that
//! a parser with real error reporting fits in a page.

use std::io::{BufRead, BufReader, Read, Write};

use crate::dataset::{Dataset, LabeledFingerprint};
use crate::error::FingerprintError;
use crate::features::{PacketFeatures, FEATURE_COUNT};
use crate::fingerprint::Fingerprint;

const HEADER: &str = "iot-sentinel-fingerprints v1";
const FOOTER: &str = "end";

/// Writes `dataset` to `w` in the v1 text format.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Examples
///
/// ```
/// use sentinel_fingerprint::{codec, Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
///
/// let mut ds = Dataset::new();
/// ds.push(LabeledFingerprint::new(
///     "Aria",
///     Fingerprint::from_columns(vec![PacketFeatures::from_raw([3; 23])]),
/// ));
/// let mut buf = Vec::new();
/// codec::write(&mut buf, &ds)?;
/// let back = codec::read(&buf[..])?;
/// assert_eq!(back, ds);
/// # Ok::<(), sentinel_fingerprint::FingerprintError>(())
/// ```
pub fn write<W: Write>(mut w: W, dataset: &Dataset) -> Result<(), FingerprintError> {
    writeln!(w, "{HEADER}")?;
    for sample in dataset.iter() {
        writeln!(
            w,
            "sample {} {}",
            sample.label(),
            sample.fingerprint().len()
        )?;
        for col in sample.fingerprint().iter() {
            let rendered: Vec<String> = col.values().iter().map(u32::to_string).collect();
            writeln!(w, "{}", rendered.join(" "))?;
        }
    }
    writeln!(w, "{FOOTER}")?;
    Ok(())
}

/// Reads a dataset from `r` in the v1 text format.
///
/// # Errors
///
/// Returns [`FingerprintError::Parse`] with a line number for any
/// malformed content, or an I/O error.
pub fn read<R: Read>(r: R) -> Result<Dataset, FingerprintError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();
    let (_, first) = lines
        .next()
        .ok_or_else(|| FingerprintError::parse(1, "empty input"))?;
    let first = first?;
    if first.trim() != HEADER {
        return Err(FingerprintError::parse(1, format!("bad header {first:?}")));
    }
    let mut dataset = Dataset::new();
    let mut saw_footer = false;
    while let Some((idx, line)) = lines.next() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == FOOTER {
            saw_footer = true;
            break;
        }
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            Some("sample") => {}
            other => {
                return Err(FingerprintError::parse(
                    line_no,
                    format!("expected 'sample', got {other:?}"),
                ))
            }
        }
        let label = parts
            .next()
            .ok_or_else(|| FingerprintError::parse(line_no, "missing label"))?
            .to_string();
        let count: usize = parts
            .next()
            .ok_or_else(|| FingerprintError::parse(line_no, "missing column count"))?
            .parse()
            .map_err(|e| FingerprintError::parse(line_no, format!("bad column count: {e}")))?;
        if parts.next().is_some() {
            return Err(FingerprintError::parse(
                line_no,
                "trailing tokens on sample line",
            ));
        }
        let mut columns = Vec::with_capacity(count);
        for _ in 0..count {
            let (idx, line) = lines
                .next()
                .ok_or_else(|| FingerprintError::parse(line_no, "unexpected end of columns"))?;
            let col_line_no = idx + 1;
            let line = line?;
            let mut values = [0u32; FEATURE_COUNT];
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.len() != FEATURE_COUNT {
                return Err(FingerprintError::parse(
                    col_line_no,
                    format!("expected {FEATURE_COUNT} values, got {}", tokens.len()),
                ));
            }
            for (v, tok) in values.iter_mut().zip(tokens) {
                *v = tok.parse().map_err(|e| {
                    FingerprintError::parse(col_line_no, format!("bad value {tok:?}: {e}"))
                })?;
            }
            columns.push(PacketFeatures::from_raw(values));
        }
        dataset.push(LabeledFingerprint::new(
            label,
            Fingerprint::from_columns(columns),
        ));
    }
    if !saw_footer {
        return Err(FingerprintError::parse(0, "missing 'end' footer"));
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        for (label, tags) in [("TypeA", vec![1u32, 2, 3]), ("TypeB", vec![7, 7, 9])] {
            let cols: Vec<PacketFeatures> = tags
                .into_iter()
                .map(|t| {
                    let mut v = [0u32; FEATURE_COUNT];
                    v[18] = t;
                    v[20] = t % 3;
                    PacketFeatures::from_raw(v)
                })
                .collect();
            ds.push(LabeledFingerprint::new(
                label,
                Fingerprint::from_columns(cols),
            ));
        }
        ds
    }

    #[test]
    fn round_trip() {
        let ds = dataset();
        let mut buf = Vec::new();
        write(&mut buf, &ds).unwrap();
        let back = read(&buf[..]).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn note_dedup_interacts_with_codec() {
        // TypeB has consecutive duplicate tags (7, 7) which dedup to
        // one column; the written count reflects the deduped length.
        let ds = dataset();
        assert_eq!(ds.sample(1).fingerprint().len(), 2);
        let mut buf = Vec::new();
        write(&mut buf, &ds).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("sample TypeB 2"));
    }

    #[test]
    fn rejects_bad_header() {
        let err = read(&b"wrong header\nend\n"[..]).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn rejects_missing_footer() {
        let ds = dataset();
        let mut buf = Vec::new();
        write(&mut buf, &ds).unwrap();
        // Strip the footer line.
        let text = String::from_utf8(buf).unwrap();
        let without = text.trim_end().trim_end_matches(FOOTER);
        assert!(read(without.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_value_count() {
        let text = format!("{HEADER}\nsample X 1\n1 2 3\nend\n");
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 23 values"));
    }

    #[test]
    fn rejects_non_numeric_value() {
        let vals = vec!["1"; 22].join(" ");
        let text = format!("{HEADER}\nsample X 1\n{vals} zz\nend\n");
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad value"));
    }

    #[test]
    fn empty_dataset_round_trips() {
        let ds = Dataset::new();
        let mut buf = Vec::new();
        write(&mut buf, &ds).unwrap();
        let back = read(&buf[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn blank_lines_tolerated_between_samples() {
        let ds = dataset();
        let mut buf = Vec::new();
        write(&mut buf, &ds).unwrap();
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("sample TypeB", "\nsample TypeB");
        let back = read(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 2);
    }
}
