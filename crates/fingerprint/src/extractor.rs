//! Stateful fingerprint extraction from a packet stream.

use std::collections::HashMap;
use std::net::IpAddr;

use sentinel_net::Packet;

use crate::features::PacketFeatures;
use crate::fingerprint::Fingerprint;

/// Builds a device fingerprint from the packets the device sends, in
/// order.
///
/// The extractor owns the two pieces of state the feature set needs:
///
/// * the **destination-IP counter** (Table I, feature 21): "the
///   destination IP address, if any, is mapped to a counter starting
///   from 1 and incremented each time a new destination IP address is
///   observed", and
/// * the **consecutive-duplicate filter**: identical adjacent feature
///   vectors are discarded from F.
///
/// # Examples
///
/// ```
/// use sentinel_fingerprint::FingerprintExtractor;
/// use sentinel_net::{MacAddr, Packet, Port};
///
/// let src = MacAddr::new([2, 0, 0, 0, 0, 1]);
/// let dst = MacAddr::new([2, 0, 0, 0, 0, 2]);
/// let mut ex = FingerprintExtractor::new();
/// // Two identical DNS queries in a row collapse into one column.
/// for _ in 0..2 {
///     ex.observe(
///         &Packet::builder(src, dst)
///             .ipv4("10.0.0.5".parse()?, "10.0.0.1".parse()?)
///             .udp(Port::new(50000), Port::DNS)
///             .dns(false, 1)
///             .build(),
///     );
/// }
/// assert_eq!(ex.finish().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct FingerprintExtractor {
    dst_counters: HashMap<IpAddr, u32>,
    next_counter: u32,
    columns: Vec<PacketFeatures>,
}

impl FingerprintExtractor {
    /// Creates an extractor with an empty destination-IP table.
    pub fn new() -> Self {
        FingerprintExtractor {
            dst_counters: HashMap::new(),
            next_counter: 1,
            columns: Vec::new(),
        }
    }

    /// Observes the next packet sent by the device.
    pub fn observe(&mut self, packet: &Packet) {
        let counter = match packet.dst_ip() {
            Some(ip) => {
                let next = &mut self.next_counter;
                *self.dst_counters.entry(ip).or_insert_with(|| {
                    let c = *next;
                    *next += 1;
                    c
                })
            }
            None => 0,
        };
        let features = PacketFeatures::extract(packet, counter);
        if self.columns.last() != Some(&features) {
            self.columns.push(features);
        }
    }

    /// Number of columns collected so far.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Number of distinct destination IPs seen so far.
    pub fn distinct_destinations(&self) -> usize {
        self.dst_counters.len()
    }

    /// Finishes extraction, producing the fingerprint F.
    pub fn finish(self) -> Fingerprint {
        Fingerprint::from_deduped(self.columns)
    }

    /// Convenience: extracts a fingerprint from a complete packet
    /// sequence.
    pub fn extract_from(packets: &[Packet]) -> Fingerprint {
        let mut ex = FingerprintExtractor::new();
        for p in packets {
            ex.observe(p);
        }
        ex.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureId;
    use sentinel_net::{MacAddr, Port};
    use std::net::Ipv4Addr;

    fn macs() -> (MacAddr, MacAddr) {
        (
            MacAddr::new([2, 0, 0, 0, 0, 1]),
            MacAddr::new([2, 0, 0, 0, 0, 2]),
        )
    }

    fn dns_to(dst: Ipv4Addr, size: usize) -> Packet {
        let (s, d) = macs();
        Packet::builder(s, d)
            .ipv4(Ipv4Addr::new(10, 0, 0, 5), dst)
            .udp(Port::new(50000), Port::DNS)
            .dns(false, 1)
            .wire_len(size)
            .build()
    }

    #[test]
    fn dst_counter_increments_per_new_ip() {
        let mut ex = FingerprintExtractor::new();
        ex.observe(&dns_to(Ipv4Addr::new(1, 1, 1, 1), 80));
        ex.observe(&dns_to(Ipv4Addr::new(2, 2, 2, 2), 81));
        ex.observe(&dns_to(Ipv4Addr::new(1, 1, 1, 1), 82));
        ex.observe(&dns_to(Ipv4Addr::new(3, 3, 3, 3), 83));
        assert_eq!(ex.distinct_destinations(), 3);
        let fp = ex.finish();
        let counters: Vec<u32> = fp.iter().map(|c| c.get(FeatureId::DstIpCounter)).collect();
        assert_eq!(counters, vec![1, 2, 1, 3]);
    }

    #[test]
    fn non_ip_packets_get_counter_zero() {
        let (s, d) = macs();
        let mut ex = FingerprintExtractor::new();
        ex.observe(
            &Packet::builder(s, d)
                .arp(1, Ipv4Addr::UNSPECIFIED, Ipv4Addr::new(10, 0, 0, 1))
                .build(),
        );
        let fp = ex.finish();
        assert_eq!(fp.columns()[0].get(FeatureId::DstIpCounter), 0);
    }

    #[test]
    fn consecutive_duplicates_collapse_online() {
        let mut ex = FingerprintExtractor::new();
        for _ in 0..5 {
            ex.observe(&dns_to(Ipv4Addr::new(1, 1, 1, 1), 80));
        }
        ex.observe(&dns_to(Ipv4Addr::new(1, 1, 1, 1), 99));
        assert_eq!(ex.len(), 2);
    }

    #[test]
    fn counter_state_distinguishes_retransmissions_to_new_ips() {
        // Same packet shape to two different IPs: the counter feature
        // differs, so both columns are kept.
        let mut ex = FingerprintExtractor::new();
        ex.observe(&dns_to(Ipv4Addr::new(1, 1, 1, 1), 80));
        ex.observe(&dns_to(Ipv4Addr::new(2, 2, 2, 2), 80));
        assert_eq!(ex.len(), 2);
    }

    #[test]
    fn extract_from_matches_incremental() {
        let packets: Vec<Packet> = vec![
            dns_to(Ipv4Addr::new(1, 1, 1, 1), 80),
            dns_to(Ipv4Addr::new(1, 1, 1, 1), 80),
            dns_to(Ipv4Addr::new(2, 2, 2, 2), 90),
        ];
        let fp = FingerprintExtractor::extract_from(&packets);
        let mut ex = FingerprintExtractor::new();
        for p in &packets {
            ex.observe(p);
        }
        assert_eq!(fp, ex.finish());
        assert_eq!(fp.len(), 2);
    }
}
