//! The variable-length fingerprint F and the fixed 276-dimensional F′.

use std::fmt;

use crate::features::{PacketFeatures, FEATURE_COUNT};

/// Number of packets concatenated into F′.
pub const FIXED_PACKETS: usize = 12;

/// Dimensionality of F′ (12 packets × 23 features = 276).
pub const FIXED_DIMS: usize = FIXED_PACKETS * FEATURE_COUNT;

/// The variable-length fingerprint **F**: a 23×n matrix stored as its
/// n packet columns, in the temporal order the device sent them, with
/// consecutive duplicates already discarded (Eq. 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Fingerprint {
    columns: Vec<PacketFeatures>,
}

impl Fingerprint {
    /// Creates a fingerprint from columns, discarding consecutive
    /// duplicates (pᵢ = pᵢ₊₁ in the paper's notation).
    ///
    /// # Examples
    ///
    /// ```
    /// use sentinel_fingerprint::{Fingerprint, PacketFeatures};
    ///
    /// let a = PacketFeatures::from_raw([1; 23]);
    /// let b = PacketFeatures::from_raw([2; 23]);
    /// let fp = Fingerprint::from_columns(vec![a, a, b, b, a]);
    /// assert_eq!(fp.len(), 3); // a b a
    /// ```
    pub fn from_columns(columns: Vec<PacketFeatures>) -> Self {
        let mut deduped: Vec<PacketFeatures> = Vec::with_capacity(columns.len());
        for col in columns {
            if deduped.last() != Some(&col) {
                deduped.push(col);
            }
        }
        Fingerprint { columns: deduped }
    }

    /// Creates a fingerprint from columns already known to be free of
    /// consecutive duplicates (used by the extractor, which dedups
    /// on the fly).
    pub(crate) fn from_deduped(columns: Vec<PacketFeatures>) -> Self {
        debug_assert!(
            columns.windows(2).all(|w| w[0] != w[1]),
            "columns contain consecutive duplicates"
        );
        Fingerprint { columns }
    }

    /// The number of packet columns, n.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the fingerprint has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The packet columns in temporal order.
    pub fn columns(&self) -> &[PacketFeatures] {
        &self.columns
    }

    /// Iterates over the columns.
    pub fn iter(&self) -> std::slice::Iter<'_, PacketFeatures> {
        self.columns.iter()
    }

    /// The first `limit` **unique** columns, in order of first
    /// appearance.
    pub fn unique_prefix(&self, limit: usize) -> Vec<PacketFeatures> {
        let mut unique: Vec<PacketFeatures> = Vec::new();
        self.unique_prefix_into(limit, &mut unique);
        unique
    }

    /// Writes the first `limit` unique columns into `out` (cleared
    /// first), in order of first appearance — the reusable-buffer core
    /// shared by [`Fingerprint::unique_prefix`] and [`FixedScratch`].
    pub fn unique_prefix_into(&self, limit: usize, out: &mut Vec<PacketFeatures>) {
        out.clear();
        for col in &self.columns {
            if out.len() == limit {
                break;
            }
            if !out.contains(col) {
                out.push(*col);
            }
        }
    }

    /// Builds the fixed-size fingerprint F′ from the first
    /// [`FIXED_PACKETS`] unique columns, zero-padding if F does not
    /// contain enough unique packets (paper §IV-A).
    pub fn to_fixed(&self) -> FixedFingerprint {
        self.to_fixed_with(FIXED_PACKETS)
    }

    /// Builds a fixed fingerprint with a non-standard unique-packet
    /// prefix length (used by the prefix-length ablation). The result
    /// always has `prefix_len × 23` dimensions.
    pub fn to_fixed_with(&self, prefix_len: usize) -> FixedFingerprint {
        let mut scratch = FixedScratch::new();
        scratch.fill(self, prefix_len);
        scratch.fixed
    }
}

/// Reusable workspace for computing F′ vectors without per-call heap
/// allocation.
///
/// [`Fingerprint::to_fixed_with`] allocates two vectors per call (the
/// unique-prefix column list and the F′ value vector). On the query hot
/// path that cost is paid per fingerprint; a `FixedScratch` owns both
/// buffers so repeated conversions reuse the same capacity. After the
/// first call that established capacity, [`FixedScratch::fill`]
/// performs **zero** heap allocations.
#[derive(Debug, Clone, Default)]
pub struct FixedScratch {
    unique: Vec<PacketFeatures>,
    fixed: FixedFingerprint,
}

impl FixedScratch {
    /// An empty scratch; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        FixedScratch::default()
    }

    /// Computes F′ of `fingerprint` with `prefix_len` unique-packet
    /// slots into the scratch-owned buffer and returns a borrow of it.
    /// Equivalent to [`Fingerprint::to_fixed_with`] but allocation-free
    /// once the buffers have grown to `prefix_len` capacity.
    pub fn fill(&mut self, fingerprint: &Fingerprint, prefix_len: usize) -> &FixedFingerprint {
        fingerprint.unique_prefix_into(prefix_len, &mut self.unique);
        let values = &mut self.fixed.values;
        values.clear();
        values.resize(prefix_len * FEATURE_COUNT, 0f32);
        for (i, col) in self.unique.iter().enumerate() {
            let f = col.to_f32();
            values[i * FEATURE_COUNT..(i + 1) * FEATURE_COUNT].copy_from_slice(&f);
        }
        &self.fixed
    }

    /// The most recently filled F′ vector.
    pub fn fixed(&self) -> &FixedFingerprint {
        &self.fixed
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F[23x{}]", self.len())
    }
}

impl<'a> IntoIterator for &'a Fingerprint {
    type Item = &'a PacketFeatures;
    type IntoIter = std::slice::Iter<'a, PacketFeatures>;

    fn into_iter(self) -> Self::IntoIter {
        self.columns.iter()
    }
}

/// The fixed-size fingerprint **F′**: the first 12 unique packet
/// vectors of F concatenated into a 276-dimensional feature vector
/// (zero-padded when F has fewer than 12 unique packets).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FixedFingerprint {
    values: Vec<f32>,
}

impl FixedFingerprint {
    /// The feature values (length 276 for the standard prefix).
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Dimensionality of this vector.
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// Creates a fixed fingerprint directly from values (codec/tests).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` is not a multiple of 23.
    pub fn from_values(values: Vec<f32>) -> Self {
        assert!(
            values.len().is_multiple_of(FEATURE_COUNT),
            "fixed fingerprint length {} not a multiple of {FEATURE_COUNT}",
            values.len()
        );
        FixedFingerprint { values }
    }

    /// How many non-padding packet slots are filled (a slot is padding
    /// if all its 23 values are zero).
    pub fn filled_slots(&self) -> usize {
        self.values
            .chunks(FEATURE_COUNT)
            .filter(|chunk| chunk.iter().any(|v| *v != 0.0))
            .count()
    }
}

impl fmt::Display for FixedFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F'[{}]", self.values.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(tag: u32) -> PacketFeatures {
        let mut v = [0u32; FEATURE_COUNT];
        v[18] = tag; // size feature
        PacketFeatures::from_raw(v)
    }

    #[test]
    fn consecutive_duplicates_discarded_only() {
        let fp = Fingerprint::from_columns(vec![col(1), col(1), col(2), col(1), col(1), col(1)]);
        // Non-consecutive repeats are kept: 1 2 1.
        assert_eq!(fp.len(), 3);
        assert_eq!(fp.columns()[0], col(1));
        assert_eq!(fp.columns()[1], col(2));
        assert_eq!(fp.columns()[2], col(1));
    }

    #[test]
    fn unique_prefix_keeps_first_appearance_order() {
        let fp = Fingerprint::from_columns(vec![col(3), col(1), col(3), col(2), col(1)]);
        let unique = fp.unique_prefix(12);
        assert_eq!(unique, vec![col(3), col(1), col(2)]);
        assert_eq!(fp.unique_prefix(2), vec![col(3), col(1)]);
    }

    #[test]
    fn fixed_is_276_dims_with_padding() {
        let fp = Fingerprint::from_columns(vec![col(1), col(2)]);
        let fixed = fp.to_fixed();
        assert_eq!(fixed.dims(), FIXED_DIMS);
        assert_eq!(fixed.filled_slots(), 2);
        // First slot carries col(1)'s size at offset 18.
        assert_eq!(fixed.as_slice()[18], 1.0);
        assert_eq!(fixed.as_slice()[FEATURE_COUNT + 18], 2.0);
        // Padding slots are all zero.
        assert!(fixed.as_slice()[2 * FEATURE_COUNT..]
            .iter()
            .all(|v| *v == 0.0));
    }

    #[test]
    fn fixed_truncates_to_twelve_unique() {
        let cols: Vec<PacketFeatures> = (1..=20).map(col).collect();
        let fp = Fingerprint::from_columns(cols);
        assert_eq!(fp.len(), 20);
        let fixed = fp.to_fixed();
        assert_eq!(fixed.filled_slots(), FIXED_PACKETS);
        assert_eq!(fixed.as_slice()[11 * FEATURE_COUNT + 18], 12.0);
    }

    #[test]
    fn fixed_with_custom_prefix() {
        let cols: Vec<PacketFeatures> = (1..=20).map(col).collect();
        let fp = Fingerprint::from_columns(cols);
        let fixed = fp.to_fixed_with(4);
        assert_eq!(fixed.dims(), 4 * FEATURE_COUNT);
        assert_eq!(fixed.filled_slots(), 4);
    }

    #[test]
    fn empty_fingerprint_yields_zero_vector() {
        let fp = Fingerprint::default();
        assert!(fp.is_empty());
        let fixed = fp.to_fixed();
        assert_eq!(fixed.dims(), FIXED_DIMS);
        assert_eq!(fixed.filled_slots(), 0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_values_rejects_bad_length() {
        let _ = FixedFingerprint::from_values(vec![0.0; 10]);
    }

    #[test]
    fn scratch_fill_matches_to_fixed_with() {
        let mut scratch = FixedScratch::new();
        for n in [0usize, 1, 3, 12, 20] {
            let cols: Vec<PacketFeatures> = (1..=n as u32).map(col).collect();
            let fp = Fingerprint::from_columns(cols);
            for prefix in [4usize, 12] {
                let direct = fp.to_fixed_with(prefix);
                let via_scratch = scratch.fill(&fp, prefix).clone();
                assert_eq!(direct, via_scratch, "n={n} prefix={prefix}");
                assert_eq!(scratch.fixed(), &direct);
            }
        }
    }

    #[test]
    fn scratch_reuse_across_prefix_lengths_resets_padding() {
        // A long fill followed by a short one must not leak stale
        // values into the padding slots.
        let long = Fingerprint::from_columns((1..=12u32).map(col).collect());
        let short = Fingerprint::from_columns(vec![col(42)]);
        let mut scratch = FixedScratch::new();
        scratch.fill(&long, 12);
        let fixed = scratch.fill(&short, 12);
        assert_eq!(fixed.filled_slots(), 1);
        assert!(fixed.as_slice()[FEATURE_COUNT..].iter().all(|v| *v == 0.0));
    }

    #[test]
    fn display_formats() {
        let fp = Fingerprint::from_columns(vec![col(1)]);
        assert_eq!(fp.to_string(), "F[23x1]");
        assert_eq!(fp.to_fixed().to_string(), "F'[276]");
    }
}
