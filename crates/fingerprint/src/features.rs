//! The 23 packet features of Table I.

use std::fmt;

use sentinel_net::{Packet, PortClass};

/// Number of features per packet.
pub const FEATURE_COUNT: usize = 23;

/// Identifies one of the 23 features, in the exact order of Table I.
///
/// The `as usize` value of each variant is its row index in the
/// fingerprint matrix F.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum FeatureId {
    /// Link layer: ARP.
    Arp = 0,
    /// Link layer: LLC.
    Llc = 1,
    /// Network layer: IP (v4 or v6).
    Ip = 2,
    /// Network layer: ICMP.
    Icmp = 3,
    /// Network layer: ICMPv6.
    Icmpv6 = 4,
    /// Network layer: EAPoL.
    Eapol = 5,
    /// Transport layer: TCP.
    Tcp = 6,
    /// Transport layer: UDP.
    Udp = 7,
    /// Application layer: HTTP.
    Http = 8,
    /// Application layer: HTTPS.
    Https = 9,
    /// Application layer: DHCP.
    Dhcp = 10,
    /// Application layer: BOOTP.
    Bootp = 11,
    /// Application layer: SSDP.
    Ssdp = 12,
    /// Application layer: DNS.
    Dns = 13,
    /// Application layer: MDNS.
    Mdns = 14,
    /// Application layer: NTP.
    Ntp = 15,
    /// IP options: padding present.
    Padding = 16,
    /// IP options: router alert present.
    RouterAlert = 17,
    /// Packet content: size in bytes (integer).
    Size = 18,
    /// Packet content: raw data present.
    RawData = 19,
    /// Destination IP counter (integer).
    DstIpCounter = 20,
    /// Source port class (integer 0–3).
    SrcPortClass = 21,
    /// Destination port class (integer 0–3).
    DstPortClass = 22,
}

impl FeatureId {
    /// All features in Table I order.
    pub const ALL: [FeatureId; FEATURE_COUNT] = [
        FeatureId::Arp,
        FeatureId::Llc,
        FeatureId::Ip,
        FeatureId::Icmp,
        FeatureId::Icmpv6,
        FeatureId::Eapol,
        FeatureId::Tcp,
        FeatureId::Udp,
        FeatureId::Http,
        FeatureId::Https,
        FeatureId::Dhcp,
        FeatureId::Bootp,
        FeatureId::Ssdp,
        FeatureId::Dns,
        FeatureId::Mdns,
        FeatureId::Ntp,
        FeatureId::Padding,
        FeatureId::RouterAlert,
        FeatureId::Size,
        FeatureId::RawData,
        FeatureId::DstIpCounter,
        FeatureId::SrcPortClass,
        FeatureId::DstPortClass,
    ];

    /// Whether the feature is binary (all are, except those the paper
    /// marks "(int)": size, destination-IP counter and the two port
    /// classes).
    pub fn is_binary(self) -> bool {
        !matches!(
            self,
            FeatureId::Size
                | FeatureId::DstIpCounter
                | FeatureId::SrcPortClass
                | FeatureId::DstPortClass
        )
    }

    /// The short name used in reports and the dataset codec.
    pub fn name(self) -> &'static str {
        match self {
            FeatureId::Arp => "ARP",
            FeatureId::Llc => "LLC",
            FeatureId::Ip => "IP",
            FeatureId::Icmp => "ICMP",
            FeatureId::Icmpv6 => "ICMPv6",
            FeatureId::Eapol => "EAPoL",
            FeatureId::Tcp => "TCP",
            FeatureId::Udp => "UDP",
            FeatureId::Http => "HTTP",
            FeatureId::Https => "HTTPS",
            FeatureId::Dhcp => "DHCP",
            FeatureId::Bootp => "BOOTP",
            FeatureId::Ssdp => "SSDP",
            FeatureId::Dns => "DNS",
            FeatureId::Mdns => "MDNS",
            FeatureId::Ntp => "NTP",
            FeatureId::Padding => "Padding",
            FeatureId::RouterAlert => "RouterAlert",
            FeatureId::Size => "Size",
            FeatureId::RawData => "RawData",
            FeatureId::DstIpCounter => "DstIpCounter",
            FeatureId::SrcPortClass => "SrcPortClass",
            FeatureId::DstPortClass => "DstPortClass",
        }
    }
}

impl fmt::Display for FeatureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The 23-feature vector representation of one packet — one column of
/// the fingerprint matrix F.
///
/// Two vectors are equal iff **all 23 features** are equal; this is the
/// character-equality relation used both for consecutive-duplicate
/// discarding and for edit-distance comparison (paper §IV-B-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PacketFeatures([u32; FEATURE_COUNT]);

impl PacketFeatures {
    /// Builds the feature vector for `packet`.
    ///
    /// `dst_ip_counter` is the value of feature 21 for this packet: the
    /// stateful extractor assigns 1, 2, 3, … in order of first
    /// appearance of each distinct destination IP, and 0 for packets
    /// without one (see [`crate::FingerprintExtractor`]).
    pub fn extract(packet: &Packet, dst_ip_counter: u32) -> Self {
        use sentinel_net::AppProtocol as AP;
        let mut f = [0u32; FEATURE_COUNT];
        let b = |v: bool| u32::from(v);
        f[FeatureId::Arp as usize] = b(packet.is_arp());
        f[FeatureId::Llc as usize] = b(packet.is_llc());
        f[FeatureId::Ip as usize] = b(packet.is_ip());
        f[FeatureId::Icmp as usize] = b(packet.is_icmp());
        f[FeatureId::Icmpv6 as usize] = b(packet.is_icmpv6());
        f[FeatureId::Eapol as usize] = b(packet.is_eapol());
        f[FeatureId::Tcp as usize] = b(packet.is_tcp());
        f[FeatureId::Udp as usize] = b(packet.is_udp());
        let app = packet.app_protocol();
        f[FeatureId::Http as usize] = b(app == Some(AP::Http));
        f[FeatureId::Https as usize] = b(app == Some(AP::Https));
        // DHCP is BOOTP framing + option 53, so the BOOTP bit is set for
        // both DHCP and plain BOOTP packets.
        f[FeatureId::Dhcp as usize] = b(app == Some(AP::Dhcp));
        f[FeatureId::Bootp as usize] = b(matches!(app, Some(AP::Dhcp) | Some(AP::Bootp)));
        f[FeatureId::Ssdp as usize] = b(app == Some(AP::Ssdp));
        f[FeatureId::Dns as usize] = b(app == Some(AP::Dns));
        f[FeatureId::Mdns as usize] = b(app == Some(AP::Mdns));
        f[FeatureId::Ntp as usize] = b(app == Some(AP::Ntp));
        f[FeatureId::Padding as usize] = b(packet.has_ip_padding());
        f[FeatureId::RouterAlert as usize] = b(packet.has_router_alert());
        f[FeatureId::Size as usize] = packet.wire_len() as u32;
        f[FeatureId::RawData as usize] = b(packet.has_raw_data());
        f[FeatureId::DstIpCounter as usize] = dst_ip_counter;
        f[FeatureId::SrcPortClass as usize] = PortClass::of(packet.src_port()).feature_value();
        f[FeatureId::DstPortClass as usize] = PortClass::of(packet.dst_port()).feature_value();
        PacketFeatures(f)
    }

    /// Creates a vector directly from raw values (codec / tests).
    pub fn from_raw(values: [u32; FEATURE_COUNT]) -> Self {
        PacketFeatures(values)
    }

    /// The value of one feature.
    pub fn get(&self, id: FeatureId) -> u32 {
        self.0[id as usize]
    }

    /// The raw feature values in Table I order.
    pub fn values(&self) -> &[u32; FEATURE_COUNT] {
        &self.0
    }

    /// The features as `f32`s, for classifier input.
    pub fn to_f32(self) -> [f32; FEATURE_COUNT] {
        let mut out = [0f32; FEATURE_COUNT];
        for (o, v) in out.iter_mut().zip(self.0.iter()) {
            *o = *v as f32;
        }
        out
    }
}

impl fmt::Display for PacketFeatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_net::{MacAddr, Packet, Port};

    fn macs() -> (MacAddr, MacAddr) {
        (
            MacAddr::new([2, 0, 0, 0, 0, 1]),
            MacAddr::new([2, 0, 0, 0, 0, 2]),
        )
    }

    #[test]
    fn feature_order_matches_table_i() {
        assert_eq!(FeatureId::ALL.len(), FEATURE_COUNT);
        for (i, id) in FeatureId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i);
        }
        assert_eq!(FeatureId::Arp as usize, 0);
        assert_eq!(FeatureId::Ntp as usize, 15);
        assert_eq!(FeatureId::Size as usize, 18);
        assert_eq!(FeatureId::DstPortClass as usize, 22);
    }

    #[test]
    fn binary_flags_match_paper() {
        let ints = [
            FeatureId::Size,
            FeatureId::DstIpCounter,
            FeatureId::SrcPortClass,
            FeatureId::DstPortClass,
        ];
        for id in FeatureId::ALL {
            assert_eq!(id.is_binary(), !ints.contains(&id), "{id}");
        }
    }

    #[test]
    fn dhcp_packet_sets_dhcp_and_bootp() {
        let (s, d) = macs();
        let pkt = Packet::builder(s, d)
            .udp(Port::DHCP_CLIENT, Port::DHCP_SERVER)
            .dhcp(1)
            .wire_len(342)
            .build();
        let f = PacketFeatures::extract(&pkt, 0);
        assert_eq!(f.get(FeatureId::Dhcp), 1);
        assert_eq!(f.get(FeatureId::Bootp), 1);
        assert_eq!(f.get(FeatureId::Udp), 1);
        assert_eq!(f.get(FeatureId::Ip), 1);
        assert_eq!(f.get(FeatureId::Tcp), 0);
        assert_eq!(f.get(FeatureId::Size), 342);
        assert_eq!(f.get(FeatureId::SrcPortClass), 1);
        assert_eq!(f.get(FeatureId::DstPortClass), 1);
    }

    #[test]
    fn bootp_only_sets_bootp_not_dhcp() {
        let (s, d) = macs();
        let pkt = Packet::builder(s, d)
            .udp(Port::DHCP_CLIENT, Port::DHCP_SERVER)
            .bootp()
            .build();
        let f = PacketFeatures::extract(&pkt, 0);
        assert_eq!(f.get(FeatureId::Dhcp), 0);
        assert_eq!(f.get(FeatureId::Bootp), 1);
    }

    #[test]
    fn arp_packet_features() {
        let (s, d) = macs();
        let pkt = Packet::builder(s, d)
            .arp(1, "0.0.0.0".parse().unwrap(), "10.0.0.1".parse().unwrap())
            .wire_len(60)
            .build();
        let f = PacketFeatures::extract(&pkt, 0);
        assert_eq!(f.get(FeatureId::Arp), 1);
        assert_eq!(f.get(FeatureId::Ip), 0);
        assert_eq!(f.get(FeatureId::SrcPortClass), 0);
        assert_eq!(f.get(FeatureId::DstPortClass), 0);
        assert_eq!(f.get(FeatureId::DstIpCounter), 0);
    }

    #[test]
    fn https_sets_raw_data() {
        let (s, d) = macs();
        let pkt = Packet::builder(s, d)
            .tcp(Port::new(51000), Port::HTTPS, Default::default())
            .tls(22)
            .build();
        let f = PacketFeatures::extract(&pkt, 3);
        assert_eq!(f.get(FeatureId::Https), 1);
        assert_eq!(f.get(FeatureId::RawData), 1);
        assert_eq!(f.get(FeatureId::DstIpCounter), 3);
        assert_eq!(f.get(FeatureId::SrcPortClass), 3);
        assert_eq!(f.get(FeatureId::DstPortClass), 1);
    }

    #[test]
    fn equality_requires_all_features() {
        let (s, d) = macs();
        let a = Packet::builder(s, d)
            .udp(Port::new(50000), Port::DNS)
            .dns(false, 1)
            .wire_len(80)
            .build();
        let b = Packet::builder(s, d)
            .udp(Port::new(50000), Port::DNS)
            .dns(false, 1)
            .wire_len(81)
            .build();
        let fa = PacketFeatures::extract(&a, 1);
        let fb = PacketFeatures::extract(&b, 1);
        assert_ne!(fa, fb, "size difference must break equality");
        let fa2 = PacketFeatures::extract(&a, 1);
        assert_eq!(fa, fa2);
        let fa3 = PacketFeatures::extract(&a, 2);
        assert_ne!(fa, fa3, "dst counter difference must break equality");
    }

    #[test]
    fn to_f32_preserves_values() {
        let f = PacketFeatures::from_raw([7; FEATURE_COUNT]);
        assert!(f.to_f32().iter().all(|v| *v == 7.0));
    }

    #[test]
    fn display_shows_all_23() {
        let f = PacketFeatures::default();
        let s = f.to_string();
        assert_eq!(s.split_whitespace().count(), FEATURE_COUNT);
    }
}
