//! Stratified k-fold cross-validation splits.
//!
//! The paper evaluates identification with "a stratified 10-fold
//! cross-validation process … repeated 10 times" (§VI-B). Stratified
//! means every fold contains (approximately) the same per-class
//! proportions as the full dataset — with 20 fingerprints per type and
//! 10 folds, each test fold holds 2 fingerprints of every type.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;
use crate::error::FingerprintError;

/// One train/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices of training samples.
    pub train: Vec<usize>,
    /// Indices of test samples.
    pub test: Vec<usize>,
}

/// Stratified k-fold splitter.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sentinel_fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures, StratifiedKFold};
///
/// let mut ds = Dataset::new();
/// for i in 0..20u32 {
///     let mut v = [0u32; 23];
///     v[18] = i;
///     let label = if i % 2 == 0 { "even" } else { "odd" };
///     ds.push(LabeledFingerprint::new(
///         label,
///         Fingerprint::from_columns(vec![PacketFeatures::from_raw(v)]),
///     ));
/// }
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let folds = StratifiedKFold::new(5).split(&ds, &mut rng)?;
/// assert_eq!(folds.len(), 5);
/// // Every test fold holds 2 of each class.
/// for fold in &folds {
///     assert_eq!(fold.test.len(), 4);
/// }
/// # Ok::<(), sentinel_fingerprint::FingerprintError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratifiedKFold {
    k: usize,
}

impl StratifiedKFold {
    /// Creates a splitter with `k` folds.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "need at least 2 folds, got {k}");
        StratifiedKFold { k }
    }

    /// The number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Splits `dataset` into k stratified train/test folds, shuffling
    /// per-class sample order with `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`FingerprintError::BadFold`] if any class has fewer
    /// samples than `k`.
    pub fn split<R: Rng>(
        &self,
        dataset: &Dataset,
        rng: &mut R,
    ) -> Result<Vec<Fold>, FingerprintError> {
        let by_label = dataset.indices_by_label();
        let smallest = by_label.values().map(Vec::len).min().unwrap_or(0);
        if smallest < self.k {
            return Err(FingerprintError::BadFold {
                folds: self.k,
                smallest_class: smallest,
            });
        }
        // Deal each class's shuffled samples round-robin into the k
        // test buckets.
        let mut test_buckets: Vec<Vec<usize>> = vec![Vec::new(); self.k];
        for indices in by_label.values() {
            let mut shuffled = indices.clone();
            shuffled.shuffle(rng);
            for (i, idx) in shuffled.into_iter().enumerate() {
                test_buckets[i % self.k].push(idx);
            }
        }
        let folds = test_buckets
            .into_iter()
            .map(|mut test| {
                test.sort_unstable();
                let in_test: std::collections::HashSet<usize> = test.iter().copied().collect();
                let train: Vec<usize> = (0..dataset.len())
                    .filter(|i| !in_test.contains(i))
                    .collect();
                Fold { train, test }
            })
            .collect();
        Ok(folds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledFingerprint;
    use crate::features::PacketFeatures;
    use crate::fingerprint::Fingerprint;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn dataset(classes: &[(&str, usize)]) -> Dataset {
        let mut ds = Dataset::new();
        let mut tag = 0;
        for (label, count) in classes {
            for _ in 0..*count {
                tag += 1;
                let mut v = [0u32; 23];
                v[18] = tag;
                ds.push(LabeledFingerprint::new(
                    *label,
                    Fingerprint::from_columns(vec![PacketFeatures::from_raw(v)]),
                ));
            }
        }
        ds
    }

    #[test]
    fn folds_partition_the_dataset() {
        let ds = dataset(&[("a", 20), ("b", 20), ("c", 20)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let folds = StratifiedKFold::new(10).split(&ds, &mut rng).unwrap();
        assert_eq!(folds.len(), 10);
        let mut all_test: Vec<usize> = Vec::new();
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.test.len(), ds.len());
            let train: HashSet<_> = fold.train.iter().collect();
            assert!(fold.test.iter().all(|i| !train.contains(i)));
            all_test.extend(&fold.test);
        }
        all_test.sort_unstable();
        let expected: Vec<usize> = (0..ds.len()).collect();
        assert_eq!(
            all_test, expected,
            "test folds must cover every sample once"
        );
    }

    #[test]
    fn folds_are_stratified() {
        let ds = dataset(&[("a", 20), ("b", 20)]);
        let mut rng = SmallRng::seed_from_u64(2);
        let folds = StratifiedKFold::new(10).split(&ds, &mut rng).unwrap();
        for fold in &folds {
            let a_count = fold
                .test
                .iter()
                .filter(|i| ds.sample(**i).label() == "a")
                .count();
            assert_eq!(a_count, 2, "each fold holds 2 of each 20-sample class");
            assert_eq!(fold.test.len(), 4);
        }
    }

    #[test]
    fn uneven_classes_spread_within_one() {
        let ds = dataset(&[("a", 23), ("b", 20)]);
        let mut rng = SmallRng::seed_from_u64(3);
        let folds = StratifiedKFold::new(10).split(&ds, &mut rng).unwrap();
        for fold in &folds {
            let a_count = fold
                .test
                .iter()
                .filter(|i| ds.sample(**i).label() == "a")
                .count();
            assert!((2..=3).contains(&a_count));
        }
    }

    #[test]
    fn too_small_class_errors() {
        let ds = dataset(&[("a", 20), ("tiny", 3)]);
        let mut rng = SmallRng::seed_from_u64(4);
        let err = StratifiedKFold::new(10).split(&ds, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            FingerprintError::BadFold {
                folds: 10,
                smallest_class: 3
            }
        ));
    }

    #[test]
    fn different_seeds_differ() {
        let ds = dataset(&[("a", 20), ("b", 20)]);
        let f1 = StratifiedKFold::new(10)
            .split(&ds, &mut SmallRng::seed_from_u64(5))
            .unwrap();
        let f2 = StratifiedKFold::new(10)
            .split(&ds, &mut SmallRng::seed_from_u64(6))
            .unwrap();
        assert_ne!(f1, f2);
        // Same seed reproduces.
        let f1b = StratifiedKFold::new(10)
            .split(&ds, &mut SmallRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(f1, f1b);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn k_below_two_panics() {
        let _ = StratifiedKFold::new(1);
    }
}
