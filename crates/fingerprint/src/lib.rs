//! IoT Sentinel device fingerprints (paper §IV-A).
//!
//! A device's fingerprint is built from the packets it sends during its
//! setup phase:
//!
//! 1. Every packet is reduced to the **23 features of Table I**
//!    ([`PacketFeatures`], [`FeatureId`]): 16 protocol indicator bits
//!    (ARP, LLC | IP, ICMP, ICMPv6, EAPoL | TCP, UDP | HTTP, HTTPS,
//!    DHCP, BOOTP, SSDP, DNS, MDNS, NTP), the two IP-option bits
//!    (padding, router alert), the packet size, a raw-data bit, the
//!    destination-IP counter and the source/destination port classes.
//! 2. Consecutive identical feature vectors are discarded, giving the
//!    variable-length matrix **F** ([`Fingerprint`]) whose columns keep
//!    the temporal order of the setup conversation.
//! 3. The first **12 unique** columns are concatenated (zero-padded)
//!    into the fixed **276-dimensional vector F′**
//!    ([`FixedFingerprint`]) consumed by the per-type classifiers.
//!
//! The crate also provides labelled datasets with stratified k-fold
//! splitting ([`dataset`], [`folds`]) and a self-contained text codec
//! ([`codec`]) for persisting them.
//!
//! # Example
//!
//! ```
//! use sentinel_fingerprint::FingerprintExtractor;
//! use sentinel_net::wire::compose;
//! use sentinel_net::{MacAddr, SimTime};
//! use sentinel_net::wire::decode_frame;
//!
//! let mac = MacAddr::new([2, 0, 0, 0, 0, 1]);
//! let mut extractor = FingerprintExtractor::new();
//! for (i, frame) in [
//!     compose::dhcp_discover(mac, 1, "plug"),
//!     compose::arp_probe(mac, "192.168.1.50".parse()?),
//! ]
//! .iter()
//! .enumerate()
//! {
//!     extractor.observe(&decode_frame(frame, SimTime::from_millis(i as u64 * 100))?);
//! }
//! let fp = extractor.finish();
//! assert_eq!(fp.len(), 2);
//! let fixed = fp.to_fixed();
//! assert_eq!(fixed.as_slice().len(), 276);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod dataset;
pub mod error;
pub mod extractor;
pub mod features;
pub mod fingerprint;
pub mod folds;

pub use dataset::{Dataset, LabeledFingerprint};
pub use error::FingerprintError;
pub use extractor::FingerprintExtractor;
pub use features::{FeatureId, PacketFeatures, FEATURE_COUNT};
pub use fingerprint::{Fingerprint, FixedFingerprint, FixedScratch, FIXED_DIMS, FIXED_PACKETS};
pub use folds::StratifiedKFold;
