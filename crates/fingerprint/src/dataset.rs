//! Labelled fingerprint datasets.

use std::collections::BTreeMap;

use crate::fingerprint::{Fingerprint, FixedFingerprint};

/// One fingerprint labelled with its ground-truth device type.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledFingerprint {
    label: String,
    fingerprint: Fingerprint,
    fixed: FixedFingerprint,
}

impl LabeledFingerprint {
    /// Labels a fingerprint. The fixed-size F′ is computed eagerly so
    /// repeated classifier training does not recompute it.
    ///
    /// # Panics
    ///
    /// Panics if `label` is empty or contains whitespace (labels are
    /// single tokens in reports and the text codec).
    pub fn new(label: impl Into<String>, fingerprint: Fingerprint) -> Self {
        let label = label.into();
        assert!(
            !label.is_empty() && !label.chars().any(char::is_whitespace),
            "label must be a non-empty single token, got {label:?}"
        );
        let fixed = fingerprint.to_fixed();
        LabeledFingerprint {
            label,
            fingerprint,
            fixed,
        }
    }

    /// The ground-truth device-type label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The full variable-length fingerprint F.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// The fixed 276-dimensional fingerprint F′.
    pub fn fixed(&self) -> &FixedFingerprint {
        &self.fixed
    }
}

/// An ordered collection of labelled fingerprints.
///
/// # Examples
///
/// ```
/// use sentinel_fingerprint::{Dataset, Fingerprint, LabeledFingerprint, PacketFeatures};
///
/// let mut ds = Dataset::new();
/// let fp = Fingerprint::from_columns(vec![PacketFeatures::from_raw([1; 23])]);
/// ds.push(LabeledFingerprint::new("D-LinkCam", fp));
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds.labels(), vec!["D-LinkCam"]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    samples: Vec<LabeledFingerprint>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: LabeledFingerprint) {
        self.samples.push(sample);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples in insertion order.
    pub fn samples(&self) -> &[LabeledFingerprint] {
        &self.samples
    }

    /// The sample at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn sample(&self, index: usize) -> &LabeledFingerprint {
        &self.samples[index]
    }

    /// The distinct labels, sorted.
    pub fn labels(&self) -> Vec<&str> {
        let mut set: Vec<&str> = self.samples.iter().map(LabeledFingerprint::label).collect();
        set.sort_unstable();
        set.dedup();
        set
    }

    /// Sample indices per label, sorted by label.
    pub fn indices_by_label(&self) -> BTreeMap<&str, Vec<usize>> {
        let mut map: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, s) in self.samples.iter().enumerate() {
            map.entry(s.label()).or_default().push(i);
        }
        map
    }

    /// Indices of samples with the given label.
    pub fn indices_for(&self, label: &str) -> Vec<usize> {
        self.samples
            .iter()
            .enumerate()
            .filter(|(_, s)| s.label() == label)
            .map(|(i, _)| i)
            .collect()
    }

    /// Iterates over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, LabeledFingerprint> {
        self.samples.iter()
    }
}

impl FromIterator<LabeledFingerprint> for Dataset {
    fn from_iter<I: IntoIterator<Item = LabeledFingerprint>>(iter: I) -> Self {
        Dataset {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<LabeledFingerprint> for Dataset {
    fn extend<I: IntoIterator<Item = LabeledFingerprint>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a LabeledFingerprint;
    type IntoIter = std::slice::Iter<'a, LabeledFingerprint>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::PacketFeatures;

    fn sample(label: &str, tag: u32) -> LabeledFingerprint {
        let mut v = [0u32; 23];
        v[18] = tag;
        LabeledFingerprint::new(
            label,
            Fingerprint::from_columns(vec![PacketFeatures::from_raw(v)]),
        )
    }

    #[test]
    fn labels_sorted_and_deduped() {
        let ds: Dataset = vec![sample("b", 1), sample("a", 2), sample("b", 3)]
            .into_iter()
            .collect();
        assert_eq!(ds.labels(), vec!["a", "b"]);
        assert_eq!(ds.indices_for("b"), vec![0, 2]);
        assert_eq!(ds.indices_by_label()["a"], vec![1]);
    }

    #[test]
    fn fixed_computed_eagerly() {
        let s = sample("x", 9);
        assert_eq!(s.fixed().dims(), 276);
        assert_eq!(s.fixed().as_slice()[18], 9.0);
    }

    #[test]
    #[should_panic(expected = "single token")]
    fn rejects_whitespace_label() {
        let _ = sample("two words", 1);
    }

    #[test]
    #[should_panic(expected = "single token")]
    fn rejects_empty_label() {
        let _ = sample("", 1);
    }

    #[test]
    fn extend_and_iterate() {
        let mut ds = Dataset::new();
        ds.extend(vec![sample("a", 1), sample("a", 2)]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.iter().count(), 2);
        assert_eq!((&ds).into_iter().count(), 2);
    }
}
