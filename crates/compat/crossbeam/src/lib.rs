//! Minimal, self-contained stand-in for `crossbeam`'s scoped threads.
//!
//! The build environment has no network access to crates.io; since
//! Rust 1.63 the standard library provides scoped threads natively, so
//! this shim forwards `crossbeam::thread::scope` to
//! [`std::thread::scope`] while keeping crossbeam's call shape
//! (`scope(|s| { s.spawn(|_| …); })` returning a `Result`).

#![forbid(unsafe_code)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope handle passed to [`scope`] closures and spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it
        /// can spawn further threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            // Every scoped spawn is visible to the workspace-wide
            // spawn ledger so allocation/spawn-pinning tests can
            // assert that warm query paths never reach this shim.
            sentinel_pool::note_thread_spawn();
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns.
    ///
    /// Unlike crossbeam — which catches child panics and returns them
    /// in the `Err` variant — `std::thread::scope` resumes the panic on
    /// the parent thread, so this always returns `Ok` and callers'
    /// `.expect(…)` on the result is a no-op. Panic propagation still
    /// happens; it just takes the unwinding path.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_before_return() {
        let counter = AtomicUsize::new(0);
        let values: Vec<usize> = (0..8).collect();
        super::thread::scope(|s| {
            for v in &values {
                s.spawn(|_| {
                    counter.fetch_add(*v, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), values.iter().sum());
    }

    #[test]
    fn results_flow_back_through_join() {
        let doubled = super::thread::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(doubled, 42);
    }
}
