//! Minimal, self-contained stand-in for the `criterion` bench harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of criterion's API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a short warm-up sizes the batch,
//! then the batch is timed a handful of times and the best (lowest
//! per-iteration) run is reported — the classic noise-resistant
//! estimator. Set `SENTINEL_BENCH_FAST=1` to shrink the measurement
//! budget (useful in CI, where only "does it run" matters).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn budget() -> (Duration, Duration, usize) {
    if std::env::var_os("SENTINEL_BENCH_FAST").is_some() {
        (Duration::from_millis(5), Duration::from_millis(20), 3)
    } else {
        (Duration::from_millis(50), Duration::from_millis(200), 5)
    }
}

/// Times one closure invocation batch and reports the best run.
pub struct Bencher {
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Benchmarks `f`, calling it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let (warmup, measure, runs) = budget();
        // Warm-up: find how many iterations fit the warm-up budget.
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(f());
            iters += 1;
        }
        let batch = iters.max(1);
        let per_run = (measure.as_nanos() as u64 / runs as u64).max(1);
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let mut done: u64 = 0;
            let t0 = Instant::now();
            while done < batch || t0.elapsed().as_nanos() < per_run as u128 {
                black_box(f());
                done += 1;
            }
            let ns = t0.elapsed().as_nanos() as f64 / done as f64;
            if ns < best {
                best = ns;
            }
        }
        self.best_ns_per_iter = best;
    }
}

fn report(name: &str, bencher: &Bencher) {
    let ns = bencher.best_ns_per_iter;
    let (value, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else if ns < 1_000_000_000.0 {
        (ns / 1_000_000.0, "ms")
    } else {
        (ns / 1_000_000_000.0, "s")
    };
    println!("{name:<48} time: [{value:.3} {unit}/iter]");
}

/// The top-level bench registry, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            best_ns_per_iter: f64::NAN,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A parameterised benchmark name (`group/function/parameter`).
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<S: Display, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            rendered: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            best_ns_per_iter: f64::NAN,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            best_ns_per_iter: f64::NAN,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.rendered), &b);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Declares a bench entry point running the listed functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        std::env::set_var("SENTINEL_BENCH_FAST", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }
}
