//! Minimal, self-contained stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the one trait the wire codec uses: [`BufMut`]
//! implemented for `Vec<u8>`. All multi-byte writes are big-endian,
//! matching the network-byte-order semantics of `bytes::BufMut`'s
//! `put_u16`/`put_u32`/`put_u64`.

#![forbid(unsafe_code)]

/// A growable buffer accepting network-byte-order writes.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_i8(&mut self, v: i8) {
        self.push(v as u8);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::BufMut;

    #[test]
    fn writes_are_big_endian() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(0xAB);
        buf.put_i8(-1);
        buf.put_u16(0x0102);
        buf.put_u32(0x0304_0506);
        buf.put_u64(0x0708_090A_0B0C_0D0E);
        buf.put_slice(&[0xFF, 0xEE]);
        assert_eq!(
            buf,
            [
                0xAB, 0xFF, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C,
                0x0D, 0x0E, 0xFF, 0xEE
            ]
        );
    }
}
