//! Minimal, self-contained stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`SeedableRng::seed_from_u64`], [`Rng::gen`] /
//! [`Rng::gen_range`], [`rngs::SmallRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — the same construction `rand`'s `SmallRng` used
//! on 64-bit targets — so statistical quality is comparable; streams
//! are *not* bit-compatible with upstream `rand`, which no test relies
//! on (all determinism assertions compare runs of this generator with
//! itself).

#![forbid(unsafe_code)]

/// Seedable random number generator sources.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)`. `high` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`. `high` is inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                let draw = sample_u128_below(rng, span);
                ((low as i128).wrapping_add(draw as i128)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = ((high as i128).wrapping_sub(low as i128) as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type cannot
                    // occur for the implemented widths (all are <= 64 bits).
                    return (rng.next_u64() as i128) as $t;
                }
                let draw = sample_u128_below(rng, span);
                ((low as i128).wrapping_add(draw as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * unit_f64(rng) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Uniform draw from `[0, bound)` by rejection sampling (debiased).
fn sample_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let bound = bound as u64;
        // Lemire-style rejection over 64-bit draws.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let draw = rng.next_u64();
            if draw <= zone {
                return (draw % bound) as u128;
            }
        }
    } else {
        loop {
            let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if draw < bound {
                return draw;
            }
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value from the standard distribution (`[0, 1)` for floats,
    /// uniform over the whole domain for integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled small generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded through SplitMix64: small, fast, decent
    /// statistical quality — the role `rand::rngs::SmallRng` plays.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn range_coverage_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
