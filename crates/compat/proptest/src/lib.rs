//! Minimal, self-contained stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest used by its property
//! tests:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(…)]`),
//! * [`Strategy`] with `prop_map`, integer/float range strategies,
//!   tuple strategies, [`collection::vec`], [`any`], and string
//!   strategies from simple character-class patterns like
//!   `"[a-z0-9-]{1,20}"`,
//! * the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//!   macros.
//!
//! There is **no shrinking**: a failing case panics with the values it
//! drew, and cases are fully deterministic per test name, so failures
//! reproduce exactly on re-run.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic test RNG (xoshiro256++ seeded through SplitMix64).
pub mod test_runner {
    /// Per-case random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// A generator seeded from a test name and case number, so each
        /// case of each property is an independent deterministic stream.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.as_bytes() {
                seed ^= u64::from(*b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut state = seed ^ (u64::from(case) << 32) ^ u64::from(case);
            let s = [
                splitmix(&mut state),
                splitmix(&mut state),
                splitmix(&mut state),
                splitmix(&mut state),
            ];
            TestRng { s }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform draw below `bound` (> 0), debiased.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let draw = self.next_u64();
                if draw <= zone {
                    return draw % bound;
                }
            }
        }
    }
}

use test_runner::TestRng;

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty strategy range");
                let span = (high as u64) - (low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty strategy range");
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types generatable by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// String strategies from `[class]{m,n}`-style patterns.
///
/// Supports the pattern subset the workspace's tests use: a sequence of
/// atoms, each a literal character or a character class `[a-z0-9-]`
/// (ranges, literal characters, trailing `-`), optionally repeated with
/// `{m}`, `{m,n}`, `+` (1..=8) or `*` (0..=8).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
            let class = &chars[i + 1..close];
            i = close + 1;
            expand_class(class, pattern)
        } else {
            let c = chars[i];
            i += 1;
            if c == '\\' && i < chars.len() {
                let escaped = chars[i];
                i += 1;
                vec![escaped]
            } else {
                vec![c]
            }
        };
        // Parse an optional repetition suffix.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim()
                        .parse::<usize>()
                        .expect("bad repetition lower bound"),
                    n.trim()
                        .parse::<usize>()
                        .expect("bad repetition upper bound"),
                ),
                None => {
                    let m = body.trim().parse::<usize>().expect("bad repetition count");
                    (m, m)
                }
            }
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else {
            (1, 1)
        };
        assert!(
            min <= max,
            "inverted repetition bounds in pattern {pattern:?}"
        );
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            let pick = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[pick]);
        }
    }
    out
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(
        !class.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    let mut alphabet = Vec::new();
    let mut j = 0;
    while j < class.len() {
        if j + 2 < class.len() && class[j + 1] == '-' {
            let (lo, hi) = (class[j], class[j + 2]);
            assert!(lo <= hi, "inverted range in character class of {pattern:?}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            j += 3;
        } else {
            alphabet.push(class[j]);
            j += 1;
        }
    }
    alphabet
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` values with length in
    /// `size` (half-open, as in `proptest::collection::vec(s, 0..60)`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The usual `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, with optional message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property, with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { … }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case("shim::ranges", 0);
        for _ in 0..1_000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let (a, b) = Strategy::generate(&(0u8..4, 10usize..12), &mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case("shim::vec", 0);
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn pattern_strategy_matches_class() {
        let mut rng = TestRng::for_case("shim::pattern", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z0-9-]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let a: Vec<u64> = (0..5)
            .map(|case| TestRng::for_case("shim::det", case).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|case| TestRng::for_case("shim::det", case).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], TestRng::for_case("shim::other", 0).next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 0u32..10, ys in collection::vec(0u8..3, 1..4)) {
            prop_assert!(x < 10);
            prop_assert_ne!(ys.len(), 0, "vec strategy lower bound");
            prop_assert_eq!(ys.iter().filter(|y| **y > 2).count(), 0);
        }
    }
}
