//! Index sampling utilities: bootstrap resampling for bagging and
//! without-replacement subsampling (used by `sentinel-core` to pick the
//! 10×n negative training fingerprints, §IV-B-1).

use rand::seq::SliceRandom;
use rand::Rng;

/// Draws `n` indices uniformly from `0..n` **with** replacement — one
/// bootstrap resample, as used for each tree in a Random Forest.
///
/// Returns an empty vector when `n` is zero.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sentinel_ml::sampler::bootstrap_indices;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let idx = bootstrap_indices(100, &mut rng);
/// assert_eq!(idx.len(), 100);
/// assert!(idx.iter().all(|i| *i < 100));
/// ```
pub fn bootstrap_indices<R: Rng>(n: usize, rng: &mut R) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

/// Draws `k` distinct indices from `0..n` **without** replacement, in
/// random order. If `k >= n`, returns all `n` indices shuffled.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sentinel_ml::sampler::sample_without_replacement;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
/// let idx = sample_without_replacement(10, 4, &mut rng);
/// assert_eq!(idx.len(), 4);
/// let mut sorted = idx.clone();
/// sorted.sort_unstable();
/// sorted.dedup();
/// assert_eq!(sorted.len(), 4, "indices are distinct");
/// ```
pub fn sample_without_replacement<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(rng);
    all.truncate(k.min(n));
    all
}

/// Picks `k` distinct elements from `items` without replacement,
/// cloning them. If `k >= items.len()`, returns all items shuffled.
pub fn choose_without_replacement<T: Clone, R: Rng>(items: &[T], k: usize, rng: &mut R) -> Vec<T> {
    sample_without_replacement(items.len(), k, rng)
        .into_iter()
        .map(|i| items[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bootstrap_has_repeats_with_high_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let idx = bootstrap_indices(200, &mut rng);
        let mut unique = idx.clone();
        unique.sort_unstable();
        unique.dedup();
        // Expected unique fraction ≈ 1 - 1/e ≈ 0.632.
        assert!(unique.len() < 170, "bootstrap should repeat indices");
        assert!(unique.len() > 90);
    }

    #[test]
    fn bootstrap_of_zero_is_empty() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(bootstrap_indices(0, &mut rng).is_empty());
    }

    #[test]
    fn without_replacement_caps_at_n() {
        let mut rng = SmallRng::seed_from_u64(5);
        let idx = sample_without_replacement(5, 50, &mut rng);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn without_replacement_distinct() {
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..20 {
            let idx = sample_without_replacement(50, 20, &mut rng);
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 20);
        }
    }

    #[test]
    fn choose_clones_items() {
        let items = vec!["a", "b", "c", "d"];
        let mut rng = SmallRng::seed_from_u64(7);
        let chosen = choose_without_replacement(&items, 2, &mut rng);
        assert_eq!(chosen.len(), 2);
        assert!(chosen.iter().all(|c| items.contains(c)));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = bootstrap_indices(30, &mut SmallRng::seed_from_u64(8));
        let b = bootstrap_indices(30, &mut SmallRng::seed_from_u64(8));
        assert_eq!(a, b);
    }
}
