//! Quantized arena nodes: the ≤8-byte branch representation behind the
//! dense-probe memory wall fix.
//!
//! `BENCH_scaling.json` showed the 16-byte [`crate::PackedNode`] arena
//! is memory-bandwidth-bound at 10⁵ types: a dense probe streams the
//! whole arena and the prefilter/sharding buy ~1×. The f32 threshold
//! and the 32-bit left child are most of that traffic, and both are
//! compressible without changing a single decision:
//!
//! * **Thresholds** are per-feature-column codebook codes. IoT
//!   Sentinel's F′ columns are mostly 0/1 protocol flags, so the set
//!   of *distinct* thresholds per column across an entire bank is tiny
//!   (a handful of midpoints). A [`ThresholdCodebook`] stores each
//!   column's distinct threshold values once; nodes carry a `u16`
//!   code. Dequantization is exact — the codebook returns the original
//!   f32 **bit pattern**, so `value <= dequant(code)` is
//!   decision-identical to the unquantized comparison for every input,
//!   including NaN, ±0.0 and denormals. That bit-equality is checked
//!   node by node at build time (the quantization *proof*); a forest
//!   containing any unprovable node is conservatively escalated to the
//!   retained f32 arena.
//! * **Left children** are implicit: quantized trees are emitted in
//!   preorder, so a non-leaf left child always sits at `self + 1` and
//!   needs no stored reference. Leaf left children fold into two flag
//!   bits next to the feature index.
//!
//! The result is [`QuantNode`]: `fl: u16` (14-bit feature + left-leaf
//! flags), `qcode: u16`, `right: u32` — exactly 8 bytes, halving the
//! bytes a dense scan must stream per node.

use crate::compiled::LEAF_BIT;

/// Bits of [`QuantNode::fl`] carrying the feature index. 14 bits cover
/// 16384 dimensions — far past Sentinel's 276-dim F′ vectors; forests
/// testing higher dimensions escalate to the f32 arena.
pub const QUANT_FEATURE_MASK: u16 = (1 << 14) - 1;

/// [`QuantNode::fl`] flag: the left child is a leaf (otherwise it is
/// the node at `self + 1` in preorder).
pub const QUANT_LEFT_LEAF: u16 = 1 << 14;

/// [`QuantNode::fl`] flag: the left leaf's positive-class vote (only
/// meaningful when [`QUANT_LEFT_LEAF`] is set).
pub const QUANT_LEFT_VOTE: u16 = 1 << 15;

/// One quantized branch node: 8 bytes.
///
/// The feature index lives in the low 14 bits of `fl`; bits 14/15 are
/// [`QUANT_LEFT_LEAF`] / [`QUANT_LEFT_VOTE`]. A non-leaf left child is
/// implicit at `self + 1` (preorder emission). `right` keeps the
/// f32 arena's tagged-reference scheme ([`LEAF_BIT`] plus the vote in
/// bit 0), indexing the bank's *quantized* node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantNode {
    /// Feature index (low 14 bits) plus left-child leaf flags.
    pub fl: u16,
    /// Threshold code into the feature column's codebook.
    pub qcode: u16,
    /// Tagged reference to the right child (quantized arena).
    pub right: u32,
}

const _: () = assert!(std::mem::size_of::<QuantNode>() == 8);

impl QuantNode {
    /// The feature dimension this node tests.
    #[inline]
    pub fn feature(&self) -> usize {
        usize::from(self.fl & QUANT_FEATURE_MASK)
    }

    /// The tagged reference of the left child, given this node's own
    /// untagged reference.
    #[inline]
    pub fn left(&self, own: u32) -> u32 {
        if self.fl & QUANT_LEFT_LEAF != 0 {
            LEAF_BIT | u32::from(self.fl & QUANT_LEFT_VOTE != 0)
        } else {
            own.wrapping_add(1)
        }
    }
}

/// Per-feature-column threshold tables: `columns[d % period]` holds
/// the distinct threshold values of every node testing a dimension of
/// column `d % period`, in first-seen order; a node's `qcode` indexes
/// into its column's table.
///
/// Values are stored verbatim (no rounding, no arithmetic), so
/// `value(d, code)` returns the original threshold **bit pattern** —
/// that exactness is what makes quantized comparisons provably
/// decision-identical. The column period matches the bank index's
/// stripe period (23 for Sentinel's per-packet F′ columns), keeping
/// each table small and cache-resident.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThresholdCodebook {
    columns: Vec<Vec<f32>>,
}

impl ThresholdCodebook {
    /// An empty codebook folding dimensions into `period` columns
    /// (clamped to at least 1).
    pub fn new(period: u32) -> Self {
        ThresholdCodebook {
            columns: vec![Vec::new(); period.max(1) as usize],
        }
    }

    /// The column period (number of per-column tables).
    pub fn period(&self) -> usize {
        self.columns.len()
    }

    /// Total stored threshold values across all columns.
    pub fn code_count(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    /// The threshold value behind `code` for dimension `feature`, or
    /// `None` when the code is out of range (corrupt or foreign
    /// arenas; evaluation votes negative on `None`).
    #[inline]
    pub fn value(&self, feature: usize, code: u16) -> Option<f32> {
        let period = self.columns.len();
        if period == 0 {
            return None;
        }
        self.columns[feature % period]
            .get(usize::from(code))
            .copied()
    }

    /// Appends `threshold` to dimension `feature`'s column, returning
    /// its new code, or `None` when the column already holds 2¹⁶
    /// values (the forest escalates to f32). Deduplication is the
    /// builder's job (it keeps bit-pattern lookup maps); this only
    /// appends.
    pub(crate) fn intern(&mut self, feature: usize, threshold: f32) -> Option<u16> {
        let period = self.columns.len();
        if period == 0 {
            return None;
        }
        let table = &mut self.columns[feature % period];
        let code = u16::try_from(table.len()).ok()?;
        table.push(threshold);
        Some(code)
    }

    /// The per-column tables (read-only; builder-map reconstruction).
    pub(crate) fn columns(&self) -> &[Vec<f32>] {
        &self.columns
    }

    /// Approximate heap footprint in bytes.
    pub fn table_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.len() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// The quantized side of a compiled bank: an 8-byte node arena
/// parallel to the f32 arena, a root table parallel to the bank's
/// root table, a per-forest "proven identical" flag, and the shared
/// threshold codebook.
///
/// Forests whose quantization could not be *proven* decision-identical
/// at build time (feature past 14 bits, codebook column full, or a
/// verification mismatch) keep `ok[forest] == false` and are always
/// evaluated through the retained f32 arena. Raw-parts banks carry an
/// empty `QuantBank` — everything escalates.
#[derive(Debug, Clone, Default)]
pub struct QuantBank {
    /// Quantized branch nodes, preorder per tree.
    pub(crate) nodes: Vec<QuantNode>,
    /// Tagged quantized root per tree, parallel to the bank's root
    /// table (escalated forests hold harmless negative-leaf entries).
    pub(crate) roots: Vec<u32>,
    /// Per-forest: was quantization proven decision-identical?
    pub(crate) ok: Vec<bool>,
    /// Per-forest `(start, end)` bounds of the forest's region in
    /// `nodes` (escalated forests own an empty region).
    pub(crate) regions: Vec<(u32, u32)>,
    /// Shared per-column threshold tables.
    pub(crate) codebook: ThresholdCodebook,
}

impl QuantBank {
    /// Quantized branch nodes across all quantized forests.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of forests proven decision-identical under quantization.
    pub fn quantized_forests(&self) -> usize {
        self.ok.iter().filter(|ok| **ok).count()
    }

    /// The shared threshold codebook.
    pub fn codebook(&self) -> &ThresholdCodebook {
        &self.codebook
    }

    /// Approximate heap footprint in bytes (nodes + roots + regions +
    /// codebook tables).
    pub fn arena_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<QuantNode>()
            + self.roots.len() * std::mem::size_of::<u32>()
            + self.ok.len()
            + self.regions.len() * std::mem::size_of::<(u32, u32)>()
            + self.codebook.table_bytes()
    }

    /// Whether the quantized tables are parallel to a bank with
    /// `forest_count` forests and `root_count` roots — the invariant
    /// the routed evaluator relies on before consulting `ok`.
    pub(crate) fn is_parallel(&self, forest_count: usize, root_count: usize) -> bool {
        self.ok.len() == forest_count
            && self.regions.len() == forest_count
            && self.roots.len() == root_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quant_node_is_eight_bytes() {
        assert_eq!(std::mem::size_of::<QuantNode>(), 8);
    }

    #[test]
    fn codebook_interns_and_returns_exact_bits() {
        let mut cb = ThresholdCodebook::new(4);
        let values = [0.5f32, -0.0, f32::NAN, f32::MIN_POSITIVE / 2.0, 1e30];
        let codes: Vec<u16> = values
            .iter()
            .map(|v| cb.intern(6, *v).expect("room in the column"))
            .collect();
        for (v, code) in values.iter().zip(&codes) {
            let got = cb.value(6, *code).expect("interned code resolves");
            assert_eq!(got.to_bits(), v.to_bits(), "bit-exact round trip");
        }
        // Same column via period folding: dimension 2 shares column 2,
        // dimension 6 % 4 == 2.
        assert_eq!(cb.value(2, codes[0]).unwrap().to_bits(), 0.5f32.to_bits());
        // Out-of-range codes resolve to None, never panic.
        assert_eq!(cb.value(6, 999), None);
    }

    #[test]
    fn left_child_resolution() {
        let split = QuantNode {
            fl: 7,
            qcode: 0,
            right: LEAF_BIT,
        };
        assert_eq!(split.left(41), 42);
        assert_eq!(split.feature(), 7);
        let leaf_left = QuantNode {
            fl: 7 | QUANT_LEFT_LEAF | QUANT_LEFT_VOTE,
            qcode: 0,
            right: LEAF_BIT,
        };
        assert_eq!(leaf_left.left(41), LEAF_BIT | 1);
        assert_eq!(leaf_left.feature(), 7);
        let leaf_left_neg = QuantNode {
            fl: 7 | QUANT_LEFT_LEAF,
            qcode: 0,
            right: LEAF_BIT,
        };
        assert_eq!(leaf_left_neg.left(41), LEAF_BIT);
    }

    #[test]
    fn zero_period_codebook_is_inert() {
        let cb = ThresholdCodebook::default();
        assert_eq!(cb.value(3, 0), None);
        assert_eq!(cb.period(), 0);
        let mut cb = ThresholdCodebook::default();
        assert_eq!(cb.intern(3, 1.0), None);
    }

    #[test]
    fn column_overflow_reports_none() {
        let mut cb = ThresholdCodebook::new(1);
        for i in 0..=u16::MAX {
            assert!(cb.intern(0, f32::from_bits(u32::from(i))).is_some());
        }
        assert_eq!(
            cb.intern(0, 123.0),
            None,
            "65537th distinct value overflows"
        );
        assert_eq!(cb.code_count(), 65536);
    }
}
