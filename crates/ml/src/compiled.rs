//! Compiled classifier banks: flat-arena forest evaluation with
//! early-exit voting.
//!
//! The interpreter in [`crate::forest`] walks one [`RandomForest`] at a
//! time through enum nodes whose leaves own `Vec<u32>` histograms —
//! flexible for training and inspection, but the identification hot
//! path evaluates *dozens to thousands* of binary forests per query,
//! and pays enum dispatch, pointer chasing and a per-forest vote `Vec`
//! for it. This module compiles an entire bank of binary forests into
//! one contiguous arena:
//!
//! * **Packed branch nodes** ([`PackedNode`]): `feature: u16`,
//!   `threshold: f32`, child references `u32` — 16 bytes, cache-dense,
//!   no discriminant to match on.
//! * **Implicit leaves**: every classifier in the bank is binary, so a
//!   leaf carries exactly one bit of information (does this tree vote
//!   for the positive class?). Leaves are folded into tagged child
//!   references ([`LEAF_BIT`] plus the vote in bit 0) and vanish from
//!   the arena entirely — no `Vec<u32>` histograms, no leaf nodes.
//! * **Early-exit voting**: a forest accepts once `accept_votes` trees
//!   voted positive and rejects as soon as the remaining trees cannot
//!   reach that count; either way the remaining trees are never
//!   walked. `accept_votes` is derived from the caller's fractional
//!   threshold by scanning the (tiny) vote domain, so the decision is
//!   **bit-identical** to comparing the interpreter's
//!   `positive_vote_fraction` against the same threshold.
//! * **Allocation-free, panic-free evaluation**: [`CompiledBank::accepts`]
//!   and [`CompiledBank::for_each_accepting`] touch no heap and use
//!   checked arena accesses with a step budget, so even a corrupt
//!   arena (out-of-range references, reference cycles) degrades to a
//!   negative vote instead of a panic or an endless loop.
//!
//! Banks are built through [`CompiledBankBuilder`], which validates
//! every forest (binary, features within `u16`, arena small enough for
//! tagged references) — arenas produced by the builder are structurally
//! sound by construction. [`CompiledBank::from_raw_parts`] exists for
//! robustness tests and external tooling that wants to feed the
//! evaluator hostile arenas.
//!
//! On top of the arena sit two scan accelerators (both bit-identical
//! to the sequential full scan on builder-made banks):
//!
//! * a **feature-usage prefilter** ([`crate::index::BankIndex`]): each
//!   forest records which feature stripes its branch nodes test plus
//!   its precomputed verdict on the all-default sample; a query whose
//!   nonzero stripes miss a forest's tested set is answered from the
//!   cached verdict without walking a tree.
//! * a **thread-sharded scan** ([`CompiledBank::for_each_accepting_sharded`]):
//!   disjoint [`ForestSpan`] ranges are submitted as tasks to a
//!   persistent [`sentinel_pool::ComputePool`] (no per-call thread
//!   spawns), scanned into per-shard lanes and merged in shard order,
//!   so candidate order is exactly the sequential push order. Banks
//!   below [`SHARDED_MIN_FORESTS`] route inline instead — small scans
//!   are cheaper than any hand-off.

use crate::error::MlError;
use crate::forest::RandomForest;
use crate::index::{BankIndex, IndexRow, MAX_STRIPES};
use crate::tree::Node;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard};

/// Tag bit marking a child reference as a leaf; bit 0 then carries the
/// tree's positive-class vote. References without the tag are indices
/// into the bank's node arena.
pub const LEAF_BIT: u32 = 1 << 31;

/// Bank size from which [`CompiledBank::for_each_accepting`] consults
/// the feature-usage prefilter. Computing the query bitmap is a fixed
/// ~O(sample) cost; below this many forests it is a measurable
/// fraction of the whole scan (≈8% at 27 types) while above it it
/// disappears (<2% at 64, ~0 at thousands). The sharded scan always
/// consults the index — sharding only makes sense on banks far past
/// this threshold.
pub const PREFILTER_MIN_FORESTS: usize = 64;

/// Bank size from which [`CompiledBank::for_each_accepting_sharded`]
/// fans span-range tasks out to the compute pool. Below it the whole
/// scan finishes in the time pool hand-off alone costs (ticket pushes,
/// wakeups, lane merging), so small banks run inline on the caller —
/// the same shape as [`PREFILTER_MIN_FORESTS`] gating the prefilter.
/// Use [`CompiledBank::for_each_accepting_pooled`] to force pool
/// execution at any size (parity tests, benchmarks).
pub const SHARDED_MIN_FORESTS: usize = 1024;

/// One branch node of the compiled arena: 16 bytes, no enum
/// discriminant. `left`/`right` are tagged references (see
/// [`LEAF_BIT`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackedNode {
    /// Feature index tested by this branch.
    pub feature: u16,
    /// Branch threshold: `sample[feature] <= threshold` goes left.
    pub threshold: f32,
    /// Tagged reference to the left child.
    pub left: u32,
    /// Tagged reference to the right child.
    pub right: u32,
}

/// Per-forest metadata: where its tree roots live in the root table
/// and how many positive votes it takes to accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestSpan {
    /// First entry of this forest in the bank's root table.
    pub roots_start: u32,
    /// Number of trees (= root-table entries).
    pub n_trees: u32,
    /// Positive votes required to accept; `n_trees + 1` means the
    /// forest can never accept (a threshold above 1.0).
    pub accept_votes: u32,
    /// Feature dimensionality; samples of any other length are
    /// rejected (mirroring the interpreter's dimension check).
    pub n_features: u32,
}

/// Cumulative scan-traffic counters a bank records as queries pass
/// through it: relaxed atomics bumped a constant number of times per
/// query (never per forest), so the counting cost is a few uncontended
/// cache-line RMWs — invisible next to the arena scan itself — and the
/// scan paths stay allocation-free and `&self`.
///
/// Read via [`CompiledBank::scan_counters`]; surfaced to operators
/// through the serve layer's Stats frame. Cloning a bank copies the
/// counter values at that instant (a clone is a faithful snapshot of
/// the bank, counters included).
#[derive(Debug, Default)]
pub struct ScanCounters {
    queries: AtomicU64,
    prefiltered: AtomicU64,
    forests_skipped: AtomicU64,
}

impl Clone for ScanCounters {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        ScanCounters {
            queries: AtomicU64::new(snap.queries),
            prefiltered: AtomicU64::new(snap.prefiltered),
            forests_skipped: AtomicU64::new(snap.forests_skipped),
        }
    }
}

impl ScanCounters {
    /// The counters' current values.
    pub fn snapshot(&self) -> ScanSnapshot {
        ScanSnapshot {
            queries: self.queries.load(Relaxed),
            prefiltered: self.prefiltered.load(Relaxed),
            forests_skipped: self.forests_skipped.load(Relaxed),
        }
    }
}

/// A point-in-time copy of a bank's [`ScanCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanSnapshot {
    /// Bank scans answered (one per fingerprint classified).
    pub queries: u64,
    /// Scans that consulted the feature-bitmap prefilter.
    pub prefiltered: u64,
    /// Forest evaluations answered from the prefilter's cached
    /// all-default verdict without walking the arena.
    pub forests_skipped: u64,
}

/// A bank of binary forests compiled into one flat arena.
///
/// Construction goes through [`CompiledBankBuilder`]; evaluation is
/// allocation-free and panic-free. Forests keep the order they were
/// pushed in, so candidate sets produced by
/// [`CompiledBank::for_each_accepting`] are ordered exactly like a
/// sequential scan over the source forests.
#[derive(Debug, Clone, Default)]
pub struct CompiledBank {
    nodes: Vec<PackedNode>,
    roots: Vec<u32>,
    forests: Vec<ForestSpan>,
    index: BankIndex,
    counters: ScanCounters,
}

impl CompiledBank {
    /// Assembles a bank from raw arena parts **without validation**.
    ///
    /// Evaluation tolerates arbitrary garbage here (out-of-range
    /// references, cycles, spans past the tables) by voting negative,
    /// so this is safe to call — it just may not *mean* anything.
    /// Intended for robustness tests and external arena tooling;
    /// everything else should use [`CompiledBankBuilder`]. Raw banks
    /// carry no feature-usage index: every query is a full scan.
    pub fn from_raw_parts(
        nodes: Vec<PackedNode>,
        roots: Vec<u32>,
        forests: Vec<ForestSpan>,
    ) -> Self {
        CompiledBank {
            nodes,
            roots,
            forests,
            index: BankIndex::disabled(),
            counters: ScanCounters::default(),
        }
    }

    /// [`CompiledBank::from_raw_parts`] with an externally supplied
    /// feature-usage index, garbage welcome.
    ///
    /// The index is advisory: it is consulted only when
    /// [`BankIndex::is_usable`] holds for the forest count (otherwise
    /// every query falls back to the full scan), and a hostile row can
    /// only ever reroute its forest to the row's recorded default
    /// verdict — never cause a panic, an out-of-bounds access or
    /// unbounded work. Robustness-test entry point.
    pub fn from_raw_parts_indexed(
        nodes: Vec<PackedNode>,
        roots: Vec<u32>,
        forests: Vec<ForestSpan>,
        index: BankIndex,
    ) -> Self {
        CompiledBank {
            nodes,
            roots,
            forests,
            index,
            counters: ScanCounters::default(),
        }
    }

    /// The bank's feature-usage index. Usable (consulted by queries)
    /// only when [`BankIndex::is_usable`] holds for
    /// [`CompiledBank::forest_count`]; builder-made banks always
    /// satisfy that.
    pub fn index(&self) -> &BankIndex {
        &self.index
    }

    /// Whether queries on this bank actually use the prefilter.
    pub fn is_indexed(&self) -> bool {
        self.index.is_usable(self.forests.len())
    }

    /// Number of forests in the bank.
    pub fn forest_count(&self) -> usize {
        self.forests.len()
    }

    /// Whether the bank holds no forests.
    pub fn is_empty(&self) -> bool {
        self.forests.is_empty()
    }

    /// Total packed branch nodes across all forests.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate arena footprint in bytes (nodes + roots + spans +
    /// index rows).
    pub fn arena_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<PackedNode>()
            + self.roots.len() * std::mem::size_of::<u32>()
            + self.forests.len() * std::mem::size_of::<ForestSpan>()
            + std::mem::size_of_val(self.index.rows())
    }

    /// The per-forest metadata, in push order.
    pub fn spans(&self) -> &[ForestSpan] {
        &self.forests
    }

    /// Cumulative scan-traffic counters: how many queries this bank
    /// has answered, how many consulted the prefilter, and how many
    /// arena walks the prefilter skipped. Lock-free to read; the scan
    /// paths bump them with a constant number of relaxed atomics per
    /// query.
    pub fn scan_counters(&self) -> ScanSnapshot {
        self.counters.snapshot()
    }

    /// Does forest `index` accept `sample`?
    ///
    /// Early-exits once the accept count is reached or mathematically
    /// unreachable. Returns `false` for an out-of-range index, a
    /// wrong-length sample, or a corrupt arena — never panics.
    pub fn accepts(&self, index: usize, sample: &[f32]) -> bool {
        match self.forests.get(index) {
            Some(span) => self.span_accepts(span, sample),
            None => false,
        }
    }

    /// Calls `f(index)` for every forest accepting `sample`, in push
    /// order. Allocation-free.
    ///
    /// From [`PREFILTER_MIN_FORESTS`] forests up (and with a usable
    /// feature-usage index), the query's nonzero-stripe bitmap is
    /// computed once and every forest whose tested-stripe set does not
    /// intersect it is answered from its cached all-default verdict
    /// without walking the arena — bit-identical to the full scan by
    /// construction (all tested dimensions read the default `0.0`).
    /// Below the threshold the bitmap's fixed cost cannot pay for
    /// itself against a scan this short, so small banks take
    /// [`CompiledBank::for_each_accepting_full`] directly; use
    /// [`CompiledBank::for_each_accepting_indexed`] to force the
    /// prefilter at any size (parity tests, benchmarks).
    pub fn for_each_accepting(&self, sample: &[f32], f: impl FnMut(usize)) {
        if self.forests.len() >= PREFILTER_MIN_FORESTS {
            self.for_each_accepting_indexed(sample, f);
        } else {
            self.for_each_accepting_full(sample, f);
        }
    }

    /// [`CompiledBank::for_each_accepting`] with the prefilter forced
    /// on regardless of bank size (it still requires a usable index —
    /// raw-parts banks without one scan fully). The surface the parity
    /// suites and A/B benches drive, so prefilter semantics are
    /// exercised on banks of every size, not only past the hot path's
    /// size threshold.
    pub fn for_each_accepting_indexed(&self, sample: &[f32], mut f: impl FnMut(usize)) {
        match self.usable_bitmap(sample) {
            Some(bitmap) => {
                self.counters.queries.fetch_add(1, Relaxed);
                self.counters.prefiltered.fetch_add(1, Relaxed);
                let mut skipped = 0u64;
                for (index, span) in self.forests.iter().enumerate() {
                    if self.prefiltered_verdict(index, span, sample, bitmap, &mut skipped) {
                        f(index);
                    }
                }
                if skipped > 0 {
                    self.counters.forests_skipped.fetch_add(skipped, Relaxed);
                }
            }
            None => self.for_each_accepting_full(sample, f),
        }
    }

    /// The unindexed full scan: every forest is evaluated through the
    /// arena, no prefilter consulted. Reference for A/B benchmarks and
    /// the fallback for banks without a usable index.
    pub fn for_each_accepting_full(&self, sample: &[f32], mut f: impl FnMut(usize)) {
        self.counters.queries.fetch_add(1, Relaxed);
        for (index, span) in self.forests.iter().enumerate() {
            if self.span_accepts(span, sample) {
                f(index);
            }
        }
    }

    /// Calls `f(index)` for every forest accepting `sample`, fanning
    /// disjoint span ranges out across the global compute pool —
    /// accepted indices land in `scratch`'s per-shard lanes and are
    /// merged in shard order, so `f` observes **exactly** the
    /// sequential push order, bit-identical to
    /// [`CompiledBank::for_each_accepting`].
    ///
    /// Banks below [`SHARDED_MIN_FORESTS`] (and degenerate shard
    /// counts) run inline on the caller with no task submission at
    /// all; larger banks ride [`sentinel_pool::global`]. Warm calls
    /// are allocation-free and spawn-free either way. Use
    /// [`CompiledBank::for_each_accepting_pooled`] to pick the pool
    /// and force pooling regardless of size.
    pub fn for_each_accepting_sharded(
        &self,
        sample: &[f32],
        shards: usize,
        scratch: &mut ShardScratch,
        f: impl FnMut(usize),
    ) {
        let n = self.forests.len();
        if shards <= 1 || n < SHARDED_MIN_FORESTS || n > u32::MAX as usize {
            self.for_each_accepting(sample, f);
            return;
        }
        self.for_each_accepting_pooled(sentinel_pool::global(), sample, shards, scratch, f);
    }

    /// The pooled sharded scan behind
    /// [`CompiledBank::for_each_accepting_sharded`], with the pool
    /// explicit and no inline-size gate (parity tests and benches
    /// drive it on banks of every size). The prefilter is applied per
    /// shard; the query bitmap is computed once up front.
    ///
    /// `shards` is clamped to `1..=forest_count`; one shard (or an
    /// empty bank) runs inline. Lane entries are u32 forest indices;
    /// banks that large cannot be built (roots alone exceed u32), but
    /// a hostile span table could be — scan it serially. A panic
    /// inside a scan task is contained by the pool and re-raised here
    /// once all sibling shards finished, preserving the unwinding
    /// behaviour of the old scoped-thread scan.
    pub fn for_each_accepting_pooled(
        &self,
        pool: &sentinel_pool::ComputePool,
        sample: &[f32],
        shards: usize,
        scratch: &mut ShardScratch,
        mut f: impl FnMut(usize),
    ) {
        let n = self.forests.len();
        let shards = shards.clamp(1, n.max(1));
        if shards <= 1 || n > u32::MAX as usize {
            self.for_each_accepting(sample, f);
            return;
        }
        if scratch.lanes.len() < shards {
            scratch.lanes.resize_with(shards, Default::default);
        }
        let bitmap = self.usable_bitmap(sample);
        self.counters.queries.fetch_add(1, Relaxed);
        if bitmap.is_some() {
            self.counters.prefiltered.fetch_add(1, Relaxed);
        }
        let chunk = n.div_ceil(shards);
        let lanes = &scratch.lanes[..shards];
        let outcome = pool.for_each(shards, |shard| {
            let start = shard * chunk;
            let mut lane = lane_guard(&lanes[shard]);
            self.scan_range(start..(start + chunk).min(n), sample, bitmap, &mut lane);
        });
        if let Err(contained) = outcome {
            panic!("sharded scan task panicked: {}", contained.message());
        }
        for lane in lanes {
            for index in lane_guard(lane).iter() {
                f(*index as usize);
            }
        }
    }

    /// The pre-pool sharded scan, one crossbeam-scoped thread per
    /// shard beyond the caller's. Kept as the A/B baseline for the
    /// `scaling` bench and as an independent parity reference for the
    /// pooled path; production code routes through
    /// [`CompiledBank::for_each_accepting_sharded`] instead.
    pub fn for_each_accepting_sharded_scoped(
        &self,
        sample: &[f32],
        shards: usize,
        scratch: &mut ShardScratch,
        mut f: impl FnMut(usize),
    ) {
        let n = self.forests.len();
        let shards = shards.clamp(1, n.max(1));
        if shards <= 1 || n > u32::MAX as usize {
            self.for_each_accepting(sample, f);
            return;
        }
        if scratch.lanes.len() < shards {
            scratch.lanes.resize_with(shards, Default::default);
        }
        let bitmap = self.usable_bitmap(sample);
        self.counters.queries.fetch_add(1, Relaxed);
        if bitmap.is_some() {
            self.counters.prefiltered.fetch_add(1, Relaxed);
        }
        let chunk = n.div_ceil(shards);
        let lanes = &scratch.lanes[..shards];
        crossbeam::thread::scope(|s| {
            for (i, lane) in lanes.iter().enumerate().skip(1) {
                let start = i * chunk;
                s.spawn(move |_| {
                    let mut lane = lane_guard(lane);
                    self.scan_range(start..(start + chunk).min(n), sample, bitmap, &mut lane)
                });
            }
            let mut first = lane_guard(&lanes[0]);
            self.scan_range(0..chunk.min(n), sample, bitmap, &mut first);
        })
        .expect("scoped scan threads do not panic");
        for lane in lanes {
            for index in lane_guard(lane).iter() {
                f(*index as usize);
            }
        }
    }

    /// Scans one contiguous forest range into `out` (cleared first) —
    /// the shard worker body. Bounds-clamped so hostile ranges cannot
    /// index past the span table.
    fn scan_range(
        &self,
        range: std::ops::Range<usize>,
        sample: &[f32],
        bitmap: Option<u32>,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let end = range.end.min(self.forests.len());
        let mut skipped = 0u64;
        for index in range.start.min(end)..end {
            let span = &self.forests[index];
            let accepts = match bitmap {
                Some(bm) => self.prefiltered_verdict(index, span, sample, bm, &mut skipped),
                None => self.span_accepts(span, sample),
            };
            if accepts {
                out.push(index as u32);
            }
        }
        if skipped > 0 {
            self.counters.forests_skipped.fetch_add(skipped, Relaxed);
        }
    }

    /// The query's nonzero-stripe bitmap, or `None` when the index is
    /// not usable for this bank and queries must scan fully.
    fn usable_bitmap(&self, sample: &[f32]) -> Option<u32> {
        if self.index.is_usable(self.forests.len()) {
            Some(self.index.sample_bitmap(sample))
        } else {
            None
        }
    }

    /// One forest's verdict under the prefilter: a forest whose tested
    /// stripes miss the query's nonzero stripes reads the default
    /// value at every tested dimension, so its cached all-default
    /// verdict IS its verdict — no walk needed. The dimension check
    /// runs first so a wrong-length sample stays `false` exactly like
    /// [`CompiledBank::span_accepts`]. Missing rows (impossible when
    /// the usability check passed, but kept panic-free) fall back to
    /// the full evaluation. `skipped` accumulates arena walks the
    /// prefilter avoided — a thread-local tally the callers flush to
    /// [`ScanCounters`] once per scan, keeping atomics off the
    /// per-forest path.
    #[inline]
    fn prefiltered_verdict(
        &self,
        index: usize,
        span: &ForestSpan,
        sample: &[f32],
        bitmap: u32,
        skipped: &mut u64,
    ) -> bool {
        if sample.len() == span.n_features as usize {
            if let Some(row) = self.index.rows().get(index) {
                if row.tested & bitmap == 0 {
                    *skipped += 1;
                    return row.default_accepts;
                }
            }
        }
        self.span_accepts(span, sample)
    }

    /// Full positive-vote count of forest `index` on `sample` (no
    /// early exit — evaluation and debugging aid). `None` for an
    /// out-of-range index or wrong-length sample.
    pub fn positive_votes(&self, index: usize, sample: &[f32]) -> Option<u32> {
        let span = self.forests.get(index)?;
        if sample.len() != span.n_features as usize {
            return None;
        }
        let roots = self.span_roots(span)?;
        Some(
            roots
                .iter()
                .map(|root| u32::from(self.walk(*root, sample)))
                .sum(),
        )
    }

    /// Tiles the bank `times` times: the result holds `times ×
    /// forest_count` forests, each copy with its own arena region (so
    /// the memory footprint scales like a genuinely larger bank —
    /// what the type-count scaling benchmarks need). The feature-usage
    /// index tiles with it: every copy keeps its source forest's row.
    ///
    /// # Panics
    ///
    /// Panics when the tiled arena would overflow the tagged 31-bit
    /// reference space or the `u32` root table — before this check,
    /// large tilings silently wrapped node references *into earlier
    /// copies' regions* (an off-by-bank corruption that surfaced at
    /// replicated type counts past `u16::MAX`). Use
    /// [`CompiledBank::try_repeat`] to get the typed error instead.
    pub fn repeat(&self, times: usize) -> CompiledBank {
        self.try_repeat(times)
            .expect("tiled bank exceeds the 31-bit arena reference space")
    }

    /// [`CompiledBank::repeat`] with overflow reported as a typed
    /// error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`MlError::BadConfig`] when `times × node_count` would reach
    /// the tagged 31-bit reference space (node references would wrap
    /// into earlier copies) or `times × root_count` would overflow the
    /// `u32` root offsets. Checked **before** any allocation.
    pub fn try_repeat(&self, times: usize) -> Result<CompiledBank, MlError> {
        let nodes_total = self
            .nodes
            .len()
            .checked_mul(times)
            .filter(|total| *total < LEAF_BIT as usize)
            .ok_or_else(|| {
                MlError::BadConfig(format!(
                    "tiling {} nodes x {times} copies exceeds the 31-bit arena \
                     reference space",
                    self.nodes.len()
                ))
            })?;
        let roots_total = self
            .roots
            .len()
            .checked_mul(times)
            .filter(|total| *total <= u32::MAX as usize)
            .ok_or_else(|| {
                MlError::BadConfig(format!(
                    "tiling {} roots x {times} copies overflows the u32 root table",
                    self.roots.len()
                ))
            })?;
        let mut out = CompiledBank {
            nodes: Vec::with_capacity(nodes_total),
            roots: Vec::with_capacity(roots_total),
            forests: Vec::with_capacity(self.forests.len() * times),
            index: self.index.repeat(times),
            counters: ScanCounters::default(),
        };
        for copy in 0..times {
            let node_offset = (copy * self.nodes.len()) as u32;
            let root_offset = (copy * self.roots.len()) as u32;
            let shift = |reference: u32| {
                if reference & LEAF_BIT != 0 {
                    reference
                } else {
                    reference + node_offset
                }
            };
            out.nodes.extend(self.nodes.iter().map(|n| PackedNode {
                left: shift(n.left),
                right: shift(n.right),
                ..*n
            }));
            out.roots.extend(self.roots.iter().map(|r| shift(*r)));
            out.forests.extend(self.forests.iter().map(|s| ForestSpan {
                roots_start: s.roots_start + root_offset,
                ..*s
            }));
        }
        Ok(out)
    }

    fn span_roots(&self, span: &ForestSpan) -> Option<&[u32]> {
        let start = span.roots_start as usize;
        let end = start.checked_add(span.n_trees as usize)?;
        self.roots.get(start..end)
    }

    fn span_accepts(&self, span: &ForestSpan, sample: &[f32]) -> bool {
        if sample.len() != span.n_features as usize {
            return false;
        }
        let needed = span.accept_votes;
        if needed == 0 {
            // A zero (or negative) threshold accepts with no votes —
            // exactly what fraction >= threshold yields.
            return true;
        }
        let Some(roots) = self.span_roots(span) else {
            return false;
        };
        if u64::from(needed) > roots.len() as u64 {
            return false;
        }
        let mut votes = 0u32;
        let mut remaining = roots.len() as u32;
        for root in roots {
            remaining -= 1;
            if self.walk(*root, sample) {
                votes += 1;
                if votes >= needed {
                    return true;
                }
            }
            if votes + remaining < needed {
                return false;
            }
        }
        false
    }

    /// Walks one tree from a tagged root reference to its leaf vote.
    /// The step budget bounds traversal on cyclic (corrupt) arenas;
    /// any out-of-range access votes negative.
    fn walk(&self, mut reference: u32, sample: &[f32]) -> bool {
        let mut steps = self.nodes.len() + 1;
        loop {
            if reference & LEAF_BIT != 0 {
                return reference & 1 == 1;
            }
            if steps == 0 {
                return false;
            }
            steps -= 1;
            let Some(node) = self.nodes.get(reference as usize) else {
                return false;
            };
            let value = match sample.get(node.feature as usize) {
                Some(v) => *v,
                None => return false,
            };
            reference = if value <= node.threshold {
                node.left
            } else {
                node.right
            };
        }
    }
}

/// Locks a scratch lane, recovering the guard if a panicking scan task
/// poisoned it (the lane is cleared at the start of every scan, so a
/// poisoned lane carries no stale state into the next call).
fn lane_guard(lane: &Mutex<Vec<u32>>) -> MutexGuard<'_, Vec<u32>> {
    lane.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Reusable per-shard lanes for [`CompiledBank::for_each_accepting_sharded`]:
/// each scan task writes accepted forest indices into its own lane,
/// and a warm call reuses the lanes' capacity — the scan itself
/// allocates nothing. Each lane sits behind its own `Mutex` so pool
/// tasks (which share the job closure by reference) get exclusive
/// lane access; tasks own disjoint lanes, so every lock is
/// uncontended.
#[derive(Debug, Default)]
pub struct ShardScratch {
    lanes: Vec<Mutex<Vec<u32>>>,
}

impl Clone for ShardScratch {
    fn clone(&self) -> Self {
        ShardScratch {
            lanes: self
                .lanes
                .iter()
                .map(|lane| Mutex::new(lane_guard(lane).clone()))
                .collect(),
        }
    }
}

impl ShardScratch {
    /// An empty scratch; lanes grow on first use and are reused.
    pub fn new() -> Self {
        ShardScratch::default()
    }

    /// Number of lanes currently allocated (= the widest shard count
    /// seen so far).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }
}

/// Incrementally compiles binary forests into one [`CompiledBank`].
#[derive(Debug, Clone)]
pub struct CompiledBankBuilder {
    bank: CompiledBank,
}

impl Default for CompiledBankBuilder {
    fn default() -> Self {
        CompiledBankBuilder::new()
    }
}

impl CompiledBankBuilder {
    /// An empty builder indexing on [`MAX_STRIPES`] feature stripes
    /// (dimension `d` maps to index bit `d % 32`). Callers whose
    /// samples have a semantic column period — like Sentinel's
    /// 23-features-per-packet F′ layout — should pick it with
    /// [`CompiledBankBuilder::with_stripes`] for a sharper prefilter.
    pub fn new() -> Self {
        CompiledBankBuilder::with_stripes(MAX_STRIPES)
    }

    /// An empty builder folding feature dimensions into `stripes`
    /// index bits (`1..=32`; anything else disables indexing and the
    /// finished bank scans fully).
    pub fn with_stripes(stripes: u32) -> Self {
        CompiledBankBuilder {
            bank: CompiledBank {
                index: BankIndex::new(stripes),
                ..CompiledBank::default()
            },
        }
    }

    /// Resumes building on top of an existing bank: pushed forests
    /// **append** their node region, root entries, span and index row
    /// — nothing already compiled is touched or recompiled. This is
    /// the incremental-compilation path behind `add_device_type` at
    /// large bank sizes (re-running the whole builder would be
    /// O(bank) per added type).
    ///
    /// If the bank's index is not usable for its forest count (a
    /// raw-parts bank), indexing stays disabled for the appended bank
    /// too — a partial index would silently misroute queries.
    pub fn from_bank(mut bank: CompiledBank) -> Self {
        if !bank.forests.is_empty() && !bank.index.is_usable(bank.forests.len()) {
            bank.index = BankIndex::disabled();
        }
        CompiledBankBuilder { bank }
    }

    /// Compiles `forest` into the arena with the given fractional
    /// accept threshold, returning the forest's bank index.
    ///
    /// The accept rule is bit-identical to
    /// `forest.positive_vote_fraction(sample)? >= accept_threshold`:
    /// the required vote count is the smallest `v` whose fraction
    /// `v / n_trees` (computed in `f32`, like the interpreter) clears
    /// the threshold.
    ///
    /// # Errors
    ///
    /// [`MlError::BadConfig`] if the forest is not binary, a feature
    /// index exceeds `u16`, or the arena would outgrow the tagged
    /// 31-bit reference space.
    pub fn push(&mut self, forest: &RandomForest, accept_threshold: f32) -> Result<usize, MlError> {
        if forest.n_classes() != 2 {
            return Err(MlError::BadConfig(format!(
                "compiled banks hold binary forests only (got {} classes)",
                forest.n_classes()
            )));
        }
        if forest.n_features() > usize::from(u16::MAX) + 1 {
            return Err(MlError::BadConfig(format!(
                "feature dimensionality {} exceeds the packed u16 index",
                forest.n_features()
            )));
        }
        let branch_nodes: usize = forest
            .trees()
            .iter()
            .map(|t| t.node_count() - t.leaf_count())
            .sum();
        if self.bank.nodes.len() + branch_nodes >= LEAF_BIT as usize {
            return Err(MlError::BadConfig(
                "compiled arena exceeds the 31-bit reference space".into(),
            ));
        }
        let roots_start = self.bank.roots.len() as u32;
        let nodes_start = self.bank.nodes.len();
        for tree in forest.trees() {
            let root = self.compile_tree(tree.nodes());
            self.bank.roots.push(root);
        }
        let n_trees = forest.n_trees() as u32;
        let span = ForestSpan {
            roots_start,
            n_trees,
            accept_votes: votes_needed(accept_threshold, forest.n_trees()),
            n_features: forest.n_features() as u32,
        };
        self.bank.forests.push(span);
        let stripes = self.bank.index.stripes();
        if (1..=MAX_STRIPES).contains(&stripes) {
            // Index row: the stripes this forest's branch nodes test
            // (union over its freshly emitted node region — an
            // over-approximation of any single walk, which is exactly
            // what makes skipping sound), plus its verdict on the
            // all-default sample, evaluated once right here.
            let tested = self.bank.nodes[nodes_start..]
                .iter()
                .fold(0u32, |bits, node| {
                    bits | 1 << (u32::from(node.feature) % stripes)
                });
            let zeros = vec![0f32; span.n_features as usize];
            let default_accepts = self.bank.span_accepts(&span, &zeros);
            self.bank.index.push_row(IndexRow {
                tested,
                default_accepts,
            });
        }
        Ok(self.bank.forests.len() - 1)
    }

    /// Finishes the bank.
    pub fn finish(self) -> CompiledBank {
        self.bank
    }

    /// Compiles one tree's node list, returning the tagged root
    /// reference. Tree invariants (children strictly forward, binary
    /// leaf histograms) are guaranteed by `DecisionTree`'s own
    /// validation.
    fn compile_tree(&mut self, tree_nodes: &[Node]) -> u32 {
        // First pass: assign every tree node its arena reference —
        // splits get the next arena slots in order, leaves fold into
        // tagged references.
        let base = self.bank.nodes.len() as u32;
        let mut references = Vec::with_capacity(tree_nodes.len());
        let mut splits = 0u32;
        for node in tree_nodes {
            references.push(match node {
                Node::Leaf { counts } => {
                    // Binary argmax with the interpreter's tie rule
                    // (`max_by_key` keeps the *last* maximum, so a tie
                    // votes positive).
                    let negative = counts.first().copied().unwrap_or(0);
                    let positive = counts.get(1).copied().unwrap_or(0) >= negative;
                    LEAF_BIT | u32::from(positive)
                }
                Node::Split { .. } => {
                    splits += 1;
                    base + splits - 1
                }
            });
        }
        // Second pass: emit packed nodes with resolved child refs.
        for node in tree_nodes {
            if let Node::Split {
                feature,
                threshold,
                left,
                right,
            } = node
            {
                self.bank.nodes.push(PackedNode {
                    feature: *feature as u16,
                    threshold: *threshold,
                    left: references[*left],
                    right: references[*right],
                });
            }
        }
        references[0]
    }
}

/// The smallest vote count whose `f32` fraction of `n_trees` clears
/// `threshold`, or `n_trees + 1` when no count does (threshold above
/// 1.0, or NaN — which the interpreter likewise never accepts).
fn votes_needed(threshold: f32, n_trees: usize) -> u32 {
    let total = n_trees as f32;
    (0..=n_trees)
        .find(|v| *v as f32 / total >= threshold)
        .map(|v| v as u32)
        .unwrap_or(n_trees as u32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sentinel_pool::ComputePool;

    fn training_data(seed: u64, n: usize, d: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f32> = (0..d).map(|_| rng.gen::<f32>()).collect();
            let label = usize::from(row[0] + row[d - 1] > 1.0);
            samples.push(row);
            labels.push(label);
        }
        (samples, labels)
    }

    fn forest(seed: u64, d: usize) -> RandomForest {
        let (samples, labels) = training_data(seed, 120, d);
        RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), seed).unwrap()
    }

    #[test]
    fn bank_matches_interpreter_on_every_threshold() {
        let forests: Vec<RandomForest> = (0..4).map(|i| forest(40 + i, 3)).collect();
        for threshold in [0.0f32, 0.2, 0.35, 0.5, 0.9, 1.0, 1.5, -0.5] {
            let mut builder = CompiledBankBuilder::new();
            for f in &forests {
                builder.push(f, threshold).unwrap();
            }
            let bank = builder.finish();
            let mut rng = SmallRng::seed_from_u64(7);
            for _ in 0..200 {
                let sample: Vec<f32> = (0..3).map(|_| rng.gen::<f32>() * 1.5).collect();
                for (i, f) in forests.iter().enumerate() {
                    let interpreted = f.positive_vote_fraction(&sample).unwrap() >= threshold;
                    assert_eq!(
                        bank.accepts(i, &sample),
                        interpreted,
                        "forest {i} at threshold {threshold} on {sample:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scan_counters_track_queries_and_skips() {
        let forests: Vec<RandomForest> = (0..4).map(|i| forest(90 + i, 3)).collect();
        let mut builder = CompiledBankBuilder::new();
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let bank = builder.finish();
        assert_eq!(bank.scan_counters(), ScanSnapshot::default());

        let sample = [0.4f32, 0.6, 0.2];
        bank.for_each_accepting_full(&sample, |_| {});
        let after_full = bank.scan_counters();
        assert_eq!(after_full.queries, 1);
        assert_eq!(after_full.prefiltered, 0);

        bank.for_each_accepting_indexed(&sample, |_| {});
        let after_indexed = bank.scan_counters();
        assert_eq!(after_indexed.queries, 2);
        assert_eq!(after_indexed.prefiltered, 1);

        // The all-zero sample misses every tested stripe: the
        // prefilter answers all forests from cached verdicts.
        bank.for_each_accepting_indexed(&[0.0, 0.0, 0.0], |_| {});
        let after_zero = bank.scan_counters();
        assert_eq!(after_zero.queries, 3);
        assert_eq!(after_zero.prefiltered, 2);
        assert_eq!(
            after_zero.forests_skipped - after_indexed.forests_skipped,
            bank.forest_count() as u64
        );

        let mut scratch = ShardScratch::new();
        bank.for_each_accepting_pooled(sentinel_pool::global(), &sample, 2, &mut scratch, |_| {});
        assert_eq!(bank.scan_counters().queries, 4);
        assert_eq!(bank.scan_counters().prefiltered, 3);

        // Clones carry the values; fresh builds start at zero.
        let cloned = bank.clone();
        assert_eq!(cloned.scan_counters(), bank.scan_counters());
        assert_eq!(bank.repeat(2).scan_counters(), ScanSnapshot::default());
    }

    #[test]
    fn for_each_accepting_preserves_push_order() {
        let forests: Vec<RandomForest> = (0..5).map(|i| forest(60 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::new();
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let bank = builder.finish();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut compiled = Vec::new();
            bank.for_each_accepting_indexed(&sample, |i| compiled.push(i));
            let sequential: Vec<usize> = forests
                .iter()
                .enumerate()
                .filter(|(_, f)| f.positive_vote_fraction(&sample).unwrap() >= 0.5)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(compiled, sequential);
        }
    }

    #[test]
    fn votes_needed_maps_thresholds_exactly() {
        assert_eq!(votes_needed(0.0, 33), 0);
        assert_eq!(votes_needed(-1.0, 33), 0);
        assert_eq!(votes_needed(0.5, 33), 17);
        assert_eq!(votes_needed(0.35, 33), 12);
        assert_eq!(votes_needed(1.0, 33), 33);
        assert_eq!(votes_needed(1.01, 33), 34);
        assert_eq!(votes_needed(f32::NAN, 33), 34);
        // Exactness at representable fractions: 16/32 == 0.5.
        assert_eq!(votes_needed(0.5, 32), 16);
    }

    #[test]
    fn single_leaf_trees_compile() {
        // max_depth 0 forests are all leaves — no packed nodes at all.
        let (samples, labels) = training_data(5, 40, 2);
        let config = ForestConfig {
            tree: crate::tree::TreeConfig {
                max_depth: 0,
                ..crate::tree::TreeConfig::default()
            },
            ..ForestConfig::default()
        };
        let f = RandomForest::fit(&samples, &labels, 2, &config, 5).unwrap();
        let mut builder = CompiledBankBuilder::new();
        builder.push(&f, 0.5).unwrap();
        let bank = builder.finish();
        assert_eq!(bank.node_count(), 0);
        let sample = [0.3f32, 0.9];
        assert_eq!(
            bank.accepts(0, &sample),
            f.positive_vote_fraction(&sample).unwrap() >= 0.5
        );
    }

    #[test]
    fn wrong_dimension_and_bad_index_vote_negative() {
        let f = forest(9, 3);
        let mut builder = CompiledBankBuilder::new();
        builder.push(&f, 0.0).unwrap();
        let bank = builder.finish();
        // Threshold 0 accepts everything of the right shape...
        assert!(bank.accepts(0, &[0.1, 0.2, 0.3]));
        // ...but never a wrong-length sample or unknown forest.
        assert!(!bank.accepts(0, &[0.1, 0.2]));
        assert!(!bank.accepts(1, &[0.1, 0.2, 0.3]));
        assert_eq!(bank.positive_votes(0, &[0.1, 0.2]), None);
        assert_eq!(bank.positive_votes(1, &[0.1, 0.2, 0.3]), None);
    }

    #[test]
    fn rejects_non_binary_forests() {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for i in 0..20 {
                samples.push(vec![c as f32 * 5.0 + (i % 3) as f32 * 0.1]);
                labels.push(c);
            }
        }
        let f = RandomForest::fit(&samples, &labels, 3, &ForestConfig::default(), 1).unwrap();
        let err = CompiledBankBuilder::new().push(&f, 0.5).unwrap_err();
        assert!(matches!(err, MlError::BadConfig(_)));
    }

    #[test]
    fn corrupt_arenas_never_panic() {
        let sample = [0.5f32, 0.5];
        let span = ForestSpan {
            roots_start: 0,
            n_trees: 1,
            accept_votes: 1,
            n_features: 2,
        };
        // Root reference past the arena.
        let bank = CompiledBank::from_raw_parts(vec![], vec![42], vec![span]);
        assert!(!bank.accepts(0, &sample));
        // Node whose children form a cycle.
        let cyclic = PackedNode {
            feature: 0,
            threshold: 0.5,
            left: 0,
            right: 0,
        };
        let bank = CompiledBank::from_raw_parts(vec![cyclic], vec![0], vec![span]);
        assert!(!bank.accepts(0, &sample));
        assert_eq!(bank.positive_votes(0, &sample), Some(0));
        // Feature index past the sample (span lies about dimensions).
        let oob_feature = PackedNode {
            feature: 7,
            threshold: 0.5,
            left: LEAF_BIT | 1,
            right: LEAF_BIT | 1,
        };
        let bank = CompiledBank::from_raw_parts(vec![oob_feature], vec![0], vec![span]);
        assert!(!bank.accepts(0, &sample));
        // Span whose root range overflows the root table.
        let wild = ForestSpan {
            roots_start: u32::MAX,
            n_trees: u32::MAX,
            accept_votes: 1,
            n_features: 2,
        };
        let bank = CompiledBank::from_raw_parts(vec![], vec![], vec![wild]);
        assert!(!bank.accepts(0, &sample));
        // accept_votes beyond the tree count can never accept.
        let greedy = ForestSpan {
            accept_votes: 5,
            ..span
        };
        let bank = CompiledBank::from_raw_parts(vec![], vec![LEAF_BIT | 1], vec![greedy]);
        assert!(!bank.accepts(0, &sample));
    }

    #[test]
    fn repeat_tiles_forests_and_arena() {
        let forests: Vec<RandomForest> = (0..3).map(|i| forest(80 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::new();
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let bank = builder.finish();
        let tiled = bank.repeat(4);
        assert_eq!(tiled.forest_count(), 12);
        assert_eq!(tiled.node_count(), 4 * bank.node_count());
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            for copy in 0..4 {
                for i in 0..3 {
                    assert_eq!(
                        tiled.accepts(copy * 3 + i, &sample),
                        bank.accepts(i, &sample),
                        "copy {copy} forest {i}"
                    );
                }
            }
        }
        assert_eq!(bank.repeat(0).forest_count(), 0);
    }

    #[test]
    fn builder_banks_are_indexed_and_prefilter_is_bit_identical() {
        let forests: Vec<RandomForest> = (0..4).map(|i| forest(90 + i, 3)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(3);
        for f in &forests {
            builder.push(f, 0.35).unwrap();
        }
        let bank = builder.finish();
        assert!(bank.is_indexed());
        assert_eq!(bank.index().rows().len(), 4);
        assert_eq!(bank.index().stripes(), 3);
        let mut rng = SmallRng::seed_from_u64(13);
        for case in 0..300 {
            // Mix dense and mostly-zero samples — the latter is where
            // the prefilter actually routes to cached verdicts.
            let sample: Vec<f32> = (0..3)
                .map(|_| {
                    if case % 3 == 0 || rng.gen::<f32>() < 0.6 {
                        0.0
                    } else {
                        rng.gen::<f32>() * 1.5
                    }
                })
                .collect();
            let mut indexed = Vec::new();
            bank.for_each_accepting_indexed(&sample, |i| indexed.push(i));
            let mut full = Vec::new();
            bank.for_each_accepting_full(&sample, |i| full.push(i));
            assert_eq!(indexed, full, "prefilter diverged on {sample:?}");
            let interpreted: Vec<usize> = forests
                .iter()
                .enumerate()
                .filter(|(_, f)| f.positive_vote_fraction(&sample).unwrap() >= 0.35)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(indexed, interpreted);
        }
        // The all-default sample is answered purely from cached
        // verdicts; it must still match the full scan bit for bit.
        let zeros = [0f32; 3];
        assert_eq!(bank.index().sample_bitmap(&zeros), 0);
        let mut indexed = Vec::new();
        bank.for_each_accepting_indexed(&zeros, |i| indexed.push(i));
        let mut full = Vec::new();
        bank.for_each_accepting_full(&zeros, |i| full.push(i));
        assert_eq!(indexed, full);
        let defaults: Vec<usize> = bank
            .index()
            .rows()
            .iter()
            .enumerate()
            .filter(|(_, row)| row.default_accepts)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            indexed, defaults,
            "cached verdicts are the zero-sample truth"
        );
    }

    #[test]
    fn sharded_scan_is_bit_identical_and_ordered() {
        let forests: Vec<RandomForest> = (0..7).map(|i| forest(110 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.2).unwrap();
        }
        let bank = builder.finish();
        let mut scratch = ShardScratch::new();
        let mut rng = SmallRng::seed_from_u64(29);
        for _ in 0..60 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut sequential = Vec::new();
            bank.for_each_accepting_indexed(&sample, |i| sequential.push(i));
            // Every shard count — including 1 (inline) and counts past
            // the forest count (clamped) — merges to the same order.
            for shards in [0usize, 1, 2, 3, 5, 7, 16] {
                let mut pooled = Vec::new();
                bank.for_each_accepting_pooled(
                    sentinel_pool::global(),
                    &sample,
                    shards,
                    &mut scratch,
                    |i| pooled.push(i),
                );
                assert_eq!(
                    pooled, sequential,
                    "pooled({shards}) diverged on {sample:?}"
                );
                // The auto entry point routes a bank this small inline;
                // candidate order must be bit-identical to the pooled run.
                let mut auto = Vec::new();
                bank.for_each_accepting_sharded(&sample, shards, &mut scratch, |i| auto.push(i));
                assert_eq!(auto, pooled, "inline({shards}) diverged on {sample:?}");
            }
        }
        assert!(scratch.lane_count() >= 7);
    }

    #[test]
    fn auto_sharded_scan_pools_past_the_threshold_and_stays_bit_identical() {
        let forests: Vec<RandomForest> = (0..7).map(|i| forest(210 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.2).unwrap();
        }
        let small = builder.finish();
        let tiled = small.repeat(SHARDED_MIN_FORESTS / small.forest_count() + 1);
        assert!(tiled.forest_count() >= SHARDED_MIN_FORESTS);
        let pool = ComputePool::new(3);
        let mut scratch = ShardScratch::new();
        let mut rng = SmallRng::seed_from_u64(57);
        for _ in 0..10 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut sequential = Vec::new();
            tiled.for_each_accepting_indexed(&sample, |i| sequential.push(i));
            let mut auto = Vec::new();
            tiled.for_each_accepting_sharded(&sample, 4, &mut scratch, |i| auto.push(i));
            assert_eq!(auto, sequential, "auto-pooled diverged on {sample:?}");
            let mut scoped = Vec::new();
            tiled.for_each_accepting_sharded_scoped(&sample, 4, &mut scratch, |i| scoped.push(i));
            assert_eq!(scoped, sequential, "scoped baseline diverged on {sample:?}");
            let mut pooled = Vec::new();
            tiled.for_each_accepting_pooled(&pool, &sample, 4, &mut scratch, |i| pooled.push(i));
            assert_eq!(pooled, sequential, "private pool diverged on {sample:?}");
        }
        // Past the threshold the auto path really used the global pool.
        let counters = sentinel_pool::global().counters();
        assert!(counters.submitted > 0);
    }

    #[test]
    fn small_banks_scan_inline_without_touching_the_pool() {
        let forests: Vec<RandomForest> = (0..5).map(|i| forest(230 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.2).unwrap();
        }
        let bank = builder.finish();
        assert!(bank.forest_count() < SHARDED_MIN_FORESTS);
        // A private pool observes zero submissions because the auto
        // entry point never reaches a pool for a bank this small —
        // task hand-off would dominate the whole scan.
        let pool = ComputePool::new(2);
        let before = pool.counters().submitted;
        let mut scratch = ShardScratch::new();
        let mut out = Vec::new();
        bank.for_each_accepting_sharded(&[0.4, 0.6], 4, &mut scratch, |i| out.push(i));
        let mut serial = Vec::new();
        bank.for_each_accepting(&[0.4, 0.6], |i| serial.push(i));
        assert_eq!(out, serial);
        assert_eq!(pool.counters().submitted, before);
        assert_eq!(scratch.lane_count(), 0, "inline scans never grow lanes");
    }

    #[test]
    fn from_bank_appends_identically_to_one_shot_compilation() {
        let forests: Vec<RandomForest> = (0..5).map(|i| forest(130 + i, 3)).collect();
        let mut oneshot = CompiledBankBuilder::with_stripes(3);
        for f in &forests {
            oneshot.push(f, 0.5).unwrap();
        }
        let oneshot = oneshot.finish();

        let mut first = CompiledBankBuilder::with_stripes(3);
        for f in &forests[..3] {
            first.push(f, 0.5).unwrap();
        }
        let mut resumed = CompiledBankBuilder::from_bank(first.finish());
        for f in &forests[3..] {
            resumed.push(f, 0.5).unwrap();
        }
        let resumed = resumed.finish();

        // The append path reproduces the one-shot arena exactly.
        assert_eq!(resumed.nodes, oneshot.nodes);
        assert_eq!(resumed.roots, oneshot.roots);
        assert_eq!(resumed.spans(), oneshot.spans());
        assert_eq!(resumed.index(), oneshot.index());
    }

    #[test]
    fn from_bank_on_unindexed_banks_keeps_indexing_disabled() {
        let span = ForestSpan {
            roots_start: 0,
            n_trees: 1,
            accept_votes: 1,
            n_features: 3,
        };
        let raw = CompiledBank::from_raw_parts(vec![], vec![LEAF_BIT | 1], vec![span]);
        assert!(!raw.is_indexed());
        let mut builder = CompiledBankBuilder::from_bank(raw);
        builder.push(&forest(150, 3), 0.5).unwrap();
        let bank = builder.finish();
        // A partial index would misroute; it must stay disabled...
        assert!(!bank.is_indexed());
        // ...and queries fall back to the (correct) full scan.
        let sample = [0.4f32, 0.6, 0.1];
        let mut indexed = Vec::new();
        bank.for_each_accepting_indexed(&sample, |i| indexed.push(i));
        let mut full = Vec::new();
        bank.for_each_accepting_full(&sample, |i| full.push(i));
        assert_eq!(indexed, full);
    }

    #[test]
    fn try_repeat_reports_overflow_as_typed_errors() {
        let mut builder = CompiledBankBuilder::new();
        builder.push(&forest(42, 2), 0.5).unwrap();
        let bank = builder.finish();
        assert!(bank.node_count() > 0);
        // Node references would wrap into earlier copies — the
        // off-by-bank corruption this guard exists for.
        let times = LEAF_BIT as usize / bank.node_count() + 1;
        assert!(matches!(bank.try_repeat(times), Err(MlError::BadConfig(_))));
        // Root-table overflow on a nodeless (leaf-only) bank.
        let span = ForestSpan {
            roots_start: 0,
            n_trees: 2,
            accept_votes: 1,
            n_features: 1,
        };
        let leafy = CompiledBank::from_raw_parts(vec![], vec![LEAF_BIT | 1, LEAF_BIT], vec![span]);
        let times = u32::MAX as usize / 2 + 1;
        assert!(matches!(
            leafy.try_repeat(times),
            Err(MlError::BadConfig(_))
        ));
        // In-range tilings still work through the checked path.
        assert_eq!(bank.try_repeat(3).unwrap().forest_count(), 3);
    }

    #[test]
    fn repeat_tiles_the_index_with_the_arena() {
        let forests: Vec<RandomForest> = (0..3).map(|i| forest(160 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let bank = builder.finish();
        let tiled = bank.repeat(5);
        assert!(tiled.is_indexed());
        assert_eq!(tiled.index().rows().len(), 15);
        for copy in 0..5 {
            assert_eq!(
                &tiled.index().rows()[copy * 3..copy * 3 + 3],
                bank.index().rows()
            );
        }
        let mut rng = SmallRng::seed_from_u64(31);
        let mut scratch = ShardScratch::new();
        for _ in 0..30 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut indexed = Vec::new();
            tiled.for_each_accepting_indexed(&sample, |i| indexed.push(i));
            let mut full = Vec::new();
            tiled.for_each_accepting_full(&sample, |i| full.push(i));
            assert_eq!(indexed, full);
            let mut sharded = Vec::new();
            tiled.for_each_accepting_pooled(
                sentinel_pool::global(),
                &sample,
                4,
                &mut scratch,
                |i| sharded.push(i),
            );
            assert_eq!(sharded, full);
        }
    }

    #[test]
    fn corrupt_index_rows_never_panic_and_only_reroute_to_recorded_defaults() {
        // A sound arena with hostile index rows: every query must
        // complete panic-free, and each forest's answer is either its
        // true scan verdict or the garbage row's recorded default —
        // nothing else (no OOB, no unbounded work, no invented votes).
        let forests: Vec<RandomForest> = (0..3).map(|i| forest(170 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let sound = builder.finish();
        let mut rng = SmallRng::seed_from_u64(41);
        for _ in 0..40 {
            let garbage_rows: Vec<IndexRow> = (0..3)
                .map(|_| IndexRow {
                    tested: rng.gen::<u32>(),
                    default_accepts: rng.gen::<f32>() < 0.5,
                })
                .collect();
            let hostile = CompiledBank::from_raw_parts_indexed(
                sound.nodes.clone(),
                sound.roots.clone(),
                sound.forests.clone(),
                BankIndex::from_rows(2, garbage_rows.clone()),
            );
            assert!(hostile.is_indexed());
            for _ in 0..20 {
                let sample: Vec<f32> = (0..2)
                    .map(|_| {
                        if rng.gen::<f32>() < 0.5 {
                            0.0
                        } else {
                            rng.gen::<f32>() * 1.5
                        }
                    })
                    .collect();
                let mut verdicts = [false; 3];
                hostile.for_each_accepting_indexed(&sample, |i| verdicts[i] = true);
                let mut sharded = Vec::new();
                let mut scratch = ShardScratch::new();
                hostile.for_each_accepting_pooled(
                    sentinel_pool::global(),
                    &sample,
                    3,
                    &mut scratch,
                    |i| sharded.push(i),
                );
                for (i, row) in garbage_rows.iter().enumerate() {
                    let truth = sound.accepts(i, &sample);
                    assert!(
                        verdicts[i] == truth || verdicts[i] == row.default_accepts,
                        "forest {i} invented a verdict on {sample:?}"
                    );
                    assert_eq!(
                        sharded.contains(&i),
                        verdicts[i],
                        "sharded and serial hostile scans diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn unusable_index_shapes_degrade_to_the_full_scan() {
        let forests: Vec<RandomForest> = (0..3).map(|i| forest(180 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let sound = builder.finish();
        let junk_row = IndexRow {
            tested: 0,
            default_accepts: true,
        };
        // Row-count mismatches and out-of-range stripe counts must be
        // ignored entirely — exact full-scan behavior, junk defaults
        // never consulted.
        let shapes = [
            BankIndex::from_rows(2, vec![junk_row; 1]),
            BankIndex::from_rows(2, vec![junk_row; 7]),
            BankIndex::from_rows(0, vec![junk_row; 3]),
            BankIndex::from_rows(MAX_STRIPES + 9, vec![junk_row; 3]),
        ];
        let mut rng = SmallRng::seed_from_u64(43);
        for index in shapes {
            let hostile = CompiledBank::from_raw_parts_indexed(
                sound.nodes.clone(),
                sound.roots.clone(),
                sound.forests.clone(),
                index,
            );
            assert!(!hostile.is_indexed());
            for _ in 0..20 {
                let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
                let mut got = Vec::new();
                hostile.for_each_accepting_indexed(&sample, |i| got.push(i));
                let mut want = Vec::new();
                sound.for_each_accepting_full(&sample, |i| want.push(i));
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn corrupt_arenas_with_corrupt_indexes_stay_panic_free() {
        // Garbage everywhere at once: cyclic nodes, wild spans, wild
        // index rows. Evaluation must terminate under the step budget
        // with only scan-or-default verdicts, through every entry
        // point including the sharded one.
        let cyclic = PackedNode {
            feature: 9,
            threshold: 0.5,
            left: 0,
            right: 0,
        };
        let spans = vec![
            ForestSpan {
                roots_start: 0,
                n_trees: 1,
                accept_votes: 1,
                n_features: 2,
            },
            ForestSpan {
                roots_start: u32::MAX,
                n_trees: u32::MAX,
                accept_votes: 1,
                n_features: 2,
            },
            ForestSpan {
                roots_start: 0,
                n_trees: 1,
                accept_votes: 0,
                n_features: 2,
            },
        ];
        let rows = vec![
            IndexRow {
                tested: 0,
                default_accepts: true,
            },
            IndexRow {
                tested: u32::MAX,
                default_accepts: true,
            },
            IndexRow {
                tested: 0b10,
                default_accepts: false,
            },
        ];
        let bank = CompiledBank::from_raw_parts_indexed(
            vec![cyclic],
            vec![0],
            spans,
            BankIndex::from_rows(2, rows.clone()),
        );
        assert!(bank.is_indexed());
        let mut scratch = ShardScratch::new();
        for sample in [[0.5f32, 0.5], [0.0, 0.0], [f32::NAN, 1.0]] {
            let mut serial = Vec::new();
            bank.for_each_accepting_indexed(&sample, |i| serial.push(i));
            let mut sharded = Vec::new();
            bank.for_each_accepting_pooled(
                sentinel_pool::global(),
                &sample,
                3,
                &mut scratch,
                |i| sharded.push(i),
            );
            assert_eq!(serial, sharded);
            for (i, row) in rows.iter().enumerate() {
                let scan = bank.accepts(i, &sample);
                let got = serial.contains(&i);
                assert!(
                    got == scan || got == row.default_accepts,
                    "corrupt forest {i} invented a verdict on {sample:?}"
                );
            }
        }
    }

    #[test]
    fn arena_accounting() {
        let f = forest(2, 3);
        let mut builder = CompiledBankBuilder::new();
        builder.push(&f, 0.5).unwrap();
        let bank = builder.finish();
        assert_eq!(bank.forest_count(), 1);
        assert!(!bank.is_empty());
        let branch_nodes: usize = f
            .trees()
            .iter()
            .map(|t| t.node_count() - t.leaf_count())
            .sum();
        assert_eq!(bank.node_count(), branch_nodes);
        assert!(bank.arena_bytes() >= branch_nodes * std::mem::size_of::<PackedNode>());
        assert_eq!(bank.spans().len(), 1);
        assert!(CompiledBank::default().is_empty());
    }
}
