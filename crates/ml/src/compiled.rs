//! Compiled classifier banks: flat-arena forest evaluation with
//! early-exit voting.
//!
//! The interpreter in [`crate::forest`] walks one [`RandomForest`] at a
//! time through enum nodes whose leaves own `Vec<u32>` histograms —
//! flexible for training and inspection, but the identification hot
//! path evaluates *dozens to thousands* of binary forests per query,
//! and pays enum dispatch, pointer chasing and a per-forest vote `Vec`
//! for it. This module compiles an entire bank of binary forests into
//! one contiguous arena:
//!
//! * **Packed branch nodes** ([`PackedNode`]): `feature: u16`,
//!   `threshold: f32`, child references `u32` — 16 bytes, cache-dense,
//!   no discriminant to match on.
//! * **Implicit leaves**: every classifier in the bank is binary, so a
//!   leaf carries exactly one bit of information (does this tree vote
//!   for the positive class?). Leaves are folded into tagged child
//!   references ([`LEAF_BIT`] plus the vote in bit 0) and vanish from
//!   the arena entirely — no `Vec<u32>` histograms, no leaf nodes.
//! * **Early-exit voting**: a forest accepts once `accept_votes` trees
//!   voted positive and rejects as soon as the remaining trees cannot
//!   reach that count; either way the remaining trees are never
//!   walked. `accept_votes` is derived from the caller's fractional
//!   threshold by scanning the (tiny) vote domain, so the decision is
//!   **bit-identical** to comparing the interpreter's
//!   `positive_vote_fraction` against the same threshold.
//! * **Allocation-free, panic-free evaluation**: [`CompiledBank::accepts`]
//!   and [`CompiledBank::for_each_accepting`] touch no heap and use
//!   checked arena accesses with a step budget, so even a corrupt
//!   arena (out-of-range references, reference cycles) degrades to a
//!   negative vote instead of a panic or an endless loop.
//!
//! Banks are built through [`CompiledBankBuilder`], which validates
//! every forest (binary, features within `u16`, arena small enough for
//! tagged references) — arenas produced by the builder are structurally
//! sound by construction. [`CompiledBank::from_raw_parts`] exists for
//! robustness tests and external tooling that wants to feed the
//! evaluator hostile arenas.

use crate::error::MlError;
use crate::forest::RandomForest;
use crate::tree::Node;

/// Tag bit marking a child reference as a leaf; bit 0 then carries the
/// tree's positive-class vote. References without the tag are indices
/// into the bank's node arena.
pub const LEAF_BIT: u32 = 1 << 31;

/// One branch node of the compiled arena: 16 bytes, no enum
/// discriminant. `left`/`right` are tagged references (see
/// [`LEAF_BIT`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackedNode {
    /// Feature index tested by this branch.
    pub feature: u16,
    /// Branch threshold: `sample[feature] <= threshold` goes left.
    pub threshold: f32,
    /// Tagged reference to the left child.
    pub left: u32,
    /// Tagged reference to the right child.
    pub right: u32,
}

/// Per-forest metadata: where its tree roots live in the root table
/// and how many positive votes it takes to accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestSpan {
    /// First entry of this forest in the bank's root table.
    pub roots_start: u32,
    /// Number of trees (= root-table entries).
    pub n_trees: u32,
    /// Positive votes required to accept; `n_trees + 1` means the
    /// forest can never accept (a threshold above 1.0).
    pub accept_votes: u32,
    /// Feature dimensionality; samples of any other length are
    /// rejected (mirroring the interpreter's dimension check).
    pub n_features: u32,
}

/// A bank of binary forests compiled into one flat arena.
///
/// Construction goes through [`CompiledBankBuilder`]; evaluation is
/// allocation-free and panic-free. Forests keep the order they were
/// pushed in, so candidate sets produced by
/// [`CompiledBank::for_each_accepting`] are ordered exactly like a
/// sequential scan over the source forests.
#[derive(Debug, Clone, Default)]
pub struct CompiledBank {
    nodes: Vec<PackedNode>,
    roots: Vec<u32>,
    forests: Vec<ForestSpan>,
}

impl CompiledBank {
    /// Assembles a bank from raw arena parts **without validation**.
    ///
    /// Evaluation tolerates arbitrary garbage here (out-of-range
    /// references, cycles, spans past the tables) by voting negative,
    /// so this is safe to call — it just may not *mean* anything.
    /// Intended for robustness tests and external arena tooling;
    /// everything else should use [`CompiledBankBuilder`].
    pub fn from_raw_parts(
        nodes: Vec<PackedNode>,
        roots: Vec<u32>,
        forests: Vec<ForestSpan>,
    ) -> Self {
        CompiledBank {
            nodes,
            roots,
            forests,
        }
    }

    /// Number of forests in the bank.
    pub fn forest_count(&self) -> usize {
        self.forests.len()
    }

    /// Whether the bank holds no forests.
    pub fn is_empty(&self) -> bool {
        self.forests.is_empty()
    }

    /// Total packed branch nodes across all forests.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate arena footprint in bytes (nodes + roots + spans).
    pub fn arena_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<PackedNode>()
            + self.roots.len() * std::mem::size_of::<u32>()
            + self.forests.len() * std::mem::size_of::<ForestSpan>()
    }

    /// The per-forest metadata, in push order.
    pub fn spans(&self) -> &[ForestSpan] {
        &self.forests
    }

    /// Does forest `index` accept `sample`?
    ///
    /// Early-exits once the accept count is reached or mathematically
    /// unreachable. Returns `false` for an out-of-range index, a
    /// wrong-length sample, or a corrupt arena — never panics.
    pub fn accepts(&self, index: usize, sample: &[f32]) -> bool {
        match self.forests.get(index) {
            Some(span) => self.span_accepts(span, sample),
            None => false,
        }
    }

    /// Calls `f(index)` for every forest accepting `sample`, in push
    /// order. Allocation-free.
    pub fn for_each_accepting(&self, sample: &[f32], mut f: impl FnMut(usize)) {
        for (index, span) in self.forests.iter().enumerate() {
            if self.span_accepts(span, sample) {
                f(index);
            }
        }
    }

    /// Full positive-vote count of forest `index` on `sample` (no
    /// early exit — evaluation and debugging aid). `None` for an
    /// out-of-range index or wrong-length sample.
    pub fn positive_votes(&self, index: usize, sample: &[f32]) -> Option<u32> {
        let span = self.forests.get(index)?;
        if sample.len() != span.n_features as usize {
            return None;
        }
        let roots = self.span_roots(span)?;
        Some(
            roots
                .iter()
                .map(|root| u32::from(self.walk(*root, sample)))
                .sum(),
        )
    }

    /// Tiles the bank `times` times: the result holds `times ×
    /// forest_count` forests, each copy with its own arena region (so
    /// the memory footprint scales like a genuinely larger bank —
    /// what the type-count scaling benchmarks need).
    pub fn repeat(&self, times: usize) -> CompiledBank {
        let mut out = CompiledBank {
            nodes: Vec::with_capacity(self.nodes.len() * times),
            roots: Vec::with_capacity(self.roots.len() * times),
            forests: Vec::with_capacity(self.forests.len() * times),
        };
        for copy in 0..times {
            let node_offset = (copy * self.nodes.len()) as u32;
            let root_offset = (copy * self.roots.len()) as u32;
            let shift = |reference: u32| {
                if reference & LEAF_BIT != 0 {
                    reference
                } else {
                    reference + node_offset
                }
            };
            out.nodes.extend(self.nodes.iter().map(|n| PackedNode {
                left: shift(n.left),
                right: shift(n.right),
                ..*n
            }));
            out.roots.extend(self.roots.iter().map(|r| shift(*r)));
            out.forests.extend(self.forests.iter().map(|s| ForestSpan {
                roots_start: s.roots_start + root_offset,
                ..*s
            }));
        }
        out
    }

    fn span_roots(&self, span: &ForestSpan) -> Option<&[u32]> {
        let start = span.roots_start as usize;
        let end = start.checked_add(span.n_trees as usize)?;
        self.roots.get(start..end)
    }

    fn span_accepts(&self, span: &ForestSpan, sample: &[f32]) -> bool {
        if sample.len() != span.n_features as usize {
            return false;
        }
        let needed = span.accept_votes;
        if needed == 0 {
            // A zero (or negative) threshold accepts with no votes —
            // exactly what fraction >= threshold yields.
            return true;
        }
        let Some(roots) = self.span_roots(span) else {
            return false;
        };
        if u64::from(needed) > roots.len() as u64 {
            return false;
        }
        let mut votes = 0u32;
        let mut remaining = roots.len() as u32;
        for root in roots {
            remaining -= 1;
            if self.walk(*root, sample) {
                votes += 1;
                if votes >= needed {
                    return true;
                }
            }
            if votes + remaining < needed {
                return false;
            }
        }
        false
    }

    /// Walks one tree from a tagged root reference to its leaf vote.
    /// The step budget bounds traversal on cyclic (corrupt) arenas;
    /// any out-of-range access votes negative.
    fn walk(&self, mut reference: u32, sample: &[f32]) -> bool {
        let mut steps = self.nodes.len() + 1;
        loop {
            if reference & LEAF_BIT != 0 {
                return reference & 1 == 1;
            }
            if steps == 0 {
                return false;
            }
            steps -= 1;
            let Some(node) = self.nodes.get(reference as usize) else {
                return false;
            };
            let value = match sample.get(node.feature as usize) {
                Some(v) => *v,
                None => return false,
            };
            reference = if value <= node.threshold {
                node.left
            } else {
                node.right
            };
        }
    }
}

/// Incrementally compiles binary forests into one [`CompiledBank`].
#[derive(Debug, Clone, Default)]
pub struct CompiledBankBuilder {
    bank: CompiledBank,
}

impl CompiledBankBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        CompiledBankBuilder::default()
    }

    /// Compiles `forest` into the arena with the given fractional
    /// accept threshold, returning the forest's bank index.
    ///
    /// The accept rule is bit-identical to
    /// `forest.positive_vote_fraction(sample)? >= accept_threshold`:
    /// the required vote count is the smallest `v` whose fraction
    /// `v / n_trees` (computed in `f32`, like the interpreter) clears
    /// the threshold.
    ///
    /// # Errors
    ///
    /// [`MlError::BadConfig`] if the forest is not binary, a feature
    /// index exceeds `u16`, or the arena would outgrow the tagged
    /// 31-bit reference space.
    pub fn push(&mut self, forest: &RandomForest, accept_threshold: f32) -> Result<usize, MlError> {
        if forest.n_classes() != 2 {
            return Err(MlError::BadConfig(format!(
                "compiled banks hold binary forests only (got {} classes)",
                forest.n_classes()
            )));
        }
        if forest.n_features() > usize::from(u16::MAX) + 1 {
            return Err(MlError::BadConfig(format!(
                "feature dimensionality {} exceeds the packed u16 index",
                forest.n_features()
            )));
        }
        let branch_nodes: usize = forest
            .trees()
            .iter()
            .map(|t| t.node_count() - t.leaf_count())
            .sum();
        if self.bank.nodes.len() + branch_nodes >= LEAF_BIT as usize {
            return Err(MlError::BadConfig(
                "compiled arena exceeds the 31-bit reference space".into(),
            ));
        }
        let roots_start = self.bank.roots.len() as u32;
        for tree in forest.trees() {
            let root = self.compile_tree(tree.nodes());
            self.bank.roots.push(root);
        }
        let n_trees = forest.n_trees() as u32;
        self.bank.forests.push(ForestSpan {
            roots_start,
            n_trees,
            accept_votes: votes_needed(accept_threshold, forest.n_trees()),
            n_features: forest.n_features() as u32,
        });
        Ok(self.bank.forests.len() - 1)
    }

    /// Finishes the bank.
    pub fn finish(self) -> CompiledBank {
        self.bank
    }

    /// Compiles one tree's node list, returning the tagged root
    /// reference. Tree invariants (children strictly forward, binary
    /// leaf histograms) are guaranteed by `DecisionTree`'s own
    /// validation.
    fn compile_tree(&mut self, tree_nodes: &[Node]) -> u32 {
        // First pass: assign every tree node its arena reference —
        // splits get the next arena slots in order, leaves fold into
        // tagged references.
        let base = self.bank.nodes.len() as u32;
        let mut references = Vec::with_capacity(tree_nodes.len());
        let mut splits = 0u32;
        for node in tree_nodes {
            references.push(match node {
                Node::Leaf { counts } => {
                    // Binary argmax with the interpreter's tie rule
                    // (`max_by_key` keeps the *last* maximum, so a tie
                    // votes positive).
                    let negative = counts.first().copied().unwrap_or(0);
                    let positive = counts.get(1).copied().unwrap_or(0) >= negative;
                    LEAF_BIT | u32::from(positive)
                }
                Node::Split { .. } => {
                    splits += 1;
                    base + splits - 1
                }
            });
        }
        // Second pass: emit packed nodes with resolved child refs.
        for node in tree_nodes {
            if let Node::Split {
                feature,
                threshold,
                left,
                right,
            } = node
            {
                self.bank.nodes.push(PackedNode {
                    feature: *feature as u16,
                    threshold: *threshold,
                    left: references[*left],
                    right: references[*right],
                });
            }
        }
        references[0]
    }
}

/// The smallest vote count whose `f32` fraction of `n_trees` clears
/// `threshold`, or `n_trees + 1` when no count does (threshold above
/// 1.0, or NaN — which the interpreter likewise never accepts).
fn votes_needed(threshold: f32, n_trees: usize) -> u32 {
    let total = n_trees as f32;
    (0..=n_trees)
        .find(|v| *v as f32 / total >= threshold)
        .map(|v| v as u32)
        .unwrap_or(n_trees as u32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn training_data(seed: u64, n: usize, d: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f32> = (0..d).map(|_| rng.gen::<f32>()).collect();
            let label = usize::from(row[0] + row[d - 1] > 1.0);
            samples.push(row);
            labels.push(label);
        }
        (samples, labels)
    }

    fn forest(seed: u64, d: usize) -> RandomForest {
        let (samples, labels) = training_data(seed, 120, d);
        RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), seed).unwrap()
    }

    #[test]
    fn bank_matches_interpreter_on_every_threshold() {
        let forests: Vec<RandomForest> = (0..4).map(|i| forest(40 + i, 3)).collect();
        for threshold in [0.0f32, 0.2, 0.35, 0.5, 0.9, 1.0, 1.5, -0.5] {
            let mut builder = CompiledBankBuilder::new();
            for f in &forests {
                builder.push(f, threshold).unwrap();
            }
            let bank = builder.finish();
            let mut rng = SmallRng::seed_from_u64(7);
            for _ in 0..200 {
                let sample: Vec<f32> = (0..3).map(|_| rng.gen::<f32>() * 1.5).collect();
                for (i, f) in forests.iter().enumerate() {
                    let interpreted = f.positive_vote_fraction(&sample).unwrap() >= threshold;
                    assert_eq!(
                        bank.accepts(i, &sample),
                        interpreted,
                        "forest {i} at threshold {threshold} on {sample:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn for_each_accepting_preserves_push_order() {
        let forests: Vec<RandomForest> = (0..5).map(|i| forest(60 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::new();
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let bank = builder.finish();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut compiled = Vec::new();
            bank.for_each_accepting(&sample, |i| compiled.push(i));
            let sequential: Vec<usize> = forests
                .iter()
                .enumerate()
                .filter(|(_, f)| f.positive_vote_fraction(&sample).unwrap() >= 0.5)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(compiled, sequential);
        }
    }

    #[test]
    fn votes_needed_maps_thresholds_exactly() {
        assert_eq!(votes_needed(0.0, 33), 0);
        assert_eq!(votes_needed(-1.0, 33), 0);
        assert_eq!(votes_needed(0.5, 33), 17);
        assert_eq!(votes_needed(0.35, 33), 12);
        assert_eq!(votes_needed(1.0, 33), 33);
        assert_eq!(votes_needed(1.01, 33), 34);
        assert_eq!(votes_needed(f32::NAN, 33), 34);
        // Exactness at representable fractions: 16/32 == 0.5.
        assert_eq!(votes_needed(0.5, 32), 16);
    }

    #[test]
    fn single_leaf_trees_compile() {
        // max_depth 0 forests are all leaves — no packed nodes at all.
        let (samples, labels) = training_data(5, 40, 2);
        let config = ForestConfig {
            tree: crate::tree::TreeConfig {
                max_depth: 0,
                ..crate::tree::TreeConfig::default()
            },
            ..ForestConfig::default()
        };
        let f = RandomForest::fit(&samples, &labels, 2, &config, 5).unwrap();
        let mut builder = CompiledBankBuilder::new();
        builder.push(&f, 0.5).unwrap();
        let bank = builder.finish();
        assert_eq!(bank.node_count(), 0);
        let sample = [0.3f32, 0.9];
        assert_eq!(
            bank.accepts(0, &sample),
            f.positive_vote_fraction(&sample).unwrap() >= 0.5
        );
    }

    #[test]
    fn wrong_dimension_and_bad_index_vote_negative() {
        let f = forest(9, 3);
        let mut builder = CompiledBankBuilder::new();
        builder.push(&f, 0.0).unwrap();
        let bank = builder.finish();
        // Threshold 0 accepts everything of the right shape...
        assert!(bank.accepts(0, &[0.1, 0.2, 0.3]));
        // ...but never a wrong-length sample or unknown forest.
        assert!(!bank.accepts(0, &[0.1, 0.2]));
        assert!(!bank.accepts(1, &[0.1, 0.2, 0.3]));
        assert_eq!(bank.positive_votes(0, &[0.1, 0.2]), None);
        assert_eq!(bank.positive_votes(1, &[0.1, 0.2, 0.3]), None);
    }

    #[test]
    fn rejects_non_binary_forests() {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for i in 0..20 {
                samples.push(vec![c as f32 * 5.0 + (i % 3) as f32 * 0.1]);
                labels.push(c);
            }
        }
        let f = RandomForest::fit(&samples, &labels, 3, &ForestConfig::default(), 1).unwrap();
        let err = CompiledBankBuilder::new().push(&f, 0.5).unwrap_err();
        assert!(matches!(err, MlError::BadConfig(_)));
    }

    #[test]
    fn corrupt_arenas_never_panic() {
        let sample = [0.5f32, 0.5];
        let span = ForestSpan {
            roots_start: 0,
            n_trees: 1,
            accept_votes: 1,
            n_features: 2,
        };
        // Root reference past the arena.
        let bank = CompiledBank::from_raw_parts(vec![], vec![42], vec![span]);
        assert!(!bank.accepts(0, &sample));
        // Node whose children form a cycle.
        let cyclic = PackedNode {
            feature: 0,
            threshold: 0.5,
            left: 0,
            right: 0,
        };
        let bank = CompiledBank::from_raw_parts(vec![cyclic], vec![0], vec![span]);
        assert!(!bank.accepts(0, &sample));
        assert_eq!(bank.positive_votes(0, &sample), Some(0));
        // Feature index past the sample (span lies about dimensions).
        let oob_feature = PackedNode {
            feature: 7,
            threshold: 0.5,
            left: LEAF_BIT | 1,
            right: LEAF_BIT | 1,
        };
        let bank = CompiledBank::from_raw_parts(vec![oob_feature], vec![0], vec![span]);
        assert!(!bank.accepts(0, &sample));
        // Span whose root range overflows the root table.
        let wild = ForestSpan {
            roots_start: u32::MAX,
            n_trees: u32::MAX,
            accept_votes: 1,
            n_features: 2,
        };
        let bank = CompiledBank::from_raw_parts(vec![], vec![], vec![wild]);
        assert!(!bank.accepts(0, &sample));
        // accept_votes beyond the tree count can never accept.
        let greedy = ForestSpan {
            accept_votes: 5,
            ..span
        };
        let bank = CompiledBank::from_raw_parts(vec![], vec![LEAF_BIT | 1], vec![greedy]);
        assert!(!bank.accepts(0, &sample));
    }

    #[test]
    fn repeat_tiles_forests_and_arena() {
        let forests: Vec<RandomForest> = (0..3).map(|i| forest(80 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::new();
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let bank = builder.finish();
        let tiled = bank.repeat(4);
        assert_eq!(tiled.forest_count(), 12);
        assert_eq!(tiled.node_count(), 4 * bank.node_count());
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            for copy in 0..4 {
                for i in 0..3 {
                    assert_eq!(
                        tiled.accepts(copy * 3 + i, &sample),
                        bank.accepts(i, &sample),
                        "copy {copy} forest {i}"
                    );
                }
            }
        }
        assert_eq!(bank.repeat(0).forest_count(), 0);
    }

    #[test]
    fn arena_accounting() {
        let f = forest(2, 3);
        let mut builder = CompiledBankBuilder::new();
        builder.push(&f, 0.5).unwrap();
        let bank = builder.finish();
        assert_eq!(bank.forest_count(), 1);
        assert!(!bank.is_empty());
        let branch_nodes: usize = f
            .trees()
            .iter()
            .map(|t| t.node_count() - t.leaf_count())
            .sum();
        assert_eq!(bank.node_count(), branch_nodes);
        assert!(bank.arena_bytes() >= branch_nodes * std::mem::size_of::<PackedNode>());
        assert_eq!(bank.spans().len(), 1);
        assert!(CompiledBank::default().is_empty());
    }
}
