//! Compiled classifier banks: flat-arena forest evaluation with
//! early-exit voting.
//!
//! The interpreter in [`crate::forest`] walks one [`RandomForest`] at a
//! time through enum nodes whose leaves own `Vec<u32>` histograms —
//! flexible for training and inspection, but the identification hot
//! path evaluates *dozens to thousands* of binary forests per query,
//! and pays enum dispatch, pointer chasing and a per-forest vote `Vec`
//! for it. This module compiles an entire bank of binary forests into
//! one contiguous arena:
//!
//! * **Packed branch nodes** ([`PackedNode`]): `feature: u16`,
//!   `threshold: f32`, child references `u32` — 16 bytes, cache-dense,
//!   no discriminant to match on.
//! * **Implicit leaves**: every classifier in the bank is binary, so a
//!   leaf carries exactly one bit of information (does this tree vote
//!   for the positive class?). Leaves are folded into tagged child
//!   references ([`LEAF_BIT`] plus the vote in bit 0) and vanish from
//!   the arena entirely — no `Vec<u32>` histograms, no leaf nodes.
//! * **Early-exit voting**: a forest accepts once `accept_votes` trees
//!   voted positive and rejects as soon as the remaining trees cannot
//!   reach that count; either way the remaining trees are never
//!   walked. `accept_votes` is derived from the caller's fractional
//!   threshold by scanning the (tiny) vote domain, so the decision is
//!   **bit-identical** to comparing the interpreter's
//!   `positive_vote_fraction` against the same threshold.
//! * **Allocation-free, panic-free evaluation**: [`CompiledBank::accepts`]
//!   and [`CompiledBank::for_each_accepting`] touch no heap and use
//!   checked arena accesses with a step budget, so even a corrupt
//!   arena (out-of-range references, reference cycles) degrades to a
//!   negative vote instead of a panic or an endless loop.
//!
//! Banks are built through [`CompiledBankBuilder`], which validates
//! every forest (binary, features within `u16`, arena small enough for
//! tagged references) — arenas produced by the builder are structurally
//! sound by construction. [`CompiledBank::from_raw_parts`] exists for
//! robustness tests and external tooling that wants to feed the
//! evaluator hostile arenas.
//!
//! On top of the arena sit two scan accelerators (both bit-identical
//! to the sequential full scan on builder-made banks):
//!
//! * a **feature-usage prefilter** ([`crate::index::BankIndex`]): each
//!   forest records which feature stripes its branch nodes test plus
//!   its precomputed verdict on the all-default sample; a query whose
//!   nonzero stripes miss a forest's tested set is answered from the
//!   cached verdict without walking a tree.
//! * a **thread-sharded scan** ([`CompiledBank::for_each_accepting_sharded`]):
//!   disjoint [`ForestSpan`] ranges are submitted as tasks to a
//!   persistent [`sentinel_pool::ComputePool`] (no per-call thread
//!   spawns), scanned into per-shard lanes and merged in shard order,
//!   so candidate order is exactly the sequential push order. Banks
//!   below [`SHARDED_MIN_FORESTS`] route inline instead — small scans
//!   are cheaper than any hand-off.

use crate::error::MlError;
use crate::forest::RandomForest;
use crate::index::{BankIndex, ClusterIndex, IndexRow, MAX_STRIPES};
use crate::quant::{
    QuantBank, QuantNode, ThresholdCodebook, QUANT_FEATURE_MASK, QUANT_LEFT_LEAF, QUANT_LEFT_VOTE,
};
use crate::tree::Node;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard};

/// Tag bit marking a child reference as a leaf; bit 0 then carries the
/// tree's positive-class vote. References without the tag are indices
/// into the bank's node arena.
pub const LEAF_BIT: u32 = 1 << 31;

/// Bank size from which [`CompiledBank::for_each_accepting`] consults
/// the feature-usage prefilter. Computing the query bitmap is a fixed
/// ~O(sample) cost; below this many forests it is a measurable
/// fraction of the whole scan (≈8% at 27 types) while above it it
/// disappears (<2% at 64, ~0 at thousands). The sharded scan always
/// consults the index — sharding only makes sense on banks far past
/// this threshold.
pub const PREFILTER_MIN_FORESTS: usize = 64;

/// Bank size from which [`CompiledBank::for_each_accepting_sharded`]
/// fans span-range tasks out to the compute pool. Below it the whole
/// scan finishes in the time pool hand-off alone costs (ticket pushes,
/// wakeups, lane merging), so small banks run inline on the caller —
/// the same shape as [`PREFILTER_MIN_FORESTS`] gating the prefilter.
/// Use [`CompiledBank::for_each_accepting_pooled`] to force pool
/// execution at any size (parity tests, benchmarks).
pub const SHARDED_MIN_FORESTS: usize = 1024;

/// Bank size from which [`CompiledBank::for_each_accepting`] prefers
/// the clustered scan (when the bank's [`ClusterIndex`] is usable and
/// actually collapses forests — at least 2 members per group on
/// average). Below it the per-forest group lookup cannot beat the
/// plain prefiltered scan; use
/// [`CompiledBank::for_each_accepting_clustered`] to force clustering
/// at any size (parity tests, benchmarks).
pub const CLUSTER_MIN_FORESTS: usize = 256;

/// One branch node of the compiled arena: 16 bytes, no enum
/// discriminant. `left`/`right` are tagged references (see
/// [`LEAF_BIT`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackedNode {
    /// Feature index tested by this branch.
    pub feature: u16,
    /// Branch threshold: `sample[feature] <= threshold` goes left.
    pub threshold: f32,
    /// Tagged reference to the left child.
    pub left: u32,
    /// Tagged reference to the right child.
    pub right: u32,
}

/// Per-forest metadata: where its tree roots live in the root table
/// and how many positive votes it takes to accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestSpan {
    /// First entry of this forest in the bank's root table.
    pub roots_start: u32,
    /// Number of trees (= root-table entries).
    pub n_trees: u32,
    /// Positive votes required to accept; `n_trees + 1` means the
    /// forest can never accept (a threshold above 1.0).
    pub accept_votes: u32,
    /// Feature dimensionality; samples of any other length are
    /// rejected (mirroring the interpreter's dimension check).
    pub n_features: u32,
}

/// Cumulative scan-traffic counters a bank records as queries pass
/// through it: relaxed atomics bumped a constant number of times per
/// query (never per forest), so the counting cost is a few uncontended
/// cache-line RMWs — invisible next to the arena scan itself — and the
/// scan paths stay allocation-free and `&self`.
///
/// Read via [`CompiledBank::scan_counters`]; surfaced to operators
/// through the serve layer's Stats frame. Cloning a bank copies the
/// counter values at that instant (a clone is a faithful snapshot of
/// the bank, counters included).
#[derive(Debug, Default)]
pub struct ScanCounters {
    queries: AtomicU64,
    prefiltered: AtomicU64,
    forests_skipped: AtomicU64,
}

impl Clone for ScanCounters {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        ScanCounters {
            queries: AtomicU64::new(snap.queries),
            prefiltered: AtomicU64::new(snap.prefiltered),
            forests_skipped: AtomicU64::new(snap.forests_skipped),
        }
    }
}

impl ScanCounters {
    /// The counters' current values.
    pub fn snapshot(&self) -> ScanSnapshot {
        ScanSnapshot {
            queries: self.queries.load(Relaxed),
            prefiltered: self.prefiltered.load(Relaxed),
            forests_skipped: self.forests_skipped.load(Relaxed),
        }
    }
}

/// A point-in-time copy of a bank's [`ScanCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanSnapshot {
    /// Bank scans answered (one per fingerprint classified).
    pub queries: u64,
    /// Scans that consulted the feature-bitmap prefilter.
    pub prefiltered: u64,
    /// Forest evaluations answered from the prefilter's cached
    /// all-default verdict without walking the arena.
    pub forests_skipped: u64,
}

/// Per-forest accept tallies: one relaxed `AtomicU32` per forest,
/// bumped each time a scan emits that forest as a candidate. This is
/// the signal [`CompiledBank::rebuilt_hot_first`] sorts node regions
/// by — forests that accept often end up first in the arena, so the
/// hot front of a scan's memory traffic is one dense prefix instead
/// of scattered regions. Cloning a bank snapshots the tallies.
#[derive(Debug, Default)]
struct HeatCounters(Vec<AtomicU32>);

impl Clone for HeatCounters {
    fn clone(&self) -> Self {
        HeatCounters(
            self.0
                .iter()
                .map(|h| AtomicU32::new(h.load(Relaxed)))
                .collect(),
        )
    }
}

impl HeatCounters {
    fn zeros(n: usize) -> Self {
        HeatCounters((0..n).map(|_| AtomicU32::new(0)).collect())
    }

    #[inline]
    fn bump(&self, index: usize) {
        if let Some(h) = self.0.get(index) {
            h.fetch_add(1, Relaxed);
        }
    }

    /// Adds one zeroed tally (the builder grows this alongside the
    /// span table).
    fn grow(&mut self) {
        self.0.push(AtomicU32::new(0));
    }

    fn snapshot(&self) -> Vec<u32> {
        self.0.iter().map(|h| h.load(Relaxed)).collect()
    }
}

/// A bank of binary forests compiled into one flat arena.
///
/// Construction goes through [`CompiledBankBuilder`]; evaluation is
/// allocation-free and panic-free. Forests keep the order they were
/// pushed in, so candidate sets produced by
/// [`CompiledBank::for_each_accepting`] are ordered exactly like a
/// sequential scan over the source forests — every accelerated layout
/// below (quantized arena, hot-first relocation, cluster index) is a
/// *physical* rearrangement that leaves this logical order, and every
/// verdict, bit-identical.
#[derive(Debug, Clone, Default)]
pub struct CompiledBank {
    nodes: Vec<PackedNode>,
    roots: Vec<u32>,
    forests: Vec<ForestSpan>,
    index: BankIndex,
    counters: ScanCounters,
    /// Per-forest `(start, end)` bounds of the forest's region in
    /// `nodes`. Builder-made banks always carry one entry per forest;
    /// raw-parts banks carry none (and consequently cannot be
    /// hot-first relocated or clustered).
    regions: Vec<(u32, u32)>,
    /// The quantized 8-byte side arena (empty = fully escalated).
    quant: QuantBank,
    /// Duplicate-content cluster groups (empty = no clustering).
    clusters: ClusterIndex,
    /// Per-forest accept tallies feeding the hot-first layout.
    heat: HeatCounters,
}

impl CompiledBank {
    /// Assembles a bank from raw arena parts **without validation**.
    ///
    /// Evaluation tolerates arbitrary garbage here (out-of-range
    /// references, cycles, spans past the tables) by voting negative,
    /// so this is safe to call — it just may not *mean* anything.
    /// Intended for robustness tests and external arena tooling;
    /// everything else should use [`CompiledBankBuilder`]. Raw banks
    /// carry no feature-usage index: every query is a full scan.
    pub fn from_raw_parts(
        nodes: Vec<PackedNode>,
        roots: Vec<u32>,
        forests: Vec<ForestSpan>,
    ) -> Self {
        CompiledBank {
            nodes,
            roots,
            forests,
            index: BankIndex::disabled(),
            ..CompiledBank::default()
        }
    }

    /// [`CompiledBank::from_raw_parts`] with an externally supplied
    /// feature-usage index, garbage welcome.
    ///
    /// The index is advisory: it is consulted only when
    /// [`BankIndex::is_usable`] holds for the forest count (otherwise
    /// every query falls back to the full scan), and a hostile row can
    /// only ever reroute its forest to the row's recorded default
    /// verdict — never cause a panic, an out-of-bounds access or
    /// unbounded work. Robustness-test entry point.
    pub fn from_raw_parts_indexed(
        nodes: Vec<PackedNode>,
        roots: Vec<u32>,
        forests: Vec<ForestSpan>,
        index: BankIndex,
    ) -> Self {
        CompiledBank {
            nodes,
            roots,
            forests,
            index,
            ..CompiledBank::default()
        }
    }

    /// The bank's feature-usage index. Usable (consulted by queries)
    /// only when [`BankIndex::is_usable`] holds for
    /// [`CompiledBank::forest_count`]; builder-made banks always
    /// satisfy that.
    pub fn index(&self) -> &BankIndex {
        &self.index
    }

    /// Whether queries on this bank actually use the prefilter.
    pub fn is_indexed(&self) -> bool {
        self.index.is_usable(self.forests.len())
    }

    /// Number of forests in the bank.
    pub fn forest_count(&self) -> usize {
        self.forests.len()
    }

    /// Whether the bank holds no forests.
    pub fn is_empty(&self) -> bool {
        self.forests.is_empty()
    }

    /// Total packed branch nodes across all forests.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The packed f32 branch-node arena, in region order. Exposed so
    /// parity harnesses can harvest real split thresholds and probe
    /// the bucket edges of the quantized representation.
    pub fn nodes(&self) -> &[PackedNode] {
        &self.nodes
    }

    /// Approximate arena footprint in bytes (nodes + roots + spans +
    /// index rows + the quantized side arena + cluster group ids).
    pub fn arena_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<PackedNode>()
            + self.roots.len() * std::mem::size_of::<u32>()
            + self.forests.len() * std::mem::size_of::<ForestSpan>()
            + std::mem::size_of_val(self.index.rows())
            + self.quant.arena_bytes()
            + std::mem::size_of_val(self.clusters.group_of())
    }

    /// The per-forest metadata, in push order.
    pub fn spans(&self) -> &[ForestSpan] {
        &self.forests
    }

    /// The quantized side arena (8-byte nodes + threshold codebook).
    pub fn quant(&self) -> &QuantBank {
        &self.quant
    }

    /// Forests whose quantization was proven decision-identical at
    /// build time (the rest escalate to the retained f32 arena).
    pub fn quantized_forest_count(&self) -> usize {
        self.quant.quantized_forests()
    }

    /// The duplicate-content cluster index.
    pub fn clusters(&self) -> &ClusterIndex {
        &self.clusters
    }

    /// Per-forest accept tallies since the bank was built (or last
    /// tiled/relocated) — the hot-first layout signal.
    pub fn heat(&self) -> Vec<u32> {
        self.heat.snapshot()
    }

    /// Cumulative scan-traffic counters: how many queries this bank
    /// has answered, how many consulted the prefilter, and how many
    /// arena walks the prefilter skipped. Lock-free to read; the scan
    /// paths bump them with a constant number of relaxed atomics per
    /// query.
    pub fn scan_counters(&self) -> ScanSnapshot {
        self.counters.snapshot()
    }

    /// Does forest `index` accept `sample`?
    ///
    /// Early-exits once the accept count is reached or mathematically
    /// unreachable. Returns `false` for an out-of-range index, a
    /// wrong-length sample, or a corrupt arena — never panics.
    /// Forests proven quantization-identical at build time evaluate
    /// through the 8-byte arena; everything else walks the f32 arena
    /// (same verdict either way — that identity is the build-time
    /// proof, re-checked by the parity suites).
    pub fn accepts(&self, index: usize, sample: &[f32]) -> bool {
        match self.forests.get(index) {
            Some(span) => self.forest_accepts(index, span, sample),
            None => false,
        }
    }

    /// Routed single-forest evaluation: the quantized arena when the
    /// forest's quantization was proven decision-identical, the f32
    /// arena otherwise (escalated forests, raw-parts banks).
    #[inline]
    fn forest_accepts(&self, index: usize, span: &ForestSpan, sample: &[f32]) -> bool {
        if self.quant_ok(index) {
            self.span_accepts_quant(span, sample)
        } else {
            self.span_accepts(span, sample)
        }
    }

    /// Whether forest `index` may evaluate through the quantized
    /// arena. Only the builder (and the tiling/relocation paths, which
    /// preserve its invariants) ever sets these flags; banks without a
    /// quantized side have no flags and escalate everything.
    #[inline]
    fn quant_ok(&self, index: usize) -> bool {
        self.quant.ok.get(index).copied().unwrap_or(false)
    }

    /// Calls `f(index)` for every forest accepting `sample`, in push
    /// order. Allocation-free on warm calls.
    ///
    /// Routing, coarsest first — every tier is bit-identical to the
    /// sequential full scan:
    ///
    /// 1. From [`CLUSTER_MIN_FORESTS`] forests up, with a usable
    ///    [`ClusterIndex`] that actually collapses forests (≥2 members
    ///    per group on average), the **clustered** scan walks one
    ///    representative per duplicate-content group and broadcasts
    ///    its verdict to the members.
    /// 2. From [`PREFILTER_MIN_FORESTS`] forests up (with a usable
    ///    feature-usage index), the query's nonzero-stripe bitmap is
    ///    computed once and every forest whose tested-stripe set does
    ///    not intersect it is answered from its cached all-default
    ///    verdict without walking the arena — bit-identical because
    ///    all tested dimensions read the default `0.0`.
    /// 3. Below that, the plain full scan — the bitmap's fixed cost
    ///    cannot pay for itself against a scan this short.
    ///
    /// Use [`CompiledBank::for_each_accepting_indexed`] /
    /// [`CompiledBank::for_each_accepting_clustered`] to force a tier
    /// at any size (parity tests, benchmarks).
    pub fn for_each_accepting(&self, sample: &[f32], f: impl FnMut(usize)) {
        if self.cluster_auto() {
            self.for_each_accepting_clustered(sample, f);
        } else if self.forests.len() >= PREFILTER_MIN_FORESTS {
            self.for_each_accepting_indexed(sample, f);
        } else {
            self.for_each_accepting_full(sample, f);
        }
    }

    /// Whether the auto-routed scan takes the clustered tier.
    #[inline]
    fn cluster_auto(&self) -> bool {
        let n = self.forests.len();
        n >= CLUSTER_MIN_FORESTS
            && self.clusters.is_usable(n)
            && self.clusters.group_count() * 2 <= n
    }

    /// [`CompiledBank::for_each_accepting`] with the prefilter forced
    /// on regardless of bank size (it still requires a usable index —
    /// raw-parts banks without one scan fully). The surface the parity
    /// suites and A/B benches drive, so prefilter semantics are
    /// exercised on banks of every size, not only past the hot path's
    /// size threshold.
    pub fn for_each_accepting_indexed(&self, sample: &[f32], mut f: impl FnMut(usize)) {
        match self.usable_bitmap(sample) {
            Some(bitmap) => {
                self.counters.queries.fetch_add(1, Relaxed);
                self.counters.prefiltered.fetch_add(1, Relaxed);
                let mut skipped = 0u64;
                for (index, span) in self.forests.iter().enumerate() {
                    if self.prefiltered_verdict(index, span, sample, bitmap, &mut skipped) {
                        self.heat.bump(index);
                        f(index);
                    }
                }
                if skipped > 0 {
                    self.counters.forests_skipped.fetch_add(skipped, Relaxed);
                }
            }
            None => self.for_each_accepting_full(sample, f),
        }
    }

    /// The unindexed, unquantized full scan: every forest is evaluated
    /// through the 16-byte f32 arena, no prefilter consulted. The
    /// reference everything else is compared against (parity suites,
    /// A/B benchmarks) and the fallback for banks without a usable
    /// index.
    pub fn for_each_accepting_full(&self, sample: &[f32], mut f: impl FnMut(usize)) {
        self.counters.queries.fetch_add(1, Relaxed);
        for (index, span) in self.forests.iter().enumerate() {
            if self.span_accepts(span, sample) {
                self.heat.bump(index);
                f(index);
            }
        }
    }

    /// The quantized full scan: every forest is evaluated through its
    /// routed arena (8-byte quantized where proven, f32 where
    /// escalated), no prefilter consulted. The A/B row isolating what
    /// halving the node bytes buys a dense probe.
    pub fn for_each_accepting_quant(&self, sample: &[f32], mut f: impl FnMut(usize)) {
        self.counters.queries.fetch_add(1, Relaxed);
        for (index, span) in self.forests.iter().enumerate() {
            if self.forest_accepts(index, span, sample) {
                self.heat.bump(index);
                f(index);
            }
        }
    }

    /// The coarse-to-fine clustered scan: evaluates one representative
    /// per duplicate-content group (through the prefilter and the
    /// routed arena), memoizes the verdict, and answers every member
    /// from the memo — bit-identical to the full scan because group
    /// members are bit-identical compiled forests (the builder
    /// exact-compares before grouping), so the representative's walk
    /// *is* the member's walk.
    ///
    /// Falls back to [`CompiledBank::for_each_accepting_indexed`] when
    /// the bank has no usable cluster index (raw-parts banks). The
    /// group memo is an epoch-stamped thread-local scratch: warm calls
    /// allocate nothing.
    pub fn for_each_accepting_clustered(&self, sample: &[f32], mut f: impl FnMut(usize)) {
        if !self.clusters.is_usable(self.forests.len()) {
            self.for_each_accepting_indexed(sample, f);
            return;
        }
        CLUSTER_MEMO.with(|memo| {
            let mut memo = memo.borrow_mut();
            self.counters.queries.fetch_add(1, Relaxed);
            let bitmap = self.usable_bitmap(sample);
            if bitmap.is_some() {
                self.counters.prefiltered.fetch_add(1, Relaxed);
            }
            let mut skipped = 0u64;
            memo.begin(self.clusters.group_count());
            for (index, span) in self.forests.iter().enumerate() {
                if self.clustered_verdict(&mut memo, index, span, sample, bitmap, &mut skipped) {
                    self.heat.bump(index);
                    f(index);
                }
            }
            if skipped > 0 {
                self.counters.forests_skipped.fetch_add(skipped, Relaxed);
            }
        });
    }

    /// One forest's verdict under the cluster memo: resolve its group,
    /// answer from the memoized representative verdict when one is
    /// cached, evaluate (and memoize) the representative otherwise.
    /// Any lookup that fails — out-of-range group id, representative
    /// past the span table — degrades to evaluating the member
    /// directly, which is always sound.
    #[inline]
    fn clustered_verdict(
        &self,
        memo: &mut ClusterMemo,
        index: usize,
        span: &ForestSpan,
        sample: &[f32],
        bitmap: Option<u32>,
        skipped: &mut u64,
    ) -> bool {
        let group = match self.clusters.group_of().get(index) {
            Some(g) => *g,
            None => return self.routed_verdict(index, span, sample, bitmap, skipped),
        };
        if let Some(verdict) = memo.get(group) {
            *skipped += 1;
            return verdict;
        }
        let verdict = match self.clusters.group(group) {
            Some(g) => {
                let rep = g.rep as usize;
                match self.forests.get(rep) {
                    Some(rep_span) => self.routed_verdict(rep, rep_span, sample, bitmap, skipped),
                    None => return self.routed_verdict(index, span, sample, bitmap, skipped),
                }
            }
            None => return self.routed_verdict(index, span, sample, bitmap, skipped),
        };
        memo.set(group, verdict);
        verdict
    }

    /// Prefiltered when a bitmap is available, plain routed evaluation
    /// otherwise.
    #[inline]
    fn routed_verdict(
        &self,
        index: usize,
        span: &ForestSpan,
        sample: &[f32],
        bitmap: Option<u32>,
        skipped: &mut u64,
    ) -> bool {
        match bitmap {
            Some(bm) => self.prefiltered_verdict(index, span, sample, bm, skipped),
            None => self.forest_accepts(index, span, sample),
        }
    }

    /// Calls `f(index)` for every forest accepting `sample`, fanning
    /// disjoint span ranges out across the global compute pool —
    /// accepted indices land in `scratch`'s per-shard lanes and are
    /// merged in shard order, so `f` observes **exactly** the
    /// sequential push order, bit-identical to
    /// [`CompiledBank::for_each_accepting`].
    ///
    /// Banks below [`SHARDED_MIN_FORESTS`] (and degenerate shard
    /// counts) run inline on the caller with no task submission at
    /// all; larger banks ride [`sentinel_pool::global`]. Warm calls
    /// are allocation-free and spawn-free either way. Use
    /// [`CompiledBank::for_each_accepting_pooled`] to pick the pool
    /// and force pooling regardless of size.
    pub fn for_each_accepting_sharded(
        &self,
        sample: &[f32],
        shards: usize,
        scratch: &mut ShardScratch,
        f: impl FnMut(usize),
    ) {
        let n = self.forests.len();
        if shards <= 1 || n < SHARDED_MIN_FORESTS || n > u32::MAX as usize {
            self.for_each_accepting(sample, f);
            return;
        }
        self.for_each_accepting_pooled(sentinel_pool::global(), sample, shards, scratch, f);
    }

    /// The pooled sharded scan behind
    /// [`CompiledBank::for_each_accepting_sharded`], with the pool
    /// explicit and no inline-size gate (parity tests and benches
    /// drive it on banks of every size). The prefilter is applied per
    /// shard; the query bitmap is computed once up front.
    ///
    /// `shards` is clamped to `1..=forest_count`; one shard (or an
    /// empty bank) runs inline. Lane entries are u32 forest indices;
    /// banks that large cannot be built (roots alone exceed u32), but
    /// a hostile span table could be — scan it serially. A panic
    /// inside a scan task is contained by the pool and re-raised here
    /// once all sibling shards finished, preserving the unwinding
    /// behaviour of the old scoped-thread scan.
    pub fn for_each_accepting_pooled(
        &self,
        pool: &sentinel_pool::ComputePool,
        sample: &[f32],
        shards: usize,
        scratch: &mut ShardScratch,
        mut f: impl FnMut(usize),
    ) {
        let n = self.forests.len();
        let shards = shards.clamp(1, n.max(1));
        if shards <= 1 || n > u32::MAX as usize {
            self.for_each_accepting(sample, f);
            return;
        }
        if scratch.lanes.len() < shards {
            scratch.lanes.resize_with(shards, Default::default);
        }
        let bitmap = self.usable_bitmap(sample);
        self.counters.queries.fetch_add(1, Relaxed);
        if bitmap.is_some() {
            self.counters.prefiltered.fetch_add(1, Relaxed);
        }
        let chunk = n.div_ceil(shards);
        let lanes = &scratch.lanes[..shards];
        let outcome = pool.for_each(shards, |shard| {
            let start = shard * chunk;
            let mut lane = lane_guard(&lanes[shard]);
            self.scan_range(start..(start + chunk).min(n), sample, bitmap, &mut lane);
        });
        if let Err(contained) = outcome {
            panic!("sharded scan task panicked: {}", contained.message());
        }
        for lane in lanes {
            for index in lane_guard(lane).out.iter() {
                f(*index as usize);
            }
        }
    }

    /// The pre-pool sharded scan, one crossbeam-scoped thread per
    /// shard beyond the caller's. Kept as the A/B baseline for the
    /// `scaling` bench and as an independent parity reference for the
    /// pooled path; production code routes through
    /// [`CompiledBank::for_each_accepting_sharded`] instead.
    pub fn for_each_accepting_sharded_scoped(
        &self,
        sample: &[f32],
        shards: usize,
        scratch: &mut ShardScratch,
        mut f: impl FnMut(usize),
    ) {
        let n = self.forests.len();
        let shards = shards.clamp(1, n.max(1));
        if shards <= 1 || n > u32::MAX as usize {
            self.for_each_accepting(sample, f);
            return;
        }
        if scratch.lanes.len() < shards {
            scratch.lanes.resize_with(shards, Default::default);
        }
        let bitmap = self.usable_bitmap(sample);
        self.counters.queries.fetch_add(1, Relaxed);
        if bitmap.is_some() {
            self.counters.prefiltered.fetch_add(1, Relaxed);
        }
        let chunk = n.div_ceil(shards);
        let lanes = &scratch.lanes[..shards];
        crossbeam::thread::scope(|s| {
            for (i, lane) in lanes.iter().enumerate().skip(1) {
                let start = i * chunk;
                s.spawn(move |_| {
                    let mut lane = lane_guard(lane);
                    self.scan_range(start..(start + chunk).min(n), sample, bitmap, &mut lane)
                });
            }
            let mut first = lane_guard(&lanes[0]);
            self.scan_range(0..chunk.min(n), sample, bitmap, &mut first);
        })
        .expect("scoped scan threads do not panic");
        for lane in lanes {
            for index in lane_guard(lane).out.iter() {
                f(*index as usize);
            }
        }
    }

    /// Scans one contiguous forest range into the lane (cleared
    /// first) — the shard worker body. Bounds-clamped so hostile
    /// ranges cannot index past the span table. When the bank's
    /// cluster tier is active, the lane's own group memo is used
    /// (reps are re-evaluated at most once per shard) — lane state,
    /// not thread-locals, so warm allocation behaviour is owned by the
    /// caller's [`ShardScratch`].
    fn scan_range(
        &self,
        range: std::ops::Range<usize>,
        sample: &[f32],
        bitmap: Option<u32>,
        lane: &mut ShardLane,
    ) {
        lane.out.clear();
        let end = range.end.min(self.forests.len());
        let start = range.start.min(end);
        let mut skipped = 0u64;
        if self.cluster_auto() {
            lane.memo.begin(self.clusters.group_count());
            for index in start..end {
                let span = &self.forests[index];
                if self.clustered_verdict(&mut lane.memo, index, span, sample, bitmap, &mut skipped)
                {
                    self.heat.bump(index);
                    lane.out.push(index as u32);
                }
            }
        } else {
            for index in start..end {
                let span = &self.forests[index];
                if self.routed_verdict(index, span, sample, bitmap, &mut skipped) {
                    self.heat.bump(index);
                    lane.out.push(index as u32);
                }
            }
        }
        if skipped > 0 {
            self.counters.forests_skipped.fetch_add(skipped, Relaxed);
        }
    }

    /// The query's nonzero-stripe bitmap, or `None` when the index is
    /// not usable for this bank and queries must scan fully.
    fn usable_bitmap(&self, sample: &[f32]) -> Option<u32> {
        if self.index.is_usable(self.forests.len()) {
            Some(self.index.sample_bitmap(sample))
        } else {
            None
        }
    }

    /// One forest's verdict under the prefilter: a forest whose tested
    /// stripes miss the query's nonzero stripes reads the default
    /// value at every tested dimension, so its cached all-default
    /// verdict IS its verdict — no walk needed. The dimension check
    /// runs first so a wrong-length sample stays `false` exactly like
    /// [`CompiledBank::span_accepts`]. Missing rows (impossible when
    /// the usability check passed, but kept panic-free) fall back to
    /// the full evaluation. `skipped` accumulates arena walks the
    /// prefilter avoided — a thread-local tally the callers flush to
    /// [`ScanCounters`] once per scan, keeping atomics off the
    /// per-forest path.
    #[inline]
    fn prefiltered_verdict(
        &self,
        index: usize,
        span: &ForestSpan,
        sample: &[f32],
        bitmap: u32,
        skipped: &mut u64,
    ) -> bool {
        if sample.len() == span.n_features as usize {
            if let Some(row) = self.index.rows().get(index) {
                if row.tested & bitmap == 0 {
                    *skipped += 1;
                    return row.default_accepts;
                }
            }
        }
        self.forest_accepts(index, span, sample)
    }

    /// Full positive-vote count of forest `index` on `sample` (no
    /// early exit — evaluation and debugging aid). `None` for an
    /// out-of-range index or wrong-length sample.
    pub fn positive_votes(&self, index: usize, sample: &[f32]) -> Option<u32> {
        let span = self.forests.get(index)?;
        if sample.len() != span.n_features as usize {
            return None;
        }
        let roots = self.span_roots(span)?;
        Some(
            roots
                .iter()
                .map(|root| u32::from(self.walk(*root, sample)))
                .sum(),
        )
    }

    /// Tiles the bank `times` times: the result holds `times ×
    /// forest_count` forests, each copy with its own arena region (so
    /// the memory footprint scales like a genuinely larger bank —
    /// what the type-count scaling benchmarks need). The feature-usage
    /// index tiles with it: every copy keeps its source forest's row.
    ///
    /// # Panics
    ///
    /// Panics when the tiled arena would overflow the tagged 31-bit
    /// reference space or the `u32` root table — before this check,
    /// large tilings silently wrapped node references *into earlier
    /// copies' regions* (an off-by-bank corruption that surfaced at
    /// replicated type counts past `u16::MAX`). Use
    /// [`CompiledBank::try_repeat`] to get the typed error instead.
    pub fn repeat(&self, times: usize) -> CompiledBank {
        self.try_repeat(times)
            .expect("tiled bank exceeds the 31-bit arena reference space")
    }

    /// [`CompiledBank::repeat`] with overflow reported as a typed
    /// error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`MlError::BadConfig`] when `times × node_count` would reach
    /// the tagged 31-bit reference space (node references would wrap
    /// into earlier copies) or `times × root_count` would overflow the
    /// `u32` root offsets. Checked **before** any allocation.
    pub fn try_repeat(&self, times: usize) -> Result<CompiledBank, MlError> {
        let nodes_total = self
            .nodes
            .len()
            .checked_mul(times)
            .filter(|total| *total < LEAF_BIT as usize)
            .ok_or_else(|| {
                MlError::BadConfig(format!(
                    "tiling {} nodes x {times} copies exceeds the 31-bit arena \
                     reference space",
                    self.nodes.len()
                ))
            })?;
        let roots_total = self
            .roots
            .len()
            .checked_mul(times)
            .filter(|total| *total <= u32::MAX as usize)
            .ok_or_else(|| {
                MlError::BadConfig(format!(
                    "tiling {} roots x {times} copies overflows the u32 root table",
                    self.roots.len()
                ))
            })?;
        // The quantized side tiles alongside when its own tagged
        // reference space allows; otherwise the tiled bank
        // conservatively escalates every copy to the f32 arena (a
        // layout decision, not an error). The cluster index always
        // tiles: every copy is bit-identical to its source (whole
        // regions are rebased), so copies join their source's group.
        let tile_quant = self
            .quant
            .nodes
            .len()
            .checked_mul(times)
            .is_some_and(|total| total < LEAF_BIT as usize)
            && self.quant.is_parallel(self.forests.len(), self.roots.len());
        let mut out = CompiledBank {
            nodes: Vec::with_capacity(nodes_total),
            roots: Vec::with_capacity(roots_total),
            forests: Vec::with_capacity(self.forests.len() * times),
            index: self.index.repeat(times),
            counters: ScanCounters::default(),
            regions: Vec::with_capacity(self.regions.len() * times),
            quant: QuantBank::default(),
            clusters: self.clusters.repeat(times),
            heat: HeatCounters::zeros(self.forests.len() * times),
        };
        if tile_quant {
            out.quant.codebook = self.quant.codebook.clone();
        }
        let tiling_offset = |count: usize, what: &str| -> Result<u32, MlError> {
            u32::try_from(count).map_err(|_| {
                MlError::BadConfig(format!("tiled {what} offset {count} overflows u32"))
            })
        };
        for copy in 0..times {
            let node_offset = tiling_offset(copy * self.nodes.len(), "node")?;
            let root_offset = tiling_offset(copy * self.roots.len(), "root")?;
            let shift = |reference: u32| {
                if reference & LEAF_BIT != 0 {
                    reference
                } else {
                    reference + node_offset
                }
            };
            out.nodes.extend(self.nodes.iter().map(|n| PackedNode {
                left: shift(n.left),
                right: shift(n.right),
                ..*n
            }));
            out.roots.extend(self.roots.iter().map(|r| shift(*r)));
            out.forests.extend(self.forests.iter().map(|s| ForestSpan {
                roots_start: s.roots_start + root_offset,
                ..*s
            }));
            out.regions.extend(
                self.regions
                    .iter()
                    .map(|(s, e)| (s + node_offset, e + node_offset)),
            );
            if tile_quant {
                let quant_offset = tiling_offset(copy * self.quant.nodes.len(), "quantized node")?;
                let qshift = |reference: u32| {
                    if reference & LEAF_BIT != 0 {
                        reference
                    } else {
                        reference + quant_offset
                    }
                };
                out.quant
                    .nodes
                    .extend(self.quant.nodes.iter().map(|n| QuantNode {
                        right: qshift(n.right),
                        ..*n
                    }));
                out.quant
                    .roots
                    .extend(self.quant.roots.iter().map(|r| qshift(*r)));
                out.quant.ok.extend_from_slice(&self.quant.ok);
                out.quant.regions.extend(
                    self.quant
                        .regions
                        .iter()
                        .map(|(s, e)| (s + quant_offset, e + quant_offset)),
                );
            }
        }
        Ok(out)
    }

    fn span_roots(&self, span: &ForestSpan) -> Option<&[u32]> {
        let start = span.roots_start as usize;
        let end = start.checked_add(span.n_trees as usize)?;
        self.roots.get(start..end)
    }

    fn span_accepts(&self, span: &ForestSpan, sample: &[f32]) -> bool {
        if sample.len() != span.n_features as usize {
            return false;
        }
        let needed = span.accept_votes;
        if needed == 0 {
            // A zero (or negative) threshold accepts with no votes —
            // exactly what fraction >= threshold yields.
            return true;
        }
        let Some(roots) = self.span_roots(span) else {
            return false;
        };
        if u64::from(needed) > roots.len() as u64 {
            return false;
        }
        let mut votes = 0u32;
        let mut remaining = roots.len() as u32;
        for root in roots {
            remaining -= 1;
            if self.walk(*root, sample) {
                votes += 1;
                if votes >= needed {
                    return true;
                }
            }
            if votes + remaining < needed {
                return false;
            }
        }
        false
    }

    /// Walks one tree from a tagged root reference to its leaf vote.
    /// The step budget bounds traversal on cyclic (corrupt) arenas;
    /// any out-of-range access votes negative.
    fn walk(&self, mut reference: u32, sample: &[f32]) -> bool {
        let mut steps = self.nodes.len() + 1;
        loop {
            if reference & LEAF_BIT != 0 {
                return reference & 1 == 1;
            }
            if steps == 0 {
                return false;
            }
            steps -= 1;
            let Some(node) = self.nodes.get(reference as usize) else {
                return false;
            };
            let value = match sample.get(node.feature as usize) {
                Some(v) => *v,
                None => return false,
            };
            reference = if value <= node.threshold {
                node.left
            } else {
                node.right
            };
        }
    }

    /// [`CompiledBank::span_accepts`] over the quantized arena: same
    /// early-exit voting, roots taken from the quantized root table
    /// (parallel to the f32 table by construction).
    fn span_accepts_quant(&self, span: &ForestSpan, sample: &[f32]) -> bool {
        if sample.len() != span.n_features as usize {
            return false;
        }
        let needed = span.accept_votes;
        if needed == 0 {
            return true;
        }
        let start = span.roots_start as usize;
        let Some(end) = start.checked_add(span.n_trees as usize) else {
            return false;
        };
        let Some(roots) = self.quant.roots.get(start..end) else {
            return false;
        };
        if u64::from(needed) > roots.len() as u64 {
            return false;
        }
        let mut votes = 0u32;
        let mut remaining = roots.len() as u32;
        for root in roots {
            remaining -= 1;
            if self.walk_quant(*root, sample) {
                votes += 1;
                if votes >= needed {
                    return true;
                }
            }
            if votes + remaining < needed {
                return false;
            }
        }
        false
    }

    /// Walks one quantized tree: the left child is implicit at
    /// `reference + 1` (preorder emission) or folded into the node's
    /// flag bits when it is a leaf; thresholds dequantize through the
    /// per-column codebook to the **exact** original bit pattern, so
    /// every comparison decides like the f32 walk. Same checked-access
    /// and step-budget discipline as [`CompiledBank::walk`].
    fn walk_quant(&self, mut reference: u32, sample: &[f32]) -> bool {
        let mut steps = self.quant.nodes.len() + 1;
        loop {
            if reference & LEAF_BIT != 0 {
                return reference & 1 == 1;
            }
            if steps == 0 {
                return false;
            }
            steps -= 1;
            let Some(node) = self.quant.nodes.get(reference as usize) else {
                return false;
            };
            let feature = node.feature();
            let value = match sample.get(feature) {
                Some(v) => *v,
                None => return false,
            };
            let Some(threshold) = self.quant.codebook.value(feature, node.qcode) else {
                return false;
            };
            reference = if value <= threshold {
                node.left(reference)
            } else {
                node.right
            };
        }
    }

    /// The bank with node regions physically relocated
    /// most-accepted-first, guided by the per-forest accept tallies
    /// ([`CompiledBank::heat`]) the scans have recorded so far.
    ///
    /// Only the *physical placement* of f32 and quantized node regions
    /// changes: the span, root, index, cluster and region tables all
    /// keep logical (push) order with their references rebased, so
    /// every scan remains bit-identical — candidates, order and
    /// verdicts — to the bank it was built from. Appending more
    /// forests through [`CompiledBankBuilder::from_bank`] keeps
    /// working (new regions land after the relocated ones).
    ///
    /// Banks without region bookkeeping (raw parts) are returned as
    /// unchanged clones. Accept tallies carry over, so repeated
    /// relocation is stable under a steady workload.
    pub fn rebuilt_hot_first(&self) -> CompiledBank {
        let n = self.forests.len();
        if n == 0 || self.regions.len() != n {
            return self.clone();
        }
        let heat = self.heat.snapshot();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|a, b| {
            let (ha, hb) = (
                heat.get(*a as usize).copied().unwrap_or(0),
                heat.get(*b as usize).copied().unwrap_or(0),
            );
            hb.cmp(&ha).then(a.cmp(b))
        });
        let mut out = self.clone();
        hot_relocate(
            &order,
            &self.nodes,
            &self.regions,
            &self.forests,
            &self.roots,
            &mut out.nodes,
            &mut out.regions,
            &mut out.roots,
            |node, delta| PackedNode {
                left: rebase_ref(node.left, delta),
                right: rebase_ref(node.right, delta),
                ..*node
            },
        );
        if self.quant.is_parallel(n, self.roots.len()) {
            hot_relocate(
                &order,
                &self.quant.nodes,
                &self.quant.regions,
                &self.forests,
                &self.quant.roots,
                &mut out.quant.nodes,
                &mut out.quant.regions,
                &mut out.quant.roots,
                |node, delta| QuantNode {
                    right: rebase_ref(node.right, delta),
                    ..*node
                },
            );
        }
        out
    }

    /// FNV-1a content digest of forest `index`'s compiled form, with
    /// arena references rebased to the forest's region start — equal
    /// forests (same tree shapes, same threshold bit patterns, same
    /// accept votes) digest equally wherever their regions sit in the
    /// arena. Used only as a *candidate filter* for clustering; group
    /// membership is always confirmed by
    /// [`CompiledBank::forest_content_equal`].
    fn forest_digest(&self, index: usize) -> u64 {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let Some(span) = self.forests.get(index) else {
            return digest;
        };
        let Some((start, end)) = self.regions.get(index).copied() else {
            return digest;
        };
        digest = fnv_word(digest, span.n_trees);
        digest = fnv_word(digest, span.accept_votes);
        digest = fnv_word(digest, span.n_features);
        let roots = self
            .roots
            .get(span.roots_start as usize..)
            .and_then(|tail| tail.get(..span.n_trees as usize))
            .unwrap_or(&[]);
        for root in roots {
            digest = fnv_word(digest, rebase_to_region(*root, start));
        }
        let region = self
            .nodes
            .get(start as usize..end.max(start) as usize)
            .unwrap_or(&[]);
        digest = fnv_word(digest, region.len() as u32);
        for node in region {
            digest = fnv_word(digest, u32::from(node.feature));
            digest = fnv_word(digest, node.threshold.to_bits());
            digest = fnv_word(digest, rebase_to_region(node.left, start));
            digest = fnv_word(digest, rebase_to_region(node.right, start));
        }
        digest
    }

    /// Whether forests `a` and `b` are compiled to *exactly* the same
    /// content — identical spans (modulo table offsets), bit-identical
    /// thresholds, identical region-relative tree structure. Content
    /// equality implies decision identity for every sample, which is
    /// what makes evaluating one cluster representative for the whole
    /// group sound.
    fn forest_content_equal(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        let (Some(span_a), Some(span_b)) = (self.forests.get(a), self.forests.get(b)) else {
            return false;
        };
        if span_a.n_trees != span_b.n_trees
            || span_a.accept_votes != span_b.accept_votes
            || span_a.n_features != span_b.n_features
        {
            return false;
        }
        let (Some(region_a), Some(region_b)) =
            (self.regions.get(a).copied(), self.regions.get(b).copied())
        else {
            return false;
        };
        let roots = |span: &ForestSpan| {
            self.roots
                .get(span.roots_start as usize..)
                .and_then(|tail| tail.get(..span.n_trees as usize))
        };
        let (Some(roots_a), Some(roots_b)) = (roots(span_a), roots(span_b)) else {
            return false;
        };
        for (x, y) in roots_a.iter().zip(roots_b) {
            if rebase_to_region(*x, region_a.0) != rebase_to_region(*y, region_b.0) {
                return false;
            }
        }
        let nodes =
            |(start, end): (u32, u32)| self.nodes.get(start as usize..end.max(start) as usize);
        let (Some(nodes_a), Some(nodes_b)) = (nodes(region_a), nodes(region_b)) else {
            return false;
        };
        if nodes_a.len() != nodes_b.len() {
            return false;
        }
        for (x, y) in nodes_a.iter().zip(nodes_b) {
            if x.feature != y.feature
                || x.threshold.to_bits() != y.threshold.to_bits()
                || rebase_to_region(x.left, region_a.0) != rebase_to_region(y.left, region_b.0)
                || rebase_to_region(x.right, region_a.0) != rebase_to_region(y.right, region_b.0)
            {
                return false;
            }
        }
        true
    }
}

/// One FNV-1a step folding a 32-bit word into `digest`.
#[inline]
fn fnv_word(digest: u64, word: u32) -> u64 {
    (digest ^ u64::from(word)).wrapping_mul(0x0000_0100_0000_01b3)
}

/// An arena reference expressed relative to its region's start (leaf
/// references carry no position and pass through), so identical
/// forests compare equal regardless of where their regions landed.
#[inline]
fn rebase_to_region(reference: u32, start: u32) -> u32 {
    if reference & LEAF_BIT != 0 {
        reference
    } else {
        reference.wrapping_sub(start)
    }
}

/// Rebases an untagged arena reference by `delta` (wrapping — deltas
/// are themselves computed wrapping); leaf-tagged references carry no
/// arena position and pass through unchanged.
#[inline]
fn rebase_ref(reference: u32, delta: u32) -> u32 {
    if reference & LEAF_BIT != 0 {
        reference
    } else {
        reference.wrapping_add(delta)
    }
}

/// Relocates one node arena's per-forest regions into `order` (the
/// hot-first permutation), rebasing intra-region child references and
/// the logical-order root table. Region and span tables keep logical
/// order; only physical node placement changes. Any malformed region
/// is skipped rather than trusted — builder-made banks (the only ones
/// carrying regions) never hit those branches.
#[allow(clippy::too_many_arguments)]
fn hot_relocate<N: Copy>(
    order: &[u32],
    nodes: &[N],
    regions: &[(u32, u32)],
    forests: &[ForestSpan],
    roots: &[u32],
    out_nodes: &mut Vec<N>,
    out_regions: &mut Vec<(u32, u32)>,
    out_roots: &mut Vec<u32>,
    rebase: impl Fn(&N, u32) -> N,
) {
    out_nodes.clear();
    out_nodes.reserve(nodes.len());
    out_regions.clear();
    out_regions.extend_from_slice(regions);
    let mut deltas = vec![0u32; regions.len()];
    for &index in order {
        let index = index as usize;
        let Some((start, end)) = regions.get(index).copied() else {
            continue;
        };
        let Some(region) = nodes.get(start as usize..end.max(start) as usize) else {
            continue;
        };
        let new_start = out_nodes.len() as u32;
        let delta = new_start.wrapping_sub(start);
        deltas[index] = delta;
        out_nodes.extend(region.iter().map(|n| rebase(n, delta)));
        out_regions[index] = (new_start, new_start + region.len() as u32);
    }
    out_roots.clear();
    out_roots.extend_from_slice(roots);
    let root_count = out_roots.len();
    for (index, span) in forests.iter().enumerate() {
        let Some(delta) = deltas.get(index).copied() else {
            continue;
        };
        let start = span.roots_start as usize;
        let Some(end) = start.checked_add(span.n_trees as usize) else {
            continue;
        };
        let Some(slice) = out_roots.get_mut(start..end.min(root_count)) else {
            continue;
        };
        for root in slice {
            *root = rebase_ref(*root, delta);
        }
    }
}

/// Epoch-stamped per-group verdict memo for the clustered scan. Slots
/// never need clearing: a slot is valid only when its stored epoch
/// matches the current scan's, so `begin` is O(1) amortized (it only
/// grows the slot table when a bigger bank comes through). One lives
/// per shard lane and one per thread (serial scans).
#[derive(Debug, Clone, Default)]
struct ClusterMemo {
    epoch: u64,
    /// `epoch << 1 | verdict`; valid when `slot >> 1 == epoch`.
    slots: Vec<u64>,
}

impl ClusterMemo {
    /// Starts a new scan over `groups` cluster groups.
    fn begin(&mut self, groups: usize) {
        // Epochs start at 1 so the zero-filled slots are never valid.
        self.epoch += 1;
        if self.slots.len() < groups {
            self.slots.resize(groups, 0);
        }
    }

    #[inline]
    fn get(&self, group: u32) -> Option<bool> {
        let slot = *self.slots.get(group as usize)?;
        (slot >> 1 == self.epoch).then_some(slot & 1 == 1)
    }

    #[inline]
    fn set(&mut self, group: u32, verdict: bool) {
        if let Some(slot) = self.slots.get_mut(group as usize) {
            *slot = (self.epoch << 1) | u64::from(verdict);
        }
    }
}

thread_local! {
    /// The serial clustered scan's group memo. Thread-local (not per
    /// bank) so `for_each_accepting` stays `&self` and allocation-free
    /// on warm calls; the epoch stamp isolates scans from each other
    /// and from other banks sharing the thread.
    static CLUSTER_MEMO: RefCell<ClusterMemo> = RefCell::new(ClusterMemo::default());
}

/// One shard's scratch: the accepted-index lane plus the shard's own
/// cluster-group memo (so pooled scans never touch worker-thread
/// state — warm allocation behaviour is owned by the caller's scratch,
/// regardless of which pool worker steals the task).
#[derive(Debug, Clone, Default)]
struct ShardLane {
    out: Vec<u32>,
    memo: ClusterMemo,
}

/// Locks a scratch lane, recovering the guard if a panicking scan task
/// poisoned it (the lane is cleared at the start of every scan, so a
/// poisoned lane carries no stale state into the next call).
fn lane_guard(lane: &Mutex<ShardLane>) -> MutexGuard<'_, ShardLane> {
    lane.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Reusable per-shard lanes for [`CompiledBank::for_each_accepting_sharded`]:
/// each scan task writes accepted forest indices into its own lane,
/// and a warm call reuses the lanes' capacity — the scan itself
/// allocates nothing. Each lane sits behind its own `Mutex` so pool
/// tasks (which share the job closure by reference) get exclusive
/// lane access; tasks own disjoint lanes, so every lock is
/// uncontended.
#[derive(Debug, Default)]
pub struct ShardScratch {
    lanes: Vec<Mutex<ShardLane>>,
}

impl Clone for ShardScratch {
    fn clone(&self) -> Self {
        ShardScratch {
            lanes: self
                .lanes
                .iter()
                .map(|lane| Mutex::new(lane_guard(lane).clone()))
                .collect(),
        }
    }
}

impl ShardScratch {
    /// An empty scratch; lanes grow on first use and are reused.
    pub fn new() -> Self {
        ShardScratch::default()
    }

    /// Number of lanes currently allocated (= the widest shard count
    /// seen so far).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }
}

/// Incrementally compiles binary forests into one [`CompiledBank`].
#[derive(Debug, Clone)]
pub struct CompiledBankBuilder {
    bank: CompiledBank,
    /// Per-column threshold-bit-pattern → code lookup, parallel to the
    /// codebook columns (the codebook itself stores values only; these
    /// maps are derived state, rebuilt O(codebook) by
    /// [`CompiledBankBuilder::from_bank`]).
    code_maps: Vec<BTreeMap<u32, u16>>,
    /// Whether pushed forests are quantized (the bank's quantized
    /// tables are parallel and may be extended).
    quant_enabled: bool,
    /// Content digest → candidate cluster group ids (a digest
    /// collision keeps multiple candidates; membership is decided by
    /// exact region comparison, never by the digest alone).
    digest_groups: HashMap<u64, Vec<u32>>,
    /// Whether pushed forests join the cluster index.
    cluster_enabled: bool,
}

impl Default for CompiledBankBuilder {
    fn default() -> Self {
        CompiledBankBuilder::new()
    }
}

impl CompiledBankBuilder {
    /// An empty builder indexing on [`MAX_STRIPES`] feature stripes
    /// (dimension `d` maps to index bit `d % 32`). Callers whose
    /// samples have a semantic column period — like Sentinel's
    /// 23-features-per-packet F′ layout — should pick it with
    /// [`CompiledBankBuilder::with_stripes`] for a sharper prefilter.
    pub fn new() -> Self {
        CompiledBankBuilder::with_stripes(MAX_STRIPES)
    }

    /// An empty builder folding feature dimensions into `stripes`
    /// index bits (`1..=32`; anything else disables indexing and the
    /// finished bank scans fully). The threshold codebook folds
    /// dimensions into the same column period, so Sentinel banks get
    /// one codebook column per F′ feature.
    pub fn with_stripes(stripes: u32) -> Self {
        let period = stripes.clamp(1, MAX_STRIPES);
        CompiledBankBuilder {
            bank: CompiledBank {
                index: BankIndex::new(stripes),
                quant: QuantBank {
                    codebook: ThresholdCodebook::new(period),
                    ..QuantBank::default()
                },
                ..CompiledBank::default()
            },
            code_maps: vec![BTreeMap::new(); period as usize],
            quant_enabled: true,
            digest_groups: HashMap::new(),
            cluster_enabled: true,
        }
    }

    /// Resumes building on top of an existing bank: pushed forests
    /// **append** their node region, root entries, span, index row,
    /// quantized region and cluster membership — nothing already
    /// compiled is touched or recompiled. This is the
    /// incremental-compilation path behind `add_device_type` at large
    /// bank sizes (re-running the whole builder would be O(bank) per
    /// added type). The builder's derived lookup state (threshold code
    /// maps, digest → group candidates) is rebuilt here in
    /// O(codebook + groups), not O(bank).
    ///
    /// If the bank's index is not usable for its forest count (a
    /// raw-parts bank), indexing stays disabled for the appended bank
    /// too — a partial index would silently misroute queries. The same
    /// conservatism applies layer by layer: quantization continues
    /// only on banks whose quantized tables are parallel to the f32
    /// tables, and clustering only on banks with intact region
    /// bookkeeping and a usable cluster index; anything else keeps
    /// that acceleration off while staying fully scannable.
    pub fn from_bank(mut bank: CompiledBank) -> Self {
        let n = bank.forests.len();
        if n != 0 && !bank.index.is_usable(n) {
            bank.index = BankIndex::disabled();
        }
        // Keep accept tallies index-aligned with the span table even
        // for banks that never tracked them (raw parts).
        while bank.heat.0.len() < n {
            bank.heat.grow();
        }
        if n == 0 && bank.quant.codebook.period() == 0 {
            // A default-constructed bank: adopt a fresh codebook so
            // appends quantize like a fresh builder would.
            bank.quant.codebook =
                ThresholdCodebook::new(bank.index.stripes().clamp(1, MAX_STRIPES));
        }
        let mut quant_enabled = bank.quant.codebook.period() > 0
            && bank.quant.is_parallel(n, bank.roots.len())
            && bank.regions.len() == n;
        let mut code_maps = Vec::new();
        if quant_enabled {
            for column in bank.quant.codebook.columns() {
                let mut map = BTreeMap::new();
                for (slot, value) in column.iter().enumerate() {
                    match u16::try_from(slot) {
                        Ok(code) => {
                            map.insert(value.to_bits(), code);
                        }
                        Err(_) => quant_enabled = false,
                    }
                }
                code_maps.push(map);
            }
            if !quant_enabled {
                code_maps.clear();
            }
        }
        let cluster_enabled = bank.regions.len() == n && bank.clusters.is_usable(n);
        let mut digest_groups: HashMap<u64, Vec<u32>> = HashMap::new();
        if cluster_enabled {
            for (id, group) in bank.clusters.groups().iter().enumerate() {
                if let Ok(id) = u32::try_from(id) {
                    digest_groups.entry(group.digest).or_default().push(id);
                }
            }
        }
        CompiledBankBuilder {
            bank,
            code_maps,
            quant_enabled,
            digest_groups,
            cluster_enabled,
        }
    }

    /// Compiles `forest` into the arena with the given fractional
    /// accept threshold, returning the forest's bank index.
    ///
    /// The accept rule is bit-identical to
    /// `forest.positive_vote_fraction(sample)? >= accept_threshold`:
    /// the required vote count is the smallest `v` whose fraction
    /// `v / n_trees` (computed in `f32`, like the interpreter) clears
    /// the threshold.
    ///
    /// # Errors
    ///
    /// [`MlError::BadConfig`] if the forest is not binary, a feature
    /// index exceeds `u16`, or the arena would outgrow the tagged
    /// 31-bit reference space.
    pub fn push(&mut self, forest: &RandomForest, accept_threshold: f32) -> Result<usize, MlError> {
        if forest.n_classes() != 2 {
            return Err(MlError::BadConfig(format!(
                "compiled banks hold binary forests only (got {} classes)",
                forest.n_classes()
            )));
        }
        if forest.n_features() > usize::from(u16::MAX) + 1 {
            return Err(MlError::BadConfig(format!(
                "feature dimensionality {} exceeds the packed u16 index",
                forest.n_features()
            )));
        }
        // Pre-validate every split feature before mutating anything —
        // a mid-compile failure would leave the bank with orphaned
        // nodes and roots.
        let mut branch_nodes = 0usize;
        for tree in forest.trees() {
            branch_nodes += tree.node_count() - tree.leaf_count();
            for node in tree.nodes() {
                if let Node::Split { feature, .. } = node {
                    if *feature > usize::from(u16::MAX) {
                        return Err(MlError::BadConfig(format!(
                            "split feature index {feature} exceeds the packed u16 range"
                        )));
                    }
                }
            }
        }
        let nodes_start = self.bank.nodes.len();
        let nodes_end = nodes_start + branch_nodes;
        if nodes_end >= LEAF_BIT as usize {
            return Err(MlError::BadConfig(
                "compiled arena exceeds the 31-bit reference space".into(),
            ));
        }
        // All table offsets as *checked* conversions, computed before
        // any mutation (the arena-truncation bugfix: a bare `as u32`
        // here silently wraps once a table passes 2³² entries).
        let region = (
            u32::try_from(nodes_start).map_err(|_| arena_overflow("node region start"))?,
            u32::try_from(nodes_end).map_err(|_| arena_overflow("node region end"))?,
        );
        let roots_start =
            u32::try_from(self.bank.roots.len()).map_err(|_| arena_overflow("root table"))?;
        let n_trees = u32::try_from(forest.n_trees()).map_err(|_| arena_overflow("tree count"))?;
        let total_roots = roots_start
            .checked_add(n_trees)
            .ok_or_else(|| arena_overflow("root table"))?;
        let n_features =
            u32::try_from(forest.n_features()).map_err(|_| arena_overflow("feature count"))?;
        for tree in forest.trees() {
            let root = self.compile_tree(tree.nodes());
            self.bank.roots.push(root);
        }
        debug_assert_eq!(self.bank.nodes.len(), nodes_end);
        debug_assert_eq!(self.bank.roots.len(), total_roots as usize);
        let span = ForestSpan {
            roots_start,
            n_trees,
            accept_votes: votes_needed(accept_threshold, forest.n_trees()),
            n_features,
        };
        self.bank.forests.push(span);
        self.bank.regions.push(region);
        self.bank.heat.grow();
        let stripes = self.bank.index.stripes();
        if (1..=MAX_STRIPES).contains(&stripes) {
            // Index row: the stripes this forest's branch nodes test
            // (union over its freshly emitted node region — an
            // over-approximation of any single walk, which is exactly
            // what makes skipping sound), plus its verdict on the
            // all-default sample, evaluated once right here.
            let tested = self.bank.nodes[nodes_start..]
                .iter()
                .fold(0u32, |bits, node| {
                    bits | 1 << (u32::from(node.feature) % stripes)
                });
            let zeros = vec![0f32; span.n_features as usize];
            let default_accepts = self.bank.span_accepts(&span, &zeros);
            self.bank.index.push_row(IndexRow {
                tested,
                default_accepts,
            });
        }
        if self.quant_enabled {
            let proven = self.try_quantize_forest(&span, branch_nodes);
            self.bank.quant.ok.push(proven);
            debug_assert!(self
                .bank
                .quant
                .is_parallel(self.bank.forests.len(), self.bank.roots.len()));
        }
        if self.cluster_enabled {
            self.cluster_push();
        }
        Ok(self.bank.forests.len() - 1)
    }

    /// Finishes the bank.
    pub fn finish(self) -> CompiledBank {
        self.bank
    }

    /// Compiles one tree's node list, returning the tagged root
    /// reference. Tree invariants (children strictly forward, binary
    /// leaf histograms) are guaranteed by `DecisionTree`'s own
    /// validation; feature and arena ranges were pre-validated by
    /// `push` before any mutation.
    fn compile_tree(&mut self, tree_nodes: &[Node]) -> u32 {
        // First pass: assign every tree node its arena reference —
        // splits get the next arena slots in order, leaves fold into
        // tagged references.
        let base = u32::try_from(self.bank.nodes.len())
            .expect("arena size pre-checked against LEAF_BIT in push");
        let mut references = Vec::with_capacity(tree_nodes.len());
        let mut splits = 0u32;
        for node in tree_nodes {
            references.push(match node {
                Node::Leaf { counts } => {
                    // Binary argmax with the interpreter's tie rule
                    // (`max_by_key` keeps the *last* maximum, so a tie
                    // votes positive).
                    let negative = counts.first().copied().unwrap_or(0);
                    let positive = counts.get(1).copied().unwrap_or(0) >= negative;
                    LEAF_BIT | u32::from(positive)
                }
                Node::Split { .. } => {
                    splits += 1;
                    base + splits - 1
                }
            });
        }
        // Second pass: emit packed nodes with resolved child refs.
        for node in tree_nodes {
            if let Node::Split {
                feature,
                threshold,
                left,
                right,
            } = node
            {
                self.bank.nodes.push(PackedNode {
                    feature: u16::try_from(*feature).expect("feature range pre-validated in push"),
                    threshold: *threshold,
                    left: references[*left],
                    right: references[*right],
                });
            }
        }
        references[0]
    }

    /// Quantizes the forest just pushed (its span in `span`, its f32
    /// region `branch_nodes` long), appending quantized roots for each
    /// of its trees plus one region entry, and returns whether the
    /// quantized form was **proven** decision-identical by an
    /// independent node-by-node verification pass. On any failure the
    /// quantized emission is rolled back and the forest's root slots
    /// hold harmless negative-leaf sentinels — evaluation escalates to
    /// the retained f32 arena.
    fn try_quantize_forest(&mut self, span: &ForestSpan, branch_nodes: usize) -> bool {
        let qnodes_mark = self.bank.quant.nodes.len();
        let qroots_mark = self.bank.quant.roots.len();
        // Saturated on (impossible) overflow: the region is only used
        // for relocation and an empty `(s, s)` region is inert.
        let qstart = u32::try_from(qnodes_mark).unwrap_or(u32::MAX);
        let roots = span.roots_start as usize..(span.roots_start + span.n_trees) as usize;
        let mut proven = qnodes_mark <= u32::MAX as usize;
        if proven {
            for i in roots.clone() {
                match self.quantize_tree(self.bank.roots[i], branch_nodes) {
                    Some(qroot) => self.bank.quant.roots.push(qroot),
                    None => {
                        proven = false;
                        break;
                    }
                }
            }
        }
        if proven {
            // The proof: re-walk both trees in lockstep and demand
            // structural + bit-level agreement at every node. Emission
            // bugs escalate the forest instead of corrupting results.
            let qroots = qroots_mark..self.bank.quant.roots.len();
            proven = roots.clone().zip(qroots).all(|(fi, qi)| {
                self.verify_quant_tree(self.bank.roots[fi], self.bank.quant.roots[qi])
            });
        }
        if !proven {
            self.bank.quant.nodes.truncate(qnodes_mark);
            self.bank.quant.roots.truncate(qroots_mark);
            self.bank
                .quant
                .roots
                .extend((0..span.n_trees).map(|_| LEAF_BIT));
            self.bank.quant.regions.push((qstart, qstart));
            return false;
        }
        let qend = u32::try_from(self.bank.quant.nodes.len()).unwrap_or(u32::MAX);
        self.bank.quant.regions.push((qstart, qend));
        true
    }

    /// Emits one tree's quantized preorder form, returning its tagged
    /// quantized root, or `None` when the tree cannot be represented
    /// (feature past 14 bits, codebook column full, arena out of
    /// tagged space) — the caller escalates the whole forest.
    fn quantize_tree(&mut self, root: u32, region_len: usize) -> Option<u32> {
        if root & LEAF_BIT != 0 {
            return Some(root);
        }
        let qroot = u32::try_from(self.bank.quant.nodes.len()).ok()?;
        // Work stack of (f32 reference, patch slot for the parent's
        // right-child field). Left children need no patching — preorder
        // emission puts them at parent + 1.
        let mut stack: Vec<(u32, Option<usize>)> = vec![(root, None)];
        let mut budget = region_len + 1;
        while let Some((reference, patch)) = stack.pop() {
            budget = budget.checked_sub(1)?;
            let position = self.bank.quant.nodes.len();
            if position >= LEAF_BIT as usize {
                return None;
            }
            if let Some(slot) = patch {
                self.bank.quant.nodes[slot].right = position as u32;
            }
            let node = *self.bank.nodes.get(reference as usize)?;
            if node.feature > QUANT_FEATURE_MASK {
                return None;
            }
            let qcode = self.encode_threshold(usize::from(node.feature), node.threshold)?;
            let mut fl = node.feature;
            let left_leaf = node.left & LEAF_BIT != 0;
            if left_leaf {
                fl |= QUANT_LEFT_LEAF;
                if node.left & 1 == 1 {
                    fl |= QUANT_LEFT_VOTE;
                }
            }
            let right_leaf = node.right & LEAF_BIT != 0;
            let right = if right_leaf { node.right } else { 0 };
            self.bank.quant.nodes.push(QuantNode { fl, qcode, right });
            // Push right first so the left subtree is emitted
            // immediately after this node (the preorder invariant the
            // implicit left reference depends on).
            if !right_leaf {
                stack.push((node.right, Some(position)));
            }
            if !left_leaf {
                stack.push((node.left, None));
            }
        }
        Some(qroot)
    }

    /// Looks up (or interns) the codebook code for `threshold` in
    /// `feature`'s column. `None` when the column is full — the forest
    /// escalates.
    fn encode_threshold(&mut self, feature: usize, threshold: f32) -> Option<u16> {
        let period = self.bank.quant.codebook.period();
        if period == 0 || self.code_maps.len() != period {
            return None;
        }
        let map = &mut self.code_maps[feature % period];
        let bits = threshold.to_bits();
        if let Some(code) = map.get(&bits) {
            return Some(*code);
        }
        let code = self.bank.quant.codebook.intern(feature, threshold)?;
        map.insert(bits, code);
        Some(code)
    }

    /// Walks the f32 tree at `root` and the quantized tree at `qroot`
    /// in lockstep, demanding exact agreement at every node: same
    /// feature, bit-identical dequantized threshold, same leaf votes,
    /// same shape. This pass is the per-node decision-identity proof —
    /// it shares no code with the emitter it checks.
    fn verify_quant_tree(&self, root: u32, qroot: u32) -> bool {
        let mut stack = vec![(root, qroot)];
        let mut budget = self.bank.nodes.len() + 2;
        while let Some((reference, qreference)) = stack.pop() {
            match (reference & LEAF_BIT != 0, qreference & LEAF_BIT != 0) {
                (true, true) => {
                    if reference & 1 != qreference & 1 {
                        return false;
                    }
                    continue;
                }
                (false, false) => {}
                _ => return false,
            }
            if budget == 0 {
                return false;
            }
            budget -= 1;
            let Some(node) = self.bank.nodes.get(reference as usize) else {
                return false;
            };
            let Some(qnode) = self.bank.quant.nodes.get(qreference as usize) else {
                return false;
            };
            if qnode.feature() != usize::from(node.feature) {
                return false;
            }
            let Some(qthreshold) = self.bank.quant.codebook.value(qnode.feature(), qnode.qcode)
            else {
                return false;
            };
            if qthreshold.to_bits() != node.threshold.to_bits() {
                return false;
            }
            stack.push((node.left, qnode.left(qreference)));
            stack.push((node.right, qnode.right));
        }
        true
    }

    /// Joins the forest just pushed to its content-equal cluster group
    /// (or opens a new group with it as representative). Groups only
    /// ever hold *exactly identical* compiled forests — digest matches
    /// are confirmed by full region comparison, so a hash collision
    /// can split groups but never merge distinct forests.
    fn cluster_push(&mut self) {
        let index = self.bank.forests.len() - 1;
        let digest = self.bank.forest_digest(index);
        if let Some(candidates) = self.digest_groups.get(&digest) {
            for id in candidates {
                let Some(group) = self.bank.clusters.group(*id) else {
                    continue;
                };
                if self.bank.forest_content_equal(group.rep as usize, index) {
                    self.bank.clusters.join(*id);
                    return;
                }
            }
        }
        match u32::try_from(index)
            .ok()
            .and_then(|rep| self.bank.clusters.open(rep, digest))
        {
            Some(id) => self.digest_groups.entry(digest).or_default().push(id),
            // Group table full (or forest index past u32): the cluster
            // index is now short one membership entry, which makes it
            // unusable — stop maintaining it rather than misroute.
            None => self.cluster_enabled = false,
        }
    }
}

/// The typed error for arena-path size overflows (the checked-cast
/// bugfix sweep).
fn arena_overflow(what: &str) -> MlError {
    MlError::BadConfig(format!("compiled bank {what} overflows u32"))
}

/// The smallest vote count whose `f32` fraction of `n_trees` clears
/// `threshold`, or `n_trees + 1` when no count does (threshold above
/// 1.0, or NaN — which the interpreter likewise never accepts).
///
/// Computed directly (O(1)) instead of the former O(n_trees) linear
/// scan, but defined by the *same* predicate the scan tested —
/// `v as f32 / n_trees as f32 >= threshold` — so the result is
/// bit-identical for every input (an exhaustive unit test pins all
/// `n_trees ≤ 4096` against the scanned version). Because `f32`
/// division by a fixed positive divisor is monotone in the numerator,
/// the predicate is monotone in `v`, and a ceil-based guess plus a
/// bounded local fix-up lands exactly on the scan's answer even where
/// float rounding makes `ceil(threshold * total)` miss by one.
fn votes_needed(threshold: f32, n_trees: usize) -> u32 {
    let total = n_trees as f32;
    let accepted = |v: usize| (v as f32) / total >= threshold;
    // The scan's boundary contracts, preserved verbatim: v = 0 first
    // (0/0 is NaN, so n_trees == 0 with threshold <= 0.0 still needs
    // comparing), and "nothing clears" maps to n_trees + 1 (NaN or
    // threshold > 1.0).
    if accepted(0) {
        return 0;
    }
    if !accepted(n_trees) {
        return n_trees as u32 + 1;
    }
    // Monotone region: guess by ceil, then walk to the exact boundary.
    let mut v = if threshold.is_finite() && threshold > 0.0 {
        ((threshold * total).ceil() as usize).clamp(1, n_trees)
    } else {
        1
    };
    while v > 0 && accepted(v - 1) {
        v -= 1;
    }
    while !accepted(v) {
        v += 1;
    }
    v as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sentinel_pool::ComputePool;

    fn training_data(seed: u64, n: usize, d: usize) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f32> = (0..d).map(|_| rng.gen::<f32>()).collect();
            let label = usize::from(row[0] + row[d - 1] > 1.0);
            samples.push(row);
            labels.push(label);
        }
        (samples, labels)
    }

    fn forest(seed: u64, d: usize) -> RandomForest {
        let (samples, labels) = training_data(seed, 120, d);
        RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), seed).unwrap()
    }

    #[test]
    fn bank_matches_interpreter_on_every_threshold() {
        let forests: Vec<RandomForest> = (0..4).map(|i| forest(40 + i, 3)).collect();
        for threshold in [0.0f32, 0.2, 0.35, 0.5, 0.9, 1.0, 1.5, -0.5] {
            let mut builder = CompiledBankBuilder::new();
            for f in &forests {
                builder.push(f, threshold).unwrap();
            }
            let bank = builder.finish();
            let mut rng = SmallRng::seed_from_u64(7);
            for _ in 0..200 {
                let sample: Vec<f32> = (0..3).map(|_| rng.gen::<f32>() * 1.5).collect();
                for (i, f) in forests.iter().enumerate() {
                    let interpreted = f.positive_vote_fraction(&sample).unwrap() >= threshold;
                    assert_eq!(
                        bank.accepts(i, &sample),
                        interpreted,
                        "forest {i} at threshold {threshold} on {sample:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scan_counters_track_queries_and_skips() {
        let forests: Vec<RandomForest> = (0..4).map(|i| forest(90 + i, 3)).collect();
        let mut builder = CompiledBankBuilder::new();
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let bank = builder.finish();
        assert_eq!(bank.scan_counters(), ScanSnapshot::default());

        let sample = [0.4f32, 0.6, 0.2];
        bank.for_each_accepting_full(&sample, |_| {});
        let after_full = bank.scan_counters();
        assert_eq!(after_full.queries, 1);
        assert_eq!(after_full.prefiltered, 0);

        bank.for_each_accepting_indexed(&sample, |_| {});
        let after_indexed = bank.scan_counters();
        assert_eq!(after_indexed.queries, 2);
        assert_eq!(after_indexed.prefiltered, 1);

        // The all-zero sample misses every tested stripe: the
        // prefilter answers all forests from cached verdicts.
        bank.for_each_accepting_indexed(&[0.0, 0.0, 0.0], |_| {});
        let after_zero = bank.scan_counters();
        assert_eq!(after_zero.queries, 3);
        assert_eq!(after_zero.prefiltered, 2);
        assert_eq!(
            after_zero.forests_skipped - after_indexed.forests_skipped,
            bank.forest_count() as u64
        );

        let mut scratch = ShardScratch::new();
        bank.for_each_accepting_pooled(sentinel_pool::global(), &sample, 2, &mut scratch, |_| {});
        assert_eq!(bank.scan_counters().queries, 4);
        assert_eq!(bank.scan_counters().prefiltered, 3);

        // Clones carry the values; fresh builds start at zero.
        let cloned = bank.clone();
        assert_eq!(cloned.scan_counters(), bank.scan_counters());
        assert_eq!(bank.repeat(2).scan_counters(), ScanSnapshot::default());
    }

    #[test]
    fn for_each_accepting_preserves_push_order() {
        let forests: Vec<RandomForest> = (0..5).map(|i| forest(60 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::new();
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let bank = builder.finish();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut compiled = Vec::new();
            bank.for_each_accepting_indexed(&sample, |i| compiled.push(i));
            let sequential: Vec<usize> = forests
                .iter()
                .enumerate()
                .filter(|(_, f)| f.positive_vote_fraction(&sample).unwrap() >= 0.5)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(compiled, sequential);
        }
    }

    #[test]
    fn votes_needed_maps_thresholds_exactly() {
        assert_eq!(votes_needed(0.0, 33), 0);
        assert_eq!(votes_needed(-1.0, 33), 0);
        assert_eq!(votes_needed(0.5, 33), 17);
        assert_eq!(votes_needed(0.35, 33), 12);
        assert_eq!(votes_needed(1.0, 33), 33);
        assert_eq!(votes_needed(1.01, 33), 34);
        assert_eq!(votes_needed(f32::NAN, 33), 34);
        // Exactness at representable fractions: 16/32 == 0.5.
        assert_eq!(votes_needed(0.5, 32), 16);
    }

    #[test]
    fn single_leaf_trees_compile() {
        // max_depth 0 forests are all leaves — no packed nodes at all.
        let (samples, labels) = training_data(5, 40, 2);
        let config = ForestConfig {
            tree: crate::tree::TreeConfig {
                max_depth: 0,
                ..crate::tree::TreeConfig::default()
            },
            ..ForestConfig::default()
        };
        let f = RandomForest::fit(&samples, &labels, 2, &config, 5).unwrap();
        let mut builder = CompiledBankBuilder::new();
        builder.push(&f, 0.5).unwrap();
        let bank = builder.finish();
        assert_eq!(bank.node_count(), 0);
        let sample = [0.3f32, 0.9];
        assert_eq!(
            bank.accepts(0, &sample),
            f.positive_vote_fraction(&sample).unwrap() >= 0.5
        );
    }

    #[test]
    fn wrong_dimension_and_bad_index_vote_negative() {
        let f = forest(9, 3);
        let mut builder = CompiledBankBuilder::new();
        builder.push(&f, 0.0).unwrap();
        let bank = builder.finish();
        // Threshold 0 accepts everything of the right shape...
        assert!(bank.accepts(0, &[0.1, 0.2, 0.3]));
        // ...but never a wrong-length sample or unknown forest.
        assert!(!bank.accepts(0, &[0.1, 0.2]));
        assert!(!bank.accepts(1, &[0.1, 0.2, 0.3]));
        assert_eq!(bank.positive_votes(0, &[0.1, 0.2]), None);
        assert_eq!(bank.positive_votes(1, &[0.1, 0.2, 0.3]), None);
    }

    #[test]
    fn rejects_non_binary_forests() {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for i in 0..20 {
                samples.push(vec![c as f32 * 5.0 + (i % 3) as f32 * 0.1]);
                labels.push(c);
            }
        }
        let f = RandomForest::fit(&samples, &labels, 3, &ForestConfig::default(), 1).unwrap();
        let err = CompiledBankBuilder::new().push(&f, 0.5).unwrap_err();
        assert!(matches!(err, MlError::BadConfig(_)));
    }

    #[test]
    fn corrupt_arenas_never_panic() {
        let sample = [0.5f32, 0.5];
        let span = ForestSpan {
            roots_start: 0,
            n_trees: 1,
            accept_votes: 1,
            n_features: 2,
        };
        // Root reference past the arena.
        let bank = CompiledBank::from_raw_parts(vec![], vec![42], vec![span]);
        assert!(!bank.accepts(0, &sample));
        // Node whose children form a cycle.
        let cyclic = PackedNode {
            feature: 0,
            threshold: 0.5,
            left: 0,
            right: 0,
        };
        let bank = CompiledBank::from_raw_parts(vec![cyclic], vec![0], vec![span]);
        assert!(!bank.accepts(0, &sample));
        assert_eq!(bank.positive_votes(0, &sample), Some(0));
        // Feature index past the sample (span lies about dimensions).
        let oob_feature = PackedNode {
            feature: 7,
            threshold: 0.5,
            left: LEAF_BIT | 1,
            right: LEAF_BIT | 1,
        };
        let bank = CompiledBank::from_raw_parts(vec![oob_feature], vec![0], vec![span]);
        assert!(!bank.accepts(0, &sample));
        // Span whose root range overflows the root table.
        let wild = ForestSpan {
            roots_start: u32::MAX,
            n_trees: u32::MAX,
            accept_votes: 1,
            n_features: 2,
        };
        let bank = CompiledBank::from_raw_parts(vec![], vec![], vec![wild]);
        assert!(!bank.accepts(0, &sample));
        // accept_votes beyond the tree count can never accept.
        let greedy = ForestSpan {
            accept_votes: 5,
            ..span
        };
        let bank = CompiledBank::from_raw_parts(vec![], vec![LEAF_BIT | 1], vec![greedy]);
        assert!(!bank.accepts(0, &sample));
    }

    #[test]
    fn repeat_tiles_forests_and_arena() {
        let forests: Vec<RandomForest> = (0..3).map(|i| forest(80 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::new();
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let bank = builder.finish();
        let tiled = bank.repeat(4);
        assert_eq!(tiled.forest_count(), 12);
        assert_eq!(tiled.node_count(), 4 * bank.node_count());
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            for copy in 0..4 {
                for i in 0..3 {
                    assert_eq!(
                        tiled.accepts(copy * 3 + i, &sample),
                        bank.accepts(i, &sample),
                        "copy {copy} forest {i}"
                    );
                }
            }
        }
        assert_eq!(bank.repeat(0).forest_count(), 0);
    }

    #[test]
    fn builder_banks_are_indexed_and_prefilter_is_bit_identical() {
        let forests: Vec<RandomForest> = (0..4).map(|i| forest(90 + i, 3)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(3);
        for f in &forests {
            builder.push(f, 0.35).unwrap();
        }
        let bank = builder.finish();
        assert!(bank.is_indexed());
        assert_eq!(bank.index().rows().len(), 4);
        assert_eq!(bank.index().stripes(), 3);
        let mut rng = SmallRng::seed_from_u64(13);
        for case in 0..300 {
            // Mix dense and mostly-zero samples — the latter is where
            // the prefilter actually routes to cached verdicts.
            let sample: Vec<f32> = (0..3)
                .map(|_| {
                    if case % 3 == 0 || rng.gen::<f32>() < 0.6 {
                        0.0
                    } else {
                        rng.gen::<f32>() * 1.5
                    }
                })
                .collect();
            let mut indexed = Vec::new();
            bank.for_each_accepting_indexed(&sample, |i| indexed.push(i));
            let mut full = Vec::new();
            bank.for_each_accepting_full(&sample, |i| full.push(i));
            assert_eq!(indexed, full, "prefilter diverged on {sample:?}");
            let interpreted: Vec<usize> = forests
                .iter()
                .enumerate()
                .filter(|(_, f)| f.positive_vote_fraction(&sample).unwrap() >= 0.35)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(indexed, interpreted);
        }
        // The all-default sample is answered purely from cached
        // verdicts; it must still match the full scan bit for bit.
        let zeros = [0f32; 3];
        assert_eq!(bank.index().sample_bitmap(&zeros), 0);
        let mut indexed = Vec::new();
        bank.for_each_accepting_indexed(&zeros, |i| indexed.push(i));
        let mut full = Vec::new();
        bank.for_each_accepting_full(&zeros, |i| full.push(i));
        assert_eq!(indexed, full);
        let defaults: Vec<usize> = bank
            .index()
            .rows()
            .iter()
            .enumerate()
            .filter(|(_, row)| row.default_accepts)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            indexed, defaults,
            "cached verdicts are the zero-sample truth"
        );
    }

    #[test]
    fn sharded_scan_is_bit_identical_and_ordered() {
        let forests: Vec<RandomForest> = (0..7).map(|i| forest(110 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.2).unwrap();
        }
        let bank = builder.finish();
        let mut scratch = ShardScratch::new();
        let mut rng = SmallRng::seed_from_u64(29);
        for _ in 0..60 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut sequential = Vec::new();
            bank.for_each_accepting_indexed(&sample, |i| sequential.push(i));
            // Every shard count — including 1 (inline) and counts past
            // the forest count (clamped) — merges to the same order.
            for shards in [0usize, 1, 2, 3, 5, 7, 16] {
                let mut pooled = Vec::new();
                bank.for_each_accepting_pooled(
                    sentinel_pool::global(),
                    &sample,
                    shards,
                    &mut scratch,
                    |i| pooled.push(i),
                );
                assert_eq!(
                    pooled, sequential,
                    "pooled({shards}) diverged on {sample:?}"
                );
                // The auto entry point routes a bank this small inline;
                // candidate order must be bit-identical to the pooled run.
                let mut auto = Vec::new();
                bank.for_each_accepting_sharded(&sample, shards, &mut scratch, |i| auto.push(i));
                assert_eq!(auto, pooled, "inline({shards}) diverged on {sample:?}");
            }
        }
        assert!(scratch.lane_count() >= 7);
    }

    #[test]
    fn auto_sharded_scan_pools_past_the_threshold_and_stays_bit_identical() {
        let forests: Vec<RandomForest> = (0..7).map(|i| forest(210 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.2).unwrap();
        }
        let small = builder.finish();
        let tiled = small.repeat(SHARDED_MIN_FORESTS / small.forest_count() + 1);
        assert!(tiled.forest_count() >= SHARDED_MIN_FORESTS);
        let pool = ComputePool::new(3);
        let mut scratch = ShardScratch::new();
        let mut rng = SmallRng::seed_from_u64(57);
        for _ in 0..10 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut sequential = Vec::new();
            tiled.for_each_accepting_indexed(&sample, |i| sequential.push(i));
            let mut auto = Vec::new();
            tiled.for_each_accepting_sharded(&sample, 4, &mut scratch, |i| auto.push(i));
            assert_eq!(auto, sequential, "auto-pooled diverged on {sample:?}");
            let mut scoped = Vec::new();
            tiled.for_each_accepting_sharded_scoped(&sample, 4, &mut scratch, |i| scoped.push(i));
            assert_eq!(scoped, sequential, "scoped baseline diverged on {sample:?}");
            let mut pooled = Vec::new();
            tiled.for_each_accepting_pooled(&pool, &sample, 4, &mut scratch, |i| pooled.push(i));
            assert_eq!(pooled, sequential, "private pool diverged on {sample:?}");
        }
        // Past the threshold the auto path really used the global pool.
        let counters = sentinel_pool::global().counters();
        assert!(counters.submitted > 0);
    }

    #[test]
    fn small_banks_scan_inline_without_touching_the_pool() {
        let forests: Vec<RandomForest> = (0..5).map(|i| forest(230 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.2).unwrap();
        }
        let bank = builder.finish();
        assert!(bank.forest_count() < SHARDED_MIN_FORESTS);
        // A private pool observes zero submissions because the auto
        // entry point never reaches a pool for a bank this small —
        // task hand-off would dominate the whole scan.
        let pool = ComputePool::new(2);
        let before = pool.counters().submitted;
        let mut scratch = ShardScratch::new();
        let mut out = Vec::new();
        bank.for_each_accepting_sharded(&[0.4, 0.6], 4, &mut scratch, |i| out.push(i));
        let mut serial = Vec::new();
        bank.for_each_accepting(&[0.4, 0.6], |i| serial.push(i));
        assert_eq!(out, serial);
        assert_eq!(pool.counters().submitted, before);
        assert_eq!(scratch.lane_count(), 0, "inline scans never grow lanes");
    }

    #[test]
    fn from_bank_appends_identically_to_one_shot_compilation() {
        let forests: Vec<RandomForest> = (0..5).map(|i| forest(130 + i, 3)).collect();
        let mut oneshot = CompiledBankBuilder::with_stripes(3);
        for f in &forests {
            oneshot.push(f, 0.5).unwrap();
        }
        let oneshot = oneshot.finish();

        let mut first = CompiledBankBuilder::with_stripes(3);
        for f in &forests[..3] {
            first.push(f, 0.5).unwrap();
        }
        let mut resumed = CompiledBankBuilder::from_bank(first.finish());
        for f in &forests[3..] {
            resumed.push(f, 0.5).unwrap();
        }
        let resumed = resumed.finish();

        // The append path reproduces the one-shot arena exactly —
        // including the region table, the quantized side and the
        // cluster index (from_bank rebuilds its lookup state from the
        // bank, so appended forests intern and cluster identically).
        assert_eq!(resumed.nodes, oneshot.nodes);
        assert_eq!(resumed.roots, oneshot.roots);
        assert_eq!(resumed.spans(), oneshot.spans());
        assert_eq!(resumed.index(), oneshot.index());
        assert_eq!(resumed.regions, oneshot.regions);
        assert_eq!(resumed.quant.nodes, oneshot.quant.nodes);
        assert_eq!(resumed.quant.roots, oneshot.quant.roots);
        assert_eq!(resumed.quant.ok, oneshot.quant.ok);
        assert_eq!(resumed.quant.regions, oneshot.quant.regions);
        assert_eq!(resumed.quant.codebook, oneshot.quant.codebook);
        assert_eq!(resumed.clusters().group_of(), oneshot.clusters().group_of());
        assert_eq!(
            resumed.clusters().group_count(),
            oneshot.clusters().group_count()
        );
    }

    #[test]
    fn from_bank_on_unindexed_banks_keeps_indexing_disabled() {
        let span = ForestSpan {
            roots_start: 0,
            n_trees: 1,
            accept_votes: 1,
            n_features: 3,
        };
        let raw = CompiledBank::from_raw_parts(vec![], vec![LEAF_BIT | 1], vec![span]);
        assert!(!raw.is_indexed());
        let mut builder = CompiledBankBuilder::from_bank(raw);
        builder.push(&forest(150, 3), 0.5).unwrap();
        let bank = builder.finish();
        // A partial index would misroute; it must stay disabled...
        assert!(!bank.is_indexed());
        // ...and queries fall back to the (correct) full scan.
        let sample = [0.4f32, 0.6, 0.1];
        let mut indexed = Vec::new();
        bank.for_each_accepting_indexed(&sample, |i| indexed.push(i));
        let mut full = Vec::new();
        bank.for_each_accepting_full(&sample, |i| full.push(i));
        assert_eq!(indexed, full);
    }

    #[test]
    fn try_repeat_reports_overflow_as_typed_errors() {
        let mut builder = CompiledBankBuilder::new();
        builder.push(&forest(42, 2), 0.5).unwrap();
        let bank = builder.finish();
        assert!(bank.node_count() > 0);
        // Node references would wrap into earlier copies — the
        // off-by-bank corruption this guard exists for.
        let times = LEAF_BIT as usize / bank.node_count() + 1;
        assert!(matches!(bank.try_repeat(times), Err(MlError::BadConfig(_))));
        // Root-table overflow on a nodeless (leaf-only) bank.
        let span = ForestSpan {
            roots_start: 0,
            n_trees: 2,
            accept_votes: 1,
            n_features: 1,
        };
        let leafy = CompiledBank::from_raw_parts(vec![], vec![LEAF_BIT | 1, LEAF_BIT], vec![span]);
        let times = u32::MAX as usize / 2 + 1;
        assert!(matches!(
            leafy.try_repeat(times),
            Err(MlError::BadConfig(_))
        ));
        // In-range tilings still work through the checked path.
        assert_eq!(bank.try_repeat(3).unwrap().forest_count(), 3);
    }

    #[test]
    fn repeat_tiles_the_index_with_the_arena() {
        let forests: Vec<RandomForest> = (0..3).map(|i| forest(160 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let bank = builder.finish();
        let tiled = bank.repeat(5);
        assert!(tiled.is_indexed());
        assert_eq!(tiled.index().rows().len(), 15);
        for copy in 0..5 {
            assert_eq!(
                &tiled.index().rows()[copy * 3..copy * 3 + 3],
                bank.index().rows()
            );
        }
        let mut rng = SmallRng::seed_from_u64(31);
        let mut scratch = ShardScratch::new();
        for _ in 0..30 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut indexed = Vec::new();
            tiled.for_each_accepting_indexed(&sample, |i| indexed.push(i));
            let mut full = Vec::new();
            tiled.for_each_accepting_full(&sample, |i| full.push(i));
            assert_eq!(indexed, full);
            let mut sharded = Vec::new();
            tiled.for_each_accepting_pooled(
                sentinel_pool::global(),
                &sample,
                4,
                &mut scratch,
                |i| sharded.push(i),
            );
            assert_eq!(sharded, full);
        }
    }

    #[test]
    fn corrupt_index_rows_never_panic_and_only_reroute_to_recorded_defaults() {
        // A sound arena with hostile index rows: every query must
        // complete panic-free, and each forest's answer is either its
        // true scan verdict or the garbage row's recorded default —
        // nothing else (no OOB, no unbounded work, no invented votes).
        let forests: Vec<RandomForest> = (0..3).map(|i| forest(170 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let sound = builder.finish();
        let mut rng = SmallRng::seed_from_u64(41);
        for _ in 0..40 {
            let garbage_rows: Vec<IndexRow> = (0..3)
                .map(|_| IndexRow {
                    tested: rng.gen::<u32>(),
                    default_accepts: rng.gen::<f32>() < 0.5,
                })
                .collect();
            let hostile = CompiledBank::from_raw_parts_indexed(
                sound.nodes.clone(),
                sound.roots.clone(),
                sound.forests.clone(),
                BankIndex::from_rows(2, garbage_rows.clone()),
            );
            assert!(hostile.is_indexed());
            for _ in 0..20 {
                let sample: Vec<f32> = (0..2)
                    .map(|_| {
                        if rng.gen::<f32>() < 0.5 {
                            0.0
                        } else {
                            rng.gen::<f32>() * 1.5
                        }
                    })
                    .collect();
                let mut verdicts = [false; 3];
                hostile.for_each_accepting_indexed(&sample, |i| verdicts[i] = true);
                let mut sharded = Vec::new();
                let mut scratch = ShardScratch::new();
                hostile.for_each_accepting_pooled(
                    sentinel_pool::global(),
                    &sample,
                    3,
                    &mut scratch,
                    |i| sharded.push(i),
                );
                for (i, row) in garbage_rows.iter().enumerate() {
                    let truth = sound.accepts(i, &sample);
                    assert!(
                        verdicts[i] == truth || verdicts[i] == row.default_accepts,
                        "forest {i} invented a verdict on {sample:?}"
                    );
                    assert_eq!(
                        sharded.contains(&i),
                        verdicts[i],
                        "sharded and serial hostile scans diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn unusable_index_shapes_degrade_to_the_full_scan() {
        let forests: Vec<RandomForest> = (0..3).map(|i| forest(180 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let sound = builder.finish();
        let junk_row = IndexRow {
            tested: 0,
            default_accepts: true,
        };
        // Row-count mismatches and out-of-range stripe counts must be
        // ignored entirely — exact full-scan behavior, junk defaults
        // never consulted.
        let shapes = [
            BankIndex::from_rows(2, vec![junk_row; 1]),
            BankIndex::from_rows(2, vec![junk_row; 7]),
            BankIndex::from_rows(0, vec![junk_row; 3]),
            BankIndex::from_rows(MAX_STRIPES + 9, vec![junk_row; 3]),
        ];
        let mut rng = SmallRng::seed_from_u64(43);
        for index in shapes {
            let hostile = CompiledBank::from_raw_parts_indexed(
                sound.nodes.clone(),
                sound.roots.clone(),
                sound.forests.clone(),
                index,
            );
            assert!(!hostile.is_indexed());
            for _ in 0..20 {
                let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
                let mut got = Vec::new();
                hostile.for_each_accepting_indexed(&sample, |i| got.push(i));
                let mut want = Vec::new();
                sound.for_each_accepting_full(&sample, |i| want.push(i));
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn corrupt_arenas_with_corrupt_indexes_stay_panic_free() {
        // Garbage everywhere at once: cyclic nodes, wild spans, wild
        // index rows. Evaluation must terminate under the step budget
        // with only scan-or-default verdicts, through every entry
        // point including the sharded one.
        let cyclic = PackedNode {
            feature: 9,
            threshold: 0.5,
            left: 0,
            right: 0,
        };
        let spans = vec![
            ForestSpan {
                roots_start: 0,
                n_trees: 1,
                accept_votes: 1,
                n_features: 2,
            },
            ForestSpan {
                roots_start: u32::MAX,
                n_trees: u32::MAX,
                accept_votes: 1,
                n_features: 2,
            },
            ForestSpan {
                roots_start: 0,
                n_trees: 1,
                accept_votes: 0,
                n_features: 2,
            },
        ];
        let rows = vec![
            IndexRow {
                tested: 0,
                default_accepts: true,
            },
            IndexRow {
                tested: u32::MAX,
                default_accepts: true,
            },
            IndexRow {
                tested: 0b10,
                default_accepts: false,
            },
        ];
        let bank = CompiledBank::from_raw_parts_indexed(
            vec![cyclic],
            vec![0],
            spans,
            BankIndex::from_rows(2, rows.clone()),
        );
        assert!(bank.is_indexed());
        let mut scratch = ShardScratch::new();
        for sample in [[0.5f32, 0.5], [0.0, 0.0], [f32::NAN, 1.0]] {
            let mut serial = Vec::new();
            bank.for_each_accepting_indexed(&sample, |i| serial.push(i));
            let mut sharded = Vec::new();
            bank.for_each_accepting_pooled(
                sentinel_pool::global(),
                &sample,
                3,
                &mut scratch,
                |i| sharded.push(i),
            );
            assert_eq!(serial, sharded);
            for (i, row) in rows.iter().enumerate() {
                let scan = bank.accepts(i, &sample);
                let got = serial.contains(&i);
                assert!(
                    got == scan || got == row.default_accepts,
                    "corrupt forest {i} invented a verdict on {sample:?}"
                );
            }
        }
    }

    #[test]
    fn arena_accounting() {
        let f = forest(2, 3);
        let mut builder = CompiledBankBuilder::new();
        builder.push(&f, 0.5).unwrap();
        let bank = builder.finish();
        assert_eq!(bank.forest_count(), 1);
        assert!(!bank.is_empty());
        let branch_nodes: usize = f
            .trees()
            .iter()
            .map(|t| t.node_count() - t.leaf_count())
            .sum();
        assert_eq!(bank.node_count(), branch_nodes);
        assert!(bank.arena_bytes() >= branch_nodes * std::mem::size_of::<PackedNode>());
        assert_eq!(bank.spans().len(), 1);
        assert!(CompiledBank::default().is_empty());
    }

    /// The former O(n_trees) implementation, kept verbatim as the
    /// oracle for the direct computation.
    fn votes_needed_scanned(threshold: f32, n_trees: usize) -> u32 {
        let total = n_trees as f32;
        (0..=n_trees)
            .find(|v| *v as f32 / total >= threshold)
            .map(|v| v as u32)
            .unwrap_or(n_trees as u32 + 1)
    }

    #[test]
    fn votes_needed_is_bit_identical_to_the_linear_scan() {
        let thresholds = [
            0.0f32,
            -0.0,
            -1.0,
            f32::MIN_POSITIVE,
            f32::MIN_POSITIVE / 4.0,
            0.25,
            1.0 / 3.0,
            0.5,
            0.65,
            0.999_999,
            1.0,
            1.0 + f32::EPSILON,
            1.5,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
        ];
        // Exhaustive over every bank-relevant ensemble size.
        for n_trees in 0..=4096usize {
            for t in thresholds {
                assert_eq!(
                    votes_needed(t, n_trees),
                    votes_needed_scanned(t, n_trees),
                    "n_trees={n_trees} threshold={t}"
                );
            }
        }
        // Plus thresholds sitting exactly on (and one ulp around)
        // every representable vote fraction of a few tree counts —
        // where ceil-based rounding could plausibly miss by one.
        for n_trees in [1usize, 2, 3, 7, 32, 33, 100, 333] {
            for v in 0..=n_trees {
                let exact = v as f32 / n_trees as f32;
                for t in [
                    exact,
                    f32::from_bits(exact.to_bits().wrapping_sub(1)),
                    f32::from_bits(exact.to_bits().wrapping_add(1)),
                ] {
                    assert_eq!(
                        votes_needed(t, n_trees),
                        votes_needed_scanned(t, n_trees),
                        "n_trees={n_trees} threshold={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_scan_is_proven_and_bit_identical_on_adversarial_probes() {
        let forests: Vec<RandomForest> = (0..5).map(|i| forest(300 + i, 3)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(3);
        for f in &forests {
            builder.push(f, 0.35).unwrap();
        }
        let bank = builder.finish();
        // Exact bit-round-trip codebooks prove every forest here.
        assert_eq!(bank.quantized_forest_count(), bank.forest_count());
        assert!(bank.quant().node_count() > 0);
        assert!(bank.quant().node_count() <= bank.node_count());
        let specials = [
            f32::NAN,
            0.0,
            -0.0,
            f32::MIN_POSITIVE / 2.0,
            -f32::MIN_POSITIVE,
            -1.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
        ];
        let mut rng = SmallRng::seed_from_u64(61);
        let check = |sample: &[f32]| {
            let mut full = Vec::new();
            bank.for_each_accepting_full(sample, |i| full.push(i));
            let mut quant = Vec::new();
            bank.for_each_accepting_quant(sample, |i| quant.push(i));
            assert_eq!(quant, full, "quantized scan diverged on {sample:?}");
            for (i, f) in forests.iter().enumerate() {
                assert_eq!(
                    full.contains(&i),
                    f.positive_vote_fraction(sample).unwrap() >= 0.35,
                    "forest {i} diverged from the interpreter on {sample:?}"
                );
            }
        };
        for case in 0..300 {
            let sample: Vec<f32> = (0..3)
                .map(|d| {
                    if case % 2 == 0 && rng.gen::<f32>() < 0.4 {
                        specials[(case + d) % specials.len()]
                    } else {
                        rng.gen::<f32>() * 1.5 - 0.2
                    }
                })
                .collect();
            check(&sample);
        }
        // Probes sitting exactly on stored thresholds (bucket edges),
        // and one ulp to either side.
        let edges: Vec<f32> = bank.nodes.iter().take(24).map(|n| n.threshold).collect();
        for t in edges {
            for probe in [
                t,
                f32::from_bits(t.to_bits().wrapping_sub(1)),
                f32::from_bits(t.to_bits().wrapping_add(1)),
            ] {
                check(&[probe, probe, probe]);
            }
        }
    }

    #[test]
    fn forests_testing_high_dimensions_escalate_and_stay_identical() {
        // One informative feature at the first dimension past the
        // 14-bit quantized range — every split lands there, so the
        // forest cannot be represented and must escalate to f32.
        let d = usize::from(QUANT_FEATURE_MASK) + 2;
        let mut rng = SmallRng::seed_from_u64(71);
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..40 {
            let mut row = vec![0f32; d];
            let x = rng.gen::<f32>();
            row[d - 1] = x;
            samples.push(row);
            labels.push(usize::from(x > 0.5));
        }
        let config = ForestConfig {
            n_trees: 3,
            tree: crate::tree::TreeConfig {
                feature_subsample: crate::tree::FeatureSubsample::All,
                ..crate::tree::TreeConfig::default()
            },
            ..ForestConfig::default()
        };
        let f = RandomForest::fit(&samples, &labels, 2, &config, 71).unwrap();
        let mut builder = CompiledBankBuilder::new();
        builder.push(&f, 0.5).unwrap();
        let bank = builder.finish();
        assert!(bank.node_count() > 0, "the forest must actually split");
        assert_eq!(
            bank.quantized_forest_count(),
            0,
            "a forest testing dimension {} must escalate",
            d - 1
        );
        // Escalated forests still carry parallel (sentinel) tables so
        // appends and relocation keep working.
        assert!(bank.quant().is_parallel(1, bank.roots.len()));
        let mut probe = vec![0f32; d];
        for x in [0.2f32, 0.5, 0.7, f32::NAN] {
            probe[d - 1] = x;
            let mut full = Vec::new();
            bank.for_each_accepting_full(&probe, |i| full.push(i));
            let mut quant = Vec::new();
            bank.for_each_accepting_quant(&probe, |i| quant.push(i));
            assert_eq!(quant, full, "escalated scan diverged at x={x}");
            assert_eq!(
                full.contains(&0),
                f.positive_vote_fraction(&probe).unwrap() >= 0.5
            );
        }
    }

    #[test]
    fn clustered_scan_is_bit_identical_and_skips_duplicate_groups() {
        let forests: Vec<RandomForest> = (0..4).map(|i| forest(320 + i, 3)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(3);
        let copies = CLUSTER_MIN_FORESTS / forests.len() + 1;
        for _ in 0..copies {
            for f in &forests {
                builder.push(f, 0.35).unwrap();
            }
        }
        let bank = builder.finish();
        let n = bank.forest_count();
        assert!(n >= CLUSTER_MIN_FORESTS);
        // Identical pushes were exact-matched into one group per
        // distinct forest.
        assert_eq!(bank.clusters().group_count(), forests.len());
        assert!(bank.clusters().is_usable(n));
        let skipped_before = bank.scan_counters().forests_skipped;
        let mut rng = SmallRng::seed_from_u64(67);
        let mut scratch = ShardScratch::new();
        for case in 0..40 {
            let sample: Vec<f32> = (0..3)
                .map(|_| {
                    if case % 3 == 0 {
                        0.0
                    } else {
                        rng.gen::<f32>() * 1.5
                    }
                })
                .collect();
            let mut full = Vec::new();
            bank.for_each_accepting_full(&sample, |i| full.push(i));
            let mut clustered = Vec::new();
            bank.for_each_accepting_clustered(&sample, |i| clustered.push(i));
            assert_eq!(clustered, full, "clustered diverged on {sample:?}");
            // The auto router picks the clustered tier at this size.
            let mut auto = Vec::new();
            bank.for_each_accepting(&sample, |i| auto.push(i));
            assert_eq!(auto, full, "auto route diverged on {sample:?}");
            // Sharded lanes ride per-lane memos through the same
            // machinery.
            let mut sharded = Vec::new();
            bank.for_each_accepting_pooled(
                sentinel_pool::global(),
                &sample,
                4,
                &mut scratch,
                |i| sharded.push(i),
            );
            assert_eq!(sharded, full, "sharded clustered diverged on {sample:?}");
        }
        // Group members beyond each representative were answered from
        // the memo — at least (n - groups) skips per clustered pass.
        let skipped = bank.scan_counters().forests_skipped - skipped_before;
        assert!(
            skipped >= 40 * (n - forests.len()) as u64,
            "memo skips unexpectedly low: {skipped}"
        );
    }

    #[test]
    fn repeat_tiles_quant_and_clusters_identically() {
        let forests: Vec<RandomForest> = (0..3).map(|i| forest(340 + i, 2)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(2);
        for f in &forests {
            builder.push(f, 0.5).unwrap();
        }
        let bank = builder.finish();
        let times = CLUSTER_MIN_FORESTS / forests.len() + 1;
        let tiled = bank.repeat(times);
        assert!(tiled.forest_count() >= CLUSTER_MIN_FORESTS);
        assert_eq!(tiled.clusters().group_count(), forests.len());
        assert_eq!(tiled.quantized_forest_count(), tiled.forest_count());
        let mut rng = SmallRng::seed_from_u64(83);
        for _ in 0..30 {
            let sample: Vec<f32> = (0..2).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut full = Vec::new();
            tiled.for_each_accepting_full(&sample, |i| full.push(i));
            let mut auto = Vec::new();
            tiled.for_each_accepting(&sample, |i| auto.push(i));
            assert_eq!(auto, full);
            let mut quant = Vec::new();
            tiled.for_each_accepting_quant(&sample, |i| quant.push(i));
            assert_eq!(quant, full);
            for copy in 0..times {
                for (i, _) in forests.iter().enumerate() {
                    assert_eq!(
                        full.contains(&(copy * forests.len() + i)),
                        bank.accepts(i, &sample),
                        "copy {copy} forest {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn hot_first_relocation_preserves_scans_and_appends() {
        let forests: Vec<RandomForest> = (0..6).map(|i| forest(360 + i, 3)).collect();
        let mut builder = CompiledBankBuilder::with_stripes(3);
        for f in &forests {
            builder.push(f, 0.35).unwrap();
        }
        let bank = builder.finish();
        // Accrue accept heat, then relocate hottest-first.
        let mut rng = SmallRng::seed_from_u64(73);
        for _ in 0..40 {
            let sample: Vec<f32> = (0..3).map(|_| rng.gen::<f32>() * 1.5).collect();
            bank.for_each_accepting_full(&sample, |_| {});
        }
        let heat = bank.heat();
        assert!(heat.iter().sum::<u32>() > 0, "heat must have accrued");
        let hot = bank.rebuilt_hot_first();
        assert_eq!(hot.forest_count(), bank.forest_count());
        assert_eq!(hot.node_count(), bank.node_count());
        assert_eq!(hot.quantized_forest_count(), bank.quantized_forest_count());
        // The hottest forest's region now leads the arena.
        let mut order: Vec<usize> = (0..heat.len()).collect();
        order.sort_by(|a, b| heat[*b].cmp(&heat[*a]).then(a.cmp(b)));
        assert_eq!(hot.regions[order[0]].0, 0);
        // Every scan path stays bit-identical to the source bank.
        for _ in 0..60 {
            let sample: Vec<f32> = (0..3).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut want = Vec::new();
            bank.for_each_accepting_full(&sample, |i| want.push(i));
            let mut full = Vec::new();
            hot.for_each_accepting_full(&sample, |i| full.push(i));
            assert_eq!(full, want, "hot-first full scan diverged on {sample:?}");
            let mut indexed = Vec::new();
            hot.for_each_accepting_indexed(&sample, |i| indexed.push(i));
            assert_eq!(indexed, want);
            let mut quant = Vec::new();
            hot.for_each_accepting_quant(&sample, |i| quant.push(i));
            assert_eq!(quant, want);
        }
        // Appending through from_bank keeps working on the relocated
        // bank, quantization and clustering included.
        let extra = forest(399, 3);
        let mut resumed = CompiledBankBuilder::from_bank(hot.clone());
        resumed.push(&extra, 0.35).unwrap();
        let grown = resumed.finish();
        assert_eq!(grown.quantized_forest_count(), grown.forest_count());
        assert_eq!(grown.clusters().group_of().len(), grown.forest_count());
        for _ in 0..40 {
            let sample: Vec<f32> = (0..3).map(|_| rng.gen::<f32>() * 1.5).collect();
            let mut full = Vec::new();
            grown.for_each_accepting_full(&sample, |i| full.push(i));
            let mut quant = Vec::new();
            grown.for_each_accepting_quant(&sample, |i| quant.push(i));
            assert_eq!(quant, full);
            for (i, f) in forests.iter().chain([&extra]).enumerate() {
                assert_eq!(
                    full.contains(&i),
                    f.positive_vote_fraction(&sample).unwrap() >= 0.35,
                    "forest {i} diverged after relocation + append"
                );
            }
        }
    }
}
