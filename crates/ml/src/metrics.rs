//! Classification metrics: accuracy and labelled confusion matrices.

use std::collections::BTreeMap;
use std::fmt;

/// Fraction of predictions equal to their ground truth.
///
/// Returns 0.0 for empty input.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use sentinel_ml::accuracy;
///
/// assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
/// ```
pub fn accuracy<T: PartialEq>(predicted: &[T], actual: &[T]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "prediction and truth lengths differ"
    );
    if predicted.is_empty() {
        return 0.0;
    }
    let correct = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    correct as f64 / predicted.len() as f64
}

/// A confusion matrix over string class labels.
///
/// Rows are actual classes, columns predicted classes — the layout of
/// Table III in the paper.
///
/// # Examples
///
/// ```
/// use sentinel_ml::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new();
/// cm.record("cat", "cat");
/// cm.record("cat", "dog");
/// cm.record("dog", "dog");
/// assert_eq!(cm.count("cat", "dog"), 1);
/// assert!((cm.recall("cat").unwrap() - 0.5).abs() < 1e-9);
/// assert!((cm.overall_accuracy() - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// counts[actual][predicted].
    counts: BTreeMap<String, BTreeMap<String, usize>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        ConfusionMatrix::default()
    }

    /// Records one prediction.
    pub fn record(&mut self, actual: &str, predicted: &str) {
        *self
            .counts
            .entry(actual.to_string())
            .or_default()
            .entry(predicted.to_string())
            .or_insert(0) += 1;
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        for (actual, row) in &other.counts {
            for (predicted, n) in row {
                *self
                    .counts
                    .entry(actual.clone())
                    .or_default()
                    .entry(predicted.clone())
                    .or_insert(0) += n;
            }
        }
    }

    /// The count of samples of class `actual` predicted as `predicted`.
    pub fn count(&self, actual: &str, predicted: &str) -> usize {
        self.counts
            .get(actual)
            .and_then(|row| row.get(predicted))
            .copied()
            .unwrap_or(0)
    }

    /// All labels appearing as actual or predicted, sorted.
    pub fn labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.counts.keys().cloned().collect();
        for row in self.counts.values() {
            labels.extend(row.keys().cloned());
        }
        labels.sort();
        labels.dedup();
        labels
    }

    /// Total samples of class `actual`.
    pub fn row_total(&self, actual: &str) -> usize {
        self.counts
            .get(actual)
            .map(|row| row.values().sum())
            .unwrap_or(0)
    }

    /// Recall (correct-identification ratio) of a class: the diagonal
    /// count over the row total. `None` if the class was never seen.
    /// This is the per-device "ratio of correct identification"
    /// plotted in Fig. 5.
    pub fn recall(&self, actual: &str) -> Option<f64> {
        let total = self.row_total(actual);
        if total == 0 {
            return None;
        }
        Some(self.count(actual, actual) as f64 / total as f64)
    }

    /// Micro-averaged accuracy: diagonal sum over grand total.
    pub fn overall_accuracy(&self) -> f64 {
        let mut diag = 0usize;
        let mut total = 0usize;
        for (actual, row) in &self.counts {
            for (predicted, n) in row {
                total += n;
                if actual == predicted {
                    diag += n;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            diag as f64 / total as f64
        }
    }

    /// Macro-averaged recall over all actual classes (the "global
    /// ratio of correct identification" the paper reports as 0.815).
    pub fn macro_recall(&self) -> f64 {
        let rows: Vec<f64> = self
            .counts
            .keys()
            .filter_map(|label| self.recall(label))
            .collect();
        if rows.is_empty() {
            0.0
        } else {
            rows.iter().sum::<f64>() / rows.len() as f64
        }
    }

    /// Total number of recorded predictions.
    pub fn total(&self) -> usize {
        self.counts
            .values()
            .map(|row| row.values().sum::<usize>())
            .sum()
    }
}

impl fmt::Display for ConfusionMatrix {
    /// Renders an aligned A\P table like Table III of the paper.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels = self.labels();
        let width = labels
            .iter()
            .map(|l| l.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4)
            .max(5);
        write!(f, "{:>width$} |", "A\\P")?;
        for l in &labels {
            write!(f, " {l:>width$}")?;
        }
        writeln!(f)?;
        for actual in &labels {
            write!(f, "{actual:>width$} |")?;
            for predicted in &labels {
                write!(f, " {:>width$}", self.count(actual, predicted))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy::<u32>(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
        assert_eq!(accuracy(&[1, 2], &[2, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn accuracy_rejects_mismatched_lengths() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn matrix_counts_and_recall() {
        let mut cm = ConfusionMatrix::new();
        for _ in 0..8 {
            cm.record("a", "a");
        }
        for _ in 0..2 {
            cm.record("a", "b");
        }
        for _ in 0..10 {
            cm.record("b", "b");
        }
        assert_eq!(cm.count("a", "a"), 8);
        assert_eq!(cm.row_total("a"), 10);
        assert_eq!(cm.recall("a"), Some(0.8));
        assert_eq!(cm.recall("b"), Some(1.0));
        assert_eq!(cm.recall("zzz"), None);
        assert!((cm.macro_recall() - 0.9).abs() < 1e-9);
        assert!((cm.overall_accuracy() - 0.9).abs() < 1e-9);
        assert_eq!(cm.total(), 20);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::new();
        a.record("x", "x");
        let mut b = ConfusionMatrix::new();
        b.record("x", "y");
        b.record("x", "x");
        a.merge(&b);
        assert_eq!(a.count("x", "x"), 2);
        assert_eq!(a.count("x", "y"), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn labels_include_predicted_only_classes() {
        let mut cm = ConfusionMatrix::new();
        cm.record("a", "phantom");
        assert_eq!(cm.labels(), vec!["a".to_string(), "phantom".to_string()]);
    }

    #[test]
    fn display_renders_all_cells() {
        let mut cm = ConfusionMatrix::new();
        cm.record("one", "one");
        cm.record("one", "two");
        cm.record("two", "two");
        let rendered = cm.to_string();
        assert!(rendered.contains("A\\P"));
        assert!(rendered.lines().count() >= 3);
    }
}
