//! Line-oriented text codec for trained Random Forests.
//!
//! Companion to `sentinel-fingerprint`'s dataset codec: models stay
//! diff-able and inspectable, and the workspace stays inside its
//! approved dependency set (no `serde_json`). Thresholds are written
//! as IEEE-754 bit patterns in hex, so round-trips are exact.
//!
//! ```text
//! forest v1 <n_trees> <n_classes> <n_features>
//! tree <n_nodes>
//! l <count_0> <count_1> ... <count_{n_classes-1}>
//! s <feature> <threshold_bits_hex> <left> <right>
//! ...
//! end forest
//! ```
//!
//! [`read_forest`] consumes exactly one forest block from the reader,
//! so blocks can be embedded inside larger documents (the
//! `sentinel-core` identifier codec does this).
//!
//! # Example
//!
//! ```
//! use sentinel_ml::{codec, ForestConfig, RandomForest};
//!
//! let samples = vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]];
//! let labels = vec![0, 0, 1, 1];
//! let forest = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), 1)?;
//!
//! let mut buf = Vec::new();
//! codec::write_forest(&mut buf, &forest)?;
//! let back = codec::read_forest(&mut buf.as_slice())?;
//! assert_eq!(back.predict(&[0.95])?, forest.predict(&[0.95])?);
//! # Ok::<(), sentinel_ml::MlError>(())
//! ```

use std::io::{BufRead, Write};

use crate::error::MlError;
use crate::forest::RandomForest;
use crate::tree::{DecisionTree, Node};

/// Writes one forest block to `w` (a `&mut` writer also works).
///
/// # Errors
///
/// Returns [`MlError::Io`] for underlying write failures.
pub fn write_forest<W: Write>(mut w: W, forest: &RandomForest) -> Result<(), MlError> {
    writeln!(
        w,
        "forest v1 {} {} {}",
        forest.n_trees(),
        forest.n_classes(),
        forest.n_features()
    )?;
    for tree in forest.trees() {
        writeln!(w, "tree {}", tree.node_count())?;
        for node in tree.nodes() {
            match node {
                Node::Leaf { counts } => {
                    let rendered: Vec<String> = counts.iter().map(u32::to_string).collect();
                    writeln!(w, "l {}", rendered.join(" "))?;
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    writeln!(w, "s {feature} {:08x} {left} {right}", threshold.to_bits())?;
                }
            }
        }
    }
    writeln!(w, "end forest")?;
    Ok(())
}

/// Reads exactly one forest block from `r` (pass `&mut reader` to keep
/// reading the surrounding document afterwards).
///
/// # Errors
///
/// Returns [`MlError::Parse`] with a 1-based line number relative to
/// the block start for malformed input, and [`MlError::Io`] for
/// underlying read failures. Structural invariants (child indices,
/// histogram sizes, dimensionality agreement) are re-validated on
/// load, so a hand-edited file cannot produce a tree whose traversal
/// would not terminate.
pub fn read_forest<R: BufRead>(mut r: R) -> Result<RandomForest, MlError> {
    let mut line_no = 0usize;
    let header = read_line(&mut r, &mut line_no)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("forest") || parts.next() != Some("v1") {
        return Err(parse_err(line_no, "expected `forest v1` header"));
    }
    let n_trees: usize = parse_field(&mut parts, line_no, "tree count")?;
    let n_classes: usize = parse_field(&mut parts, line_no, "class count")?;
    let n_features: usize = parse_field(&mut parts, line_no, "feature count")?;

    let mut trees = Vec::with_capacity(n_trees);
    for _ in 0..n_trees {
        let tree_header = read_line(&mut r, &mut line_no)?;
        let mut parts = tree_header.split_whitespace();
        if parts.next() != Some("tree") {
            return Err(parse_err(line_no, "expected `tree <n_nodes>`"));
        }
        let n_nodes: usize = parse_field(&mut parts, line_no, "node count")?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let line = read_line(&mut r, &mut line_no)?;
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("l") => {
                    let counts: Vec<u32> = parts
                        .map(|t| t.parse().map_err(|_| parse_err(line_no, "bad leaf count")))
                        .collect::<Result<_, _>>()?;
                    nodes.push(Node::Leaf { counts });
                }
                Some("s") => {
                    let feature: usize = parse_field(&mut parts, line_no, "split feature")?;
                    let bits_token = parts
                        .next()
                        .ok_or_else(|| parse_err(line_no, "missing threshold"))?;
                    let bits = u32::from_str_radix(bits_token, 16)
                        .map_err(|_| parse_err(line_no, "bad threshold bit pattern"))?;
                    let left: usize = parse_field(&mut parts, line_no, "left child")?;
                    let right: usize = parse_field(&mut parts, line_no, "right child")?;
                    nodes.push(Node::Split {
                        feature,
                        threshold: f32::from_bits(bits),
                        left,
                        right,
                    });
                }
                _ => return Err(parse_err(line_no, "expected `l ...` or `s ...` node line")),
            }
        }
        trees.push(
            DecisionTree::from_parts(nodes, n_classes, n_features)
                .map_err(|e| parse_err(line_no, &e.to_string()))?,
        );
    }
    let footer = read_line(&mut r, &mut line_no)?;
    if footer.trim() != "end forest" {
        return Err(parse_err(line_no, "expected `end forest` footer"));
    }
    RandomForest::from_parts(trees, n_classes, n_features)
        .map_err(|e| parse_err(line_no, &e.to_string()))
}

fn read_line<R: BufRead>(r: &mut R, line_no: &mut usize) -> Result<String, MlError> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    *line_no += 1;
    if n == 0 {
        return Err(parse_err(*line_no, "unexpected end of input"));
    }
    Ok(line.trim_end().to_string())
}

fn parse_err(line: usize, message: &str) -> MlError {
    MlError::Parse {
        line,
        message: message.to_string(),
    }
}

fn parse_field<'a, I: Iterator<Item = &'a str>>(
    parts: &mut I,
    line_no: usize,
    what: &str,
) -> Result<usize, MlError> {
    parts
        .next()
        .ok_or_else(|| parse_err(line_no, &format!("missing {what}")))?
        .parse()
        .map_err(|_| parse_err(line_no, &format!("bad {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;

    fn trained_forest() -> RandomForest {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            samples.push(vec![i as f32, (i * 7 % 13) as f32]);
            labels.push(usize::from(i >= 15));
        }
        RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), 11).expect("fits")
    }

    #[test]
    fn round_trip_preserves_every_prediction() {
        let forest = trained_forest();
        let mut buf = Vec::new();
        write_forest(&mut buf, &forest).expect("writes");
        let back = read_forest(&mut buf.as_slice()).expect("reads");
        assert_eq!(back.n_trees(), forest.n_trees());
        for i in 0..40 {
            let sample = [i as f32, (i * 3 % 17) as f32];
            assert_eq!(
                back.predict_proba(&sample).unwrap(),
                forest.predict_proba(&sample).unwrap(),
                "prediction differs at {sample:?}"
            );
        }
    }

    #[test]
    fn embedded_block_leaves_reader_positioned_after_it() {
        let forest = trained_forest();
        let mut buf = Vec::new();
        write_forest(&mut buf, &forest).expect("writes");
        buf.extend_from_slice(b"trailing document content\n");
        let mut reader = buf.as_slice();
        let _ = read_forest(&mut reader).expect("reads");
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
        assert_eq!(rest, "trailing document content\n");
    }

    #[test]
    fn truncated_input_reports_line() {
        let forest = trained_forest();
        let mut buf = Vec::new();
        write_forest(&mut buf, &forest).expect("writes");
        buf.truncate(buf.len() / 2);
        let err = read_forest(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, MlError::Parse { .. }), "got {err:?}");
    }

    #[test]
    fn corrupt_child_index_is_rejected() {
        // A split pointing at itself must not survive validation.
        let doc = "forest v1 1 2 1\ntree 1\ns 0 3f800000 0 0\nend forest\n";
        let err = read_forest(&mut doc.as_bytes()).unwrap_err();
        assert!(matches!(err, MlError::Parse { .. }), "got {err:?}");
    }

    #[test]
    fn wrong_header_is_rejected() {
        let err = read_forest(&mut "woods v1 1 2 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, MlError::Parse { line: 1, .. }), "got {err:?}");
    }

    #[test]
    fn leaf_histogram_size_is_enforced() {
        let doc = "forest v1 1 3 1\ntree 1\nl 4 5\nend forest\n";
        let err = read_forest(&mut doc.as_bytes()).unwrap_err();
        assert!(matches!(err, MlError::Parse { .. }), "got {err:?}");
    }
}
