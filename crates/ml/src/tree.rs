//! CART decision trees with Gini-impurity splitting.
//!
//! Each tree greedily picks, at every node, the `(feature, threshold)`
//! pair minimising the weighted Gini impurity of the two children,
//! considering only a random subset of features per node (the "random"
//! in Random Forest). Thresholds are midpoints between distinct
//! adjacent sorted values.

use rand::Rng;

use crate::error::MlError;
use crate::sampler::sample_without_replacement;

/// How many features to examine at each split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSubsample {
    /// √d features (Breiman's default for classification).
    Sqrt,
    /// log₂(d)+1 features.
    Log2,
    /// All features (bagged trees without feature randomness).
    All,
    /// A fixed count (clamped to d).
    Fixed(usize),
}

impl FeatureSubsample {
    /// Resolves the subsample size for dimensionality `d`.
    pub fn resolve(self, d: usize) -> usize {
        let n = match self {
            FeatureSubsample::Sqrt => (d as f64).sqrt().round() as usize,
            FeatureSubsample::Log2 => (d as f64).log2().floor() as usize + 1,
            FeatureSubsample::All => d,
            FeatureSubsample::Fixed(n) => n,
        };
        n.clamp(1, d.max(1))
    }
}

/// Decision tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must keep for a split to be valid.
    pub min_samples_leaf: usize,
    /// Per-node feature subsampling policy.
    pub feature_subsample: FeatureSubsample,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 24,
            min_samples_split: 2,
            min_samples_leaf: 1,
            feature_subsample: FeatureSubsample::Sqrt,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node {
    Leaf {
        /// Class-count histogram of the training samples in this leaf.
        counts: Vec<u32>,
    },
    Split {
        feature: usize,
        threshold: f32,
        /// Index of the left child (`<= threshold`).
        left: usize,
        /// Index of the right child (`> threshold`).
        right: usize,
    },
}

/// A trained CART decision tree.
///
/// Normally built through [`crate::RandomForest`]; exposed for tests,
/// ablations and single-tree baselines.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on `samples` (rows) with integer `labels` in
    /// `0..n_classes`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] for an empty training set, mismatched
    /// sample/label counts, inconsistent dimensions or out-of-range
    /// labels.
    pub fn fit<R: Rng>(
        samples: &[Vec<f32>],
        labels: &[usize],
        n_classes: usize,
        config: &TreeConfig,
        rng: &mut R,
    ) -> Result<Self, MlError> {
        validate(samples, labels, n_classes)?;
        let n_features = samples[0].len();
        let indices: Vec<usize> = (0..samples.len()).collect();
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes,
            n_features,
        };
        tree.build(samples, labels, indices, 0, config, rng);
        Ok(tree)
    }

    /// Reassembles a tree from its flat node list (the persistence
    /// path), validating the same invariants `fit` guarantees: leaf
    /// histograms sized to `n_classes`, split features within
    /// `n_features`, and child indices that point strictly forward (so
    /// traversal always terminates).
    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        n_classes: usize,
        n_features: usize,
    ) -> Result<Self, MlError> {
        if nodes.is_empty() {
            return Err(MlError::BadConfig("tree has no nodes".into()));
        }
        if n_classes == 0 || n_features == 0 {
            return Err(MlError::BadConfig(
                "tree needs at least one class and one feature".into(),
            ));
        }
        for (idx, node) in nodes.iter().enumerate() {
            match node {
                Node::Leaf { counts } => {
                    if counts.len() != n_classes {
                        return Err(MlError::BadConfig(format!(
                            "leaf {idx} has {} class counts, expected {n_classes}",
                            counts.len()
                        )));
                    }
                }
                Node::Split {
                    feature,
                    left,
                    right,
                    ..
                } => {
                    if *feature >= n_features {
                        return Err(MlError::BadConfig(format!(
                            "split {idx} tests feature {feature}, dimension is {n_features}"
                        )));
                    }
                    if *left <= idx
                        || *right <= idx
                        || *left >= nodes.len()
                        || *right >= nodes.len()
                    {
                        return Err(MlError::BadConfig(format!(
                            "split {idx} has invalid children {left}/{right} (nodes: {})",
                            nodes.len()
                        )));
                    }
                }
            }
        }
        Ok(DecisionTree {
            nodes,
            n_classes,
            n_features,
        })
    }

    /// The flat node list (children of node `i` always have indices
    /// greater than `i`).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of classes the tree was trained with.
    pub(crate) fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Training feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Predicts the class of `sample`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for a wrong-length sample.
    pub fn predict(&self, sample: &[f32]) -> Result<usize, MlError> {
        let counts = self.leaf_counts(sample)?;
        Ok(argmax(counts))
    }

    /// Returns the class-count histogram of the leaf `sample` lands in.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for a wrong-length sample.
    pub fn leaf_counts(&self, sample: &[f32]) -> Result<&[u32], MlError> {
        if sample.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: sample.len(),
            });
        }
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { counts } => return Ok(counts),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if sample[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn build<R: Rng>(
        &mut self,
        samples: &[Vec<f32>],
        labels: &[usize],
        indices: Vec<usize>,
        depth: usize,
        config: &TreeConfig,
        rng: &mut R,
    ) -> usize {
        let counts = class_counts(labels, &indices, self.n_classes);
        let node_impurity = gini(&counts, indices.len());
        let stop = depth >= config.max_depth
            || indices.len() < config.min_samples_split
            || node_impurity == 0.0;
        if !stop {
            if let Some(split) = self.find_best_split(samples, labels, &indices, config, rng) {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|i| samples[**i][split.feature] <= split.threshold);
                if left_idx.len() >= config.min_samples_leaf
                    && right_idx.len() >= config.min_samples_leaf
                {
                    let node_index = self.nodes.len();
                    self.nodes.push(Node::Split {
                        feature: split.feature,
                        threshold: split.threshold,
                        left: 0,
                        right: 0,
                    });
                    let left = self.build(samples, labels, left_idx, depth + 1, config, rng);
                    let right = self.build(samples, labels, right_idx, depth + 1, config, rng);
                    if let Node::Split {
                        left: l, right: r, ..
                    } = &mut self.nodes[node_index]
                    {
                        *l = left;
                        *r = right;
                    }
                    return node_index;
                }
            }
        }
        let node_index = self.nodes.len();
        self.nodes.push(Node::Leaf { counts });
        node_index
    }

    fn find_best_split<R: Rng>(
        &self,
        samples: &[Vec<f32>],
        labels: &[usize],
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut R,
    ) -> Option<SplitCandidate> {
        let k = config.feature_subsample.resolve(self.n_features);
        // Walk a full random permutation of features, but only count
        // features that actually offer a split (non-constant over this
        // node) against the subsample budget k. This mirrors sklearn's
        // splitter and keeps trees useful on sparse feature vectors
        // like F′, where most features are constant in any given node.
        let features = sample_without_replacement(self.n_features, self.n_features, rng);
        let mut useful_seen = 0usize;
        let parent_counts = class_counts(labels, indices, self.n_classes);
        let parent_gini = gini(&parent_counts, indices.len());
        let n = indices.len() as f64;
        let mut best: Option<SplitCandidate> = None;
        for feature in features {
            if useful_seen >= k {
                break;
            }
            // Sort indices by this feature's value.
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|a, b| {
                samples[*a][feature]
                    .partial_cmp(&samples[*b][feature])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_counts = vec![0u32; self.n_classes];
            let mut left_n = 0usize;
            let mut feature_useful = false;
            for w in 0..order.len() - 1 {
                let idx = order[w];
                left_counts[labels[idx]] += 1;
                left_n += 1;
                let cur = samples[idx][feature];
                let next = samples[order[w + 1]][feature];
                if cur == next {
                    continue; // can't split between equal values
                }
                feature_useful = true;
                let right_n = indices.len() - left_n;
                let right_counts: Vec<u32> = parent_counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(p, l)| p - l)
                    .collect();
                let weighted = (left_n as f64 / n) * gini(&left_counts, left_n)
                    + (right_n as f64 / n) * gini(&right_counts, right_n);
                let gain = parent_gini - weighted;
                // Zero-gain splits are accepted (as in sklearn's CART):
                // XOR-like structure has no first split with positive
                // gain, yet deeper splits separate it perfectly. Node
                // size strictly decreases, so recursion terminates.
                if gain >= 0.0 && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(SplitCandidate {
                        feature,
                        threshold: midpoint(cur, next),
                        gain,
                    });
                }
            }
            if feature_useful {
                useful_seen += 1;
            }
        }
        best
    }
}

#[derive(Debug)]
struct SplitCandidate {
    feature: usize,
    threshold: f32,
    gain: f64,
}

/// Midpoint of two floats that is guaranteed to be `>= a` and `< b`
/// under f32 rounding.
fn midpoint(a: f32, b: f32) -> f32 {
    let mid = a + (b - a) / 2.0;
    if mid >= b {
        a
    } else {
        mid
    }
}

fn class_counts(labels: &[usize], indices: &[usize], n_classes: usize) -> Vec<u32> {
    let mut counts = vec![0u32; n_classes];
    for &i in indices {
        counts[labels[i]] += 1;
    }
    counts
}

/// Gini impurity of a class histogram over `total` samples.
fn gini(counts: &[u32], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|c| {
            let p = f64::from(*c) / t;
            p * p
        })
        .sum::<f64>()
}

fn argmax(counts: &[u32]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| **c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

pub(crate) fn validate(
    samples: &[Vec<f32>],
    labels: &[usize],
    n_classes: usize,
) -> Result<(), MlError> {
    if samples.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    if samples.len() != labels.len() {
        return Err(MlError::LabelCountMismatch {
            samples: samples.len(),
            labels: labels.len(),
        });
    }
    let d = samples[0].len();
    if d == 0 {
        return Err(MlError::BadConfig("samples have zero features".into()));
    }
    for s in samples {
        if s.len() != d {
            return Err(MlError::DimensionMismatch {
                expected: d,
                got: s.len(),
            });
        }
    }
    for &l in labels {
        if l >= n_classes {
            return Err(MlError::LabelOutOfRange {
                label: l,
                classes: n_classes,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn gini_values() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-9);
        assert!((gini(&[2, 2, 2, 2], 8) - 0.75).abs() < 1e-9);
        assert_eq!(gini(&[], 0), 0.0);
    }

    #[test]
    fn learns_single_threshold() {
        let samples: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32]).collect();
        let labels: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let config = TreeConfig {
            feature_subsample: FeatureSubsample::All,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&samples, &labels, 2, &config, &mut rng()).unwrap();
        for i in 0..40 {
            assert_eq!(tree.predict(&[i as f32]).unwrap(), usize::from(i >= 20));
        }
        // Perfectly separable 1D data needs exactly one split.
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn learns_xor_with_depth() {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for x in 0..2 {
            for y in 0..2 {
                for _ in 0..10 {
                    samples.push(vec![x as f32, y as f32]);
                    labels.push(x ^ y);
                }
            }
        }
        let config = TreeConfig {
            feature_subsample: FeatureSubsample::All,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&samples, &labels, 2, &config, &mut rng()).unwrap();
        assert_eq!(tree.predict(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(tree.predict(&[1.0, 0.0]).unwrap(), 1);
        assert_eq!(tree.predict(&[0.0, 1.0]).unwrap(), 1);
        assert_eq!(tree.predict(&[1.0, 1.0]).unwrap(), 0);
    }

    #[test]
    fn max_depth_zero_gives_single_leaf() {
        let samples: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let labels: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let config = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&samples, &labels, 2, &config, &mut rng()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn pure_node_stops_splitting() {
        let samples: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let labels = vec![1usize; 10];
        let tree =
            DecisionTree::fit(&samples, &labels, 2, &TreeConfig::default(), &mut rng()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[100.0]).unwrap(), 1);
    }

    #[test]
    fn constant_features_cannot_split() {
        let samples: Vec<Vec<f32>> = (0..10).map(|_| vec![3.0, 3.0]).collect();
        let labels: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let tree =
            DecisionTree::fit(&samples, &labels, 2, &TreeConfig::default(), &mut rng()).unwrap();
        assert_eq!(tree.node_count(), 1, "no valid split exists");
    }

    #[test]
    fn validation_errors() {
        let empty: Vec<Vec<f32>> = Vec::new();
        assert_eq!(
            DecisionTree::fit(&empty, &[], 2, &TreeConfig::default(), &mut rng()).unwrap_err(),
            MlError::EmptyTrainingSet
        );
        let samples = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            DecisionTree::fit(&samples, &[0], 2, &TreeConfig::default(), &mut rng()).unwrap_err(),
            MlError::LabelCountMismatch { .. }
        ));
        let ragged = vec![vec![1.0], vec![2.0, 3.0]];
        assert!(matches!(
            DecisionTree::fit(&ragged, &[0, 1], 2, &TreeConfig::default(), &mut rng()).unwrap_err(),
            MlError::DimensionMismatch { .. }
        ));
        let samples = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            DecisionTree::fit(&samples, &[0, 5], 2, &TreeConfig::default(), &mut rng())
                .unwrap_err(),
            MlError::LabelOutOfRange { .. }
        ));
    }

    #[test]
    fn predict_rejects_wrong_dimension() {
        let samples = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let tree =
            DecisionTree::fit(&samples, &[0, 1], 2, &TreeConfig::default(), &mut rng()).unwrap();
        assert!(matches!(
            tree.predict(&[1.0]).unwrap_err(),
            MlError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn feature_subsample_resolution() {
        assert_eq!(FeatureSubsample::Sqrt.resolve(276), 17);
        assert_eq!(FeatureSubsample::Log2.resolve(276), 9);
        assert_eq!(FeatureSubsample::All.resolve(276), 276);
        assert_eq!(FeatureSubsample::Fixed(5).resolve(276), 5);
        assert_eq!(FeatureSubsample::Fixed(500).resolve(276), 276);
        assert_eq!(FeatureSubsample::Fixed(0).resolve(276), 1);
        assert_eq!(FeatureSubsample::Sqrt.resolve(1), 1);
    }

    #[test]
    fn midpoint_never_reaches_upper() {
        assert!(midpoint(1.0, 1.0000001) < 1.0000001);
        assert!(midpoint(0.0, 1.0) == 0.5);
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        assert!(midpoint(a, b) < b);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let samples: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        // One odd sample out: splitting it off would need a leaf of 1.
        let labels = vec![0, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let config = TreeConfig {
            min_samples_leaf: 3,
            feature_subsample: FeatureSubsample::All,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&samples, &labels, 2, &config, &mut rng()).unwrap();
        assert_eq!(tree.node_count(), 1, "split would violate min_samples_leaf");
    }
}
