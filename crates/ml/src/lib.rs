//! Random Forest classification built from scratch for IoT Sentinel.
//!
//! The paper's stage-one classifiers are Random Forests (Breiman 2001,
//! cited as \[23\]). This crate implements the full algorithm with no
//! external ML dependency:
//!
//! * [`tree`] — CART decision trees: Gini-impurity splits over
//!   per-node random feature subsets (√d by default), midpoint
//!   thresholds, depth/size stopping rules.
//! * [`forest`] — bootstrap-aggregated ensembles of those trees with
//!   majority voting and vote-fraction probabilities. Training is
//!   parallelised across trees with `crossbeam` scoped threads while
//!   remaining bit-for-bit deterministic for a given seed.
//! * [`compiled`] — flat-arena compilation of whole *banks* of binary
//!   forests: packed 16-byte branch nodes, leaves folded into tagged
//!   child references, early-exit voting, allocation- and panic-free
//!   evaluation. The representation behind the identification hot
//!   path, with a thread-sharded scan for very large banks.
//! * [`index`] — the feature-usage prefilter over compiled banks:
//!   per-forest tested-stripe bitmaps plus cached all-default
//!   verdicts, so queries skip forests that never look at their
//!   nonzero features.
//! * [`metrics`] — accuracy and labelled confusion matrices (the shapes
//!   reported in Fig. 5 and Table III).
//! * [`sampler`] — bootstrap and without-replacement index sampling
//!   (also used by `sentinel-core` for the 10×n negative subsampling).
//!
//! # Example
//!
//! ```
//! use sentinel_ml::{ForestConfig, RandomForest};
//!
//! // Learn y = (x0 > 0.5) from noisy data.
//! let samples: Vec<Vec<f32>> = (0..100)
//!     .map(|i| vec![i as f32 / 100.0, (i % 7) as f32])
//!     .collect();
//! let labels: Vec<usize> = (0..100).map(|i| usize::from(i >= 50)).collect();
//! let forest = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), 42)?;
//! assert_eq!(forest.predict(&[0.9, 3.0])?, 1);
//! assert_eq!(forest.predict(&[0.1, 3.0])?, 0);
//! # Ok::<(), sentinel_ml::MlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod compiled;
pub mod error;
pub mod forest;
pub mod index;
pub mod metrics;
pub mod quant;
pub mod sampler;
pub mod tree;

pub use compiled::{
    CompiledBank, CompiledBankBuilder, ForestSpan, PackedNode, ScanCounters, ScanSnapshot,
    ShardScratch, CLUSTER_MIN_FORESTS, PREFILTER_MIN_FORESTS, SHARDED_MIN_FORESTS,
};
pub use error::MlError;
pub use forest::{ForestConfig, RandomForest};
pub use index::{BankIndex, ClusterGroup, ClusterIndex, IndexRow, MAX_STRIPES};
pub use metrics::{accuracy, ConfusionMatrix};
pub use quant::{
    QuantBank, QuantNode, ThresholdCodebook, QUANT_FEATURE_MASK, QUANT_LEFT_LEAF, QUANT_LEFT_VOTE,
};
pub use tree::{DecisionTree, FeatureSubsample, TreeConfig};
