//! Bootstrap-aggregated Random Forests.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::MlError;
use crate::sampler::bootstrap_indices;
use crate::tree::{validate, DecisionTree, TreeConfig};

/// Random Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Whether each tree trains on a bootstrap resample (true for the
    /// standard algorithm) or the full set.
    pub bootstrap: bool,
    /// Train trees across this many threads (1 = serial). Training is
    /// deterministic for a given seed regardless of thread count.
    pub threads: usize,
}

impl Default for ForestConfig {
    /// 33 trees, √d features per split, bootstrap on — the shape of the
    /// classifiers in the paper's evaluation.
    fn default() -> Self {
        ForestConfig {
            n_trees: 33,
            tree: TreeConfig::default(),
            bootstrap: true,
            threads: 1,
        }
    }
}

/// A trained Random Forest classifier.
///
/// # Examples
///
/// ```
/// use sentinel_ml::{ForestConfig, RandomForest};
///
/// let samples = vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]];
/// let labels = vec![0, 0, 1, 1];
/// let forest = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), 1)?;
/// let proba = forest.predict_proba(&[0.95])?;
/// assert!(proba[1] > proba[0]);
/// # Ok::<(), sentinel_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForest {
    /// Fits a forest on `samples` with labels in `0..n_classes`,
    /// deterministically for the given `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] for an empty/ragged training set,
    /// out-of-range labels, or a zero-tree configuration.
    pub fn fit(
        samples: &[Vec<f32>],
        labels: &[usize],
        n_classes: usize,
        config: &ForestConfig,
        seed: u64,
    ) -> Result<Self, MlError> {
        validate(samples, labels, n_classes)?;
        if config.n_trees == 0 {
            return Err(MlError::BadConfig("n_trees must be at least 1".into()));
        }
        let n_features = samples[0].len();
        // Every tree gets an independent, index-derived seed so results
        // do not depend on scheduling.
        let fit_one = |tree_index: usize| -> Result<DecisionTree, MlError> {
            let mut rng = SmallRng::seed_from_u64(
                seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tree_index as u64 + 1)),
            );
            if config.bootstrap {
                let picked = bootstrap_indices(samples.len(), &mut rng);
                let boot_samples: Vec<Vec<f32>> =
                    picked.iter().map(|i| samples[*i].clone()).collect();
                let boot_labels: Vec<usize> = picked.iter().map(|i| labels[*i]).collect();
                DecisionTree::fit(
                    &boot_samples,
                    &boot_labels,
                    n_classes,
                    &config.tree,
                    &mut rng,
                )
            } else {
                DecisionTree::fit(samples, labels, n_classes, &config.tree, &mut rng)
            }
        };
        let trees: Vec<DecisionTree> = if config.threads <= 1 || config.n_trees == 1 {
            (0..config.n_trees).map(fit_one).collect::<Result<_, _>>()?
        } else {
            Self::fit_parallel(config.n_trees, config.threads, &fit_one)?
        };
        Ok(RandomForest {
            trees,
            n_classes,
            n_features,
        })
    }

    fn fit_parallel(
        n_trees: usize,
        threads: usize,
        fit_one: &(dyn Fn(usize) -> Result<DecisionTree, MlError> + Sync),
    ) -> Result<Vec<DecisionTree>, MlError> {
        let mut slots: Vec<Option<Result<DecisionTree, MlError>>> = Vec::new();
        slots.resize_with(n_trees, || None);
        let threads = threads.min(n_trees);
        crossbeam::thread::scope(|scope| {
            for (worker, chunk) in slots.chunks_mut(n_trees.div_ceil(threads)).enumerate() {
                let base = worker * n_trees.div_ceil(threads);
                scope.spawn(move |_| {
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(fit_one(base + offset));
                    }
                });
            }
        })
        .expect("tree-training worker panicked");
        slots
            .into_iter()
            .map(|slot| slot.expect("all slots filled"))
            .collect()
    }

    /// Reassembles a forest from trained trees (the persistence path),
    /// checking that every tree agrees on class count and feature
    /// dimensionality.
    pub(crate) fn from_parts(
        trees: Vec<DecisionTree>,
        n_classes: usize,
        n_features: usize,
    ) -> Result<Self, MlError> {
        if trees.is_empty() {
            return Err(MlError::BadConfig("forest has no trees".into()));
        }
        for (idx, tree) in trees.iter().enumerate() {
            if tree.n_classes() != n_classes {
                return Err(MlError::BadConfig(format!(
                    "tree {idx} has {} classes, forest declares {n_classes}",
                    tree.n_classes()
                )));
            }
            if tree.n_features() != n_features {
                return Err(MlError::DimensionMismatch {
                    expected: n_features,
                    got: tree.n_features(),
                });
            }
        }
        Ok(RandomForest {
            trees,
            n_classes,
            n_features,
        })
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Training feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The individual trees (for ensemble inspection).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Predicts the majority-vote class for `sample`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for a wrong-length sample.
    pub fn predict(&self, sample: &[f32]) -> Result<usize, MlError> {
        let proba = self.predict_proba(sample)?;
        Ok(proba
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Predicts per-class vote fractions (each tree votes for its leaf
    /// majority; fractions sum to 1).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for a wrong-length sample.
    pub fn predict_proba(&self, sample: &[f32]) -> Result<Vec<f32>, MlError> {
        let mut votes = vec![0u32; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict(sample)?] += 1;
        }
        let total = self.trees.len() as f32;
        Ok(votes.into_iter().map(|v| v as f32 / total).collect())
    }

    /// The fraction of trees voting for class 1, computed without any
    /// heap allocation — the hot-path form of `predict_proba(..)[1]`
    /// for the binary (one-vs-rest) classifiers of the identification
    /// pipeline. Bit-identical to `predict_proba(sample)?[1]`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for a wrong-length sample
    /// and [`MlError::BadConfig`] when the forest has fewer than two
    /// classes (no positive class exists).
    pub fn positive_vote_fraction(&self, sample: &[f32]) -> Result<f32, MlError> {
        if self.n_classes < 2 {
            return Err(MlError::BadConfig(
                "positive_vote_fraction needs a positive class (n_classes >= 2)".into(),
            ));
        }
        let mut votes = 0u32;
        for tree in &self.trees {
            votes += u32::from(tree.predict(sample)? == 1);
        }
        Ok(votes as f32 / self.trees.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::FeatureSubsample;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// Two noisy interleaved half-moons flattened to a rectangle task:
    /// class = x0 > 0.5 with 10% label noise.
    fn noisy_threshold_data(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f32 = rng.gen();
            let noise: f32 = rng.gen();
            let y = rng.gen::<f32>();
            let mut label = usize::from(x > 0.5);
            if noise < 0.1 {
                label = 1 - label;
            }
            samples.push(vec![x, y]);
            labels.push(label);
        }
        (samples, labels)
    }

    #[test]
    fn forest_fits_and_predicts() {
        let (samples, labels) = noisy_threshold_data(300, 1);
        let forest = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), 7).unwrap();
        assert_eq!(forest.n_trees(), 33);
        assert_eq!(forest.predict(&[0.95, 0.5]).unwrap(), 1);
        assert_eq!(forest.predict(&[0.05, 0.5]).unwrap(), 0);
    }

    #[test]
    fn proba_sums_to_one() {
        let (samples, labels) = noisy_threshold_data(100, 2);
        let forest = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), 7).unwrap();
        let p = forest.predict_proba(&[0.7, 0.2]).unwrap();
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn positive_vote_fraction_matches_predict_proba() {
        let (samples, labels) = noisy_threshold_data(200, 9);
        let forest = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), 13).unwrap();
        for i in 0..40 {
            let x = vec![i as f32 / 40.0, 0.6];
            assert_eq!(
                forest.positive_vote_fraction(&x).unwrap(),
                forest.predict_proba(&x).unwrap()[1],
                "fractions must be bit-identical at {x:?}"
            );
        }
        assert!(forest.positive_vote_fraction(&[0.5]).is_err());
    }

    #[test]
    fn positive_vote_fraction_needs_two_classes() {
        let samples = vec![vec![1.0], vec![2.0]];
        let forest = RandomForest::fit(&samples, &[0, 0], 1, &ForestConfig::default(), 1).unwrap();
        assert!(matches!(
            forest.positive_vote_fraction(&[1.0]).unwrap_err(),
            MlError::BadConfig(_)
        ));
    }

    #[test]
    fn deterministic_for_seed() {
        let (samples, labels) = noisy_threshold_data(200, 3);
        let grid: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32 / 50.0, 0.5]).collect();
        let f1 = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), 99).unwrap();
        let f2 = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), 99).unwrap();
        for g in &grid {
            assert_eq!(f1.predict_proba(g).unwrap(), f2.predict_proba(g).unwrap());
        }
    }

    #[test]
    fn parallel_training_matches_serial() {
        let (samples, labels) = noisy_threshold_data(200, 4);
        let serial_cfg = ForestConfig {
            threads: 1,
            ..ForestConfig::default()
        };
        let parallel_cfg = ForestConfig {
            threads: 4,
            ..ForestConfig::default()
        };
        let serial = RandomForest::fit(&samples, &labels, 2, &serial_cfg, 11).unwrap();
        let parallel = RandomForest::fit(&samples, &labels, 2, &parallel_cfg, 11).unwrap();
        for i in 0..30 {
            let x = vec![i as f32 / 30.0, 0.3];
            assert_eq!(
                serial.predict_proba(&x).unwrap(),
                parallel.predict_proba(&x).unwrap(),
                "thread count must not change results"
            );
        }
    }

    #[test]
    fn forest_beats_single_tree_on_noise() {
        let (samples, labels) = noisy_threshold_data(400, 5);
        let (test_samples, test_labels) = noisy_threshold_data(400, 6);
        let tree_cfg = TreeConfig {
            feature_subsample: FeatureSubsample::All,
            ..TreeConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(8);
        let tree = DecisionTree::fit(&samples, &labels, 2, &tree_cfg, &mut rng).unwrap();
        let forest = RandomForest::fit(
            &samples,
            &labels,
            2,
            &ForestConfig {
                n_trees: 60,
                ..ForestConfig::default()
            },
            8,
        )
        .unwrap();
        let acc = |preds: Vec<usize>| {
            preds
                .iter()
                .zip(&test_labels)
                .filter(|(p, t)| p == t)
                .count() as f64
                / test_labels.len() as f64
        };
        let tree_acc = acc(test_samples
            .iter()
            .map(|s| tree.predict(s).unwrap())
            .collect());
        let forest_acc = acc(test_samples
            .iter()
            .map(|s| forest.predict(s).unwrap())
            .collect());
        assert!(
            forest_acc >= tree_acc - 0.02,
            "forest {forest_acc} should not lose badly to single tree {tree_acc}"
        );
        assert!(
            forest_acc > 0.8,
            "forest should learn the rule, got {forest_acc}"
        );
    }

    #[test]
    fn rejects_zero_trees() {
        let samples = vec![vec![1.0], vec![2.0]];
        let cfg = ForestConfig {
            n_trees: 0,
            ..ForestConfig::default()
        };
        assert!(matches!(
            RandomForest::fit(&samples, &[0, 1], 2, &cfg, 1).unwrap_err(),
            MlError::BadConfig(_)
        ));
    }

    #[test]
    fn rejects_wrong_dimension_at_predict() {
        let samples = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let forest = RandomForest::fit(&samples, &[0, 1], 2, &ForestConfig::default(), 1).unwrap();
        assert!(forest.predict(&[1.0]).is_err());
        assert_eq!(forest.n_features(), 2);
    }

    #[test]
    fn three_class_problem() {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for i in 0..30 {
                samples.push(vec![c as f32 * 10.0 + (i % 3) as f32 * 0.1]);
                labels.push(c);
            }
        }
        let forest = RandomForest::fit(&samples, &labels, 3, &ForestConfig::default(), 5).unwrap();
        assert_eq!(forest.predict(&[0.0]).unwrap(), 0);
        assert_eq!(forest.predict(&[10.0]).unwrap(), 1);
        assert_eq!(forest.predict(&[20.0]).unwrap(), 2);
        assert_eq!(forest.n_classes(), 3);
    }
}
