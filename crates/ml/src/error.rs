//! Error type for classifier training and prediction.

use std::error::Error;
use std::fmt;

/// Errors from Random Forest training or prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// No training samples were provided.
    EmptyTrainingSet,
    /// Samples and labels have different lengths.
    LabelCountMismatch {
        /// Number of samples.
        samples: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A sample's feature count differs from the training dimension.
    DimensionMismatch {
        /// Dimension the model was trained with.
        expected: usize,
        /// Dimension of the offending sample.
        got: usize,
    },
    /// A label was out of range for the declared class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared number of classes.
        classes: usize,
    },
    /// The configuration is unusable.
    BadConfig(String),
    /// A persisted model could not be parsed.
    Parse {
        /// 1-based line number within the model block.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Underlying I/O failure while reading or writing a model (the
    /// original error's message; `std::io::Error` itself is neither
    /// `Clone` nor `PartialEq`).
    Io(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "training set is empty"),
            MlError::LabelCountMismatch { samples, labels } => {
                write!(f, "{samples} samples but {labels} labels")
            }
            MlError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            MlError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            MlError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            MlError::Parse { line, message } => {
                write!(f, "model parse error at line {line}: {message}")
            }
            MlError::Io(msg) => write!(f, "model i/o error: {msg}"),
        }
    }
}

impl Error for MlError {}

impl From<std::io::Error> for MlError {
    fn from(e: std::io::Error) -> Self {
        MlError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_numbers() {
        let e = MlError::DimensionMismatch {
            expected: 276,
            got: 23,
        };
        assert!(e.to_string().contains("276"));
        assert!(e.to_string().contains("23"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<MlError>();
    }
}
