//! Feature-usage index over a compiled classifier bank: the prefilter
//! that lets a query skip most forests without walking a single tree.
//!
//! The observation: a binary forest's verdict on a sample depends only
//! on the feature dimensions its branch nodes actually *test*. IoT
//! Sentinel's F′ vectors are mostly zeros (most of the 23 per-packet
//! features are 0/1 protocol flags, and a device only exercises a
//! handful of protocols), so for many (query, forest) pairs every
//! tested dimension reads the default value `0.0` — and the forest's
//! verdict is **exactly** its verdict on the all-default (all-zero)
//! fingerprint, which can be computed once at compile time.
//!
//! The index stores, per forest, an [`IndexRow`]:
//!
//! * `tested` — a bitmap over *feature stripes*: dimension `d` maps to
//!   bit `d % stripes`. For Sentinel banks `stripes` is 23, so the
//!   bits are exactly the 23 per-packet F′ features (dimension
//!   `23·p + c` carries feature column `c` of packet slot `p`).
//! * `default_accepts` — the forest's precomputed verdict on the
//!   all-zero sample of its own dimensionality.
//!
//! At query time the bank computes the query's nonzero-stripe bitmap
//! **once** ([`BankIndex::sample_bitmap`]); any forest whose `tested`
//! set does not intersect it reads zeros at every tested dimension and
//! is answered from `default_accepts` without touching the arena.
//!
//! Correctness does not depend on the stripe choice: for *any* mapping
//! of dimensions to bits, `tested ∩ nonzero = ∅` implies every tested
//! dimension is zero, hence the walk is identical to the all-zero
//! walk. The stripe count only affects selectivity. (Two float
//! subtleties are load-bearing and covered by tests: `NaN != 0.0` is
//! true, so NaN dimensions always set their stripe bit and are never
//! wrongly skipped; `-0.0 == 0.0`, and `-0.0 <= t` branches exactly
//! like `0.0 <= t`, so treating `-0.0` as default is sound.)
//!
//! An index is **advisory**: [`crate::CompiledBank`] only consults it
//! when [`BankIndex::is_usable`] holds for the bank's forest count,
//! and falls back to the full scan otherwise. Hostile or corrupt index
//! rows (see [`crate::CompiledBank::from_raw_parts_indexed`]) can
//! misroute a forest to its default verdict, but can never cause a
//! panic, unbounded work, or an out-of-bounds access — the corruption
//! battery in `compiled` pins this.

/// Upper bound on the stripe count: bitmaps are `u32`.
pub const MAX_STRIPES: u32 = 32;

/// One forest's entry in the bank index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexRow {
    /// Bitmap of feature stripes tested by the forest's branch nodes
    /// (bit `d % stripes` for every tested dimension `d`).
    pub tested: u32,
    /// The forest's verdict on the all-zero sample of its own
    /// dimensionality, precomputed at compile time.
    pub default_accepts: bool,
}

/// Feature-usage prefilter rows for every forest of a compiled bank.
///
/// Built by [`crate::CompiledBankBuilder`]; assembled directly from
/// rows only for robustness tests and external arena tooling via
/// [`BankIndex::from_rows`] + [`crate::CompiledBank::from_raw_parts_indexed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankIndex {
    stripes: u32,
    /// Union of every row's `tested` bits — lets
    /// [`BankIndex::sample_bitmap`] stop scanning dimensions once no
    /// further bit can change a routing decision.
    tested_union: u32,
    rows: Vec<IndexRow>,
}

impl BankIndex {
    /// An empty index mapping dimensions to `stripes` bit lanes.
    /// A stripe count of zero (or above [`MAX_STRIPES`]) produces a
    /// permanently unusable index — the bank scans fully.
    pub fn new(stripes: u32) -> Self {
        BankIndex {
            stripes,
            tested_union: 0,
            rows: Vec::new(),
        }
    }

    /// A disabled index: never usable, the bank always scans fully.
    pub fn disabled() -> Self {
        BankIndex::new(0)
    }

    /// Assembles an index from externally supplied rows, garbage
    /// welcome — evaluation treats rows as advisory (see the module
    /// docs). Robustness-test / arena-tooling entry point.
    pub fn from_rows(stripes: u32, rows: Vec<IndexRow>) -> Self {
        let tested_union = rows.iter().fold(0, |u, r| u | r.tested);
        BankIndex {
            stripes,
            tested_union,
            rows,
        }
    }

    /// The stripe count dimensions are folded into.
    pub fn stripes(&self) -> u32 {
        self.stripes
    }

    /// The per-forest rows, in forest order.
    pub fn rows(&self) -> &[IndexRow] {
        &self.rows
    }

    /// Appends one forest's row (builder path).
    pub(crate) fn push_row(&mut self, row: IndexRow) {
        self.tested_union |= row.tested;
        self.rows.push(row);
    }

    /// Tiles the rows `times` times (mirror of
    /// [`crate::CompiledBank::repeat`]: every copy keeps its source
    /// forest's row).
    pub(crate) fn repeat(&self, times: usize) -> BankIndex {
        let mut rows = Vec::with_capacity(self.rows.len() * times);
        for _ in 0..times {
            rows.extend_from_slice(&self.rows);
        }
        BankIndex {
            stripes: self.stripes,
            tested_union: self.tested_union,
            rows,
        }
    }

    /// Whether the bank may consult this index: a sane stripe count
    /// and exactly one row per forest. Anything else — including the
    /// row-count mismatches hostile constructions produce — makes the
    /// bank ignore the index and scan fully.
    pub fn is_usable(&self, forest_count: usize) -> bool {
        self.stripes >= 1 && self.stripes <= MAX_STRIPES && self.rows.len() == forest_count
    }

    /// The query's nonzero-stripe bitmap: bit `d % stripes` is set
    /// when some dimension `d` of that stripe holds a value other than
    /// (positive or negative) zero. NaN is "not zero", so NaN
    /// dimensions set their bit.
    ///
    /// Only stripes some forest actually tests are computed — bits
    /// outside the tested union cannot change a routing decision, so
    /// they are left unset. The scan walks each live stripe's
    /// dimensions with stride `stripes` and stops at the first nonzero
    /// value, which makes dense real-world fingerprints (whose active
    /// stripes hit in the first packet slot) cheap: a handful of loads
    /// per stripe instead of a full pass over the sample.
    ///
    /// Allocation-free; computed once per query.
    pub fn sample_bitmap(&self, sample: &[f32]) -> u32 {
        debug_assert!(self.stripes >= 1 && self.stripes <= MAX_STRIPES);
        let stripes = self.stripes as usize;
        let mut bitmap = 0u32;
        let mut remaining = self.tested_union;
        while remaining != 0 {
            let stripe = remaining.trailing_zeros();
            remaining &= remaining - 1;
            if stripe as usize >= stripes {
                // Hostile rows can carry bits no dimension folds to;
                // they never intersect a query and are skipped here.
                continue;
            }
            let mut dim = stripe as usize;
            while dim < sample.len() {
                if sample[dim] != 0.0 {
                    bitmap |= 1 << stripe;
                    break;
                }
                dim += stripes;
            }
        }
        bitmap
    }
}

/// One duplicate-content cluster of a compiled bank's forests.
///
/// Members are **bit-identical** compiled forests (same spans modulo
/// root-table position, same roots and node regions modulo region
/// base): any sample's verdict on one member is its verdict on every
/// member, so a scan only ever has to walk the representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterGroup {
    /// Representative forest index (the group's first member).
    pub rep: u32,
    /// Content digest of the members' compiled form (FNV-1a over the
    /// region-rebased span, roots and nodes).
    pub digest: u64,
    /// Number of member forests.
    pub members: u32,
}

/// Coarse-to-fine cluster index over a compiled bank: forests with
/// bit-identical compiled content share a [`ClusterGroup`], and the
/// clustered scan evaluates each group's representative **once** per
/// query, broadcasting its verdict to every member.
///
/// This is the layer that turns the dense-probe scan from O(arena)
/// into O(distinct arena + forest count): replicated or re-registered
/// device types (the regime the 10⁵/10⁶-type scaling benches model)
/// collapse onto a handful of representatives. Soundness does not rest
/// on the digest — the builder exact-compares candidate members
/// against the representative before joining a group, so a digest
/// collision can only ever split a group, never merge different
/// forests.
///
/// Built only by [`crate::CompiledBankBuilder`]; raw-parts banks carry
/// an empty (never usable) index and scan without clustering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterIndex {
    /// Group id per forest, in forest order.
    group_of: Vec<u32>,
    groups: Vec<ClusterGroup>,
}

impl ClusterIndex {
    /// The per-forest group ids, in forest order.
    pub fn group_of(&self) -> &[u32] {
        &self.group_of
    }

    /// The groups, in creation (first-member) order.
    pub fn groups(&self) -> &[ClusterGroup] {
        &self.groups
    }

    /// Number of distinct content groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Whether a bank with `forest_count` forests may scan through
    /// this index: exactly one group id per forest and at least one
    /// group for a non-empty bank. (Group-id range checks happen per
    /// lookup — an out-of-range id degrades that forest to direct
    /// evaluation, never to a panic.)
    pub fn is_usable(&self, forest_count: usize) -> bool {
        self.group_of.len() == forest_count && (forest_count == 0 || !self.groups.is_empty())
    }

    /// The group behind id `id`, if any.
    #[inline]
    pub fn group(&self, id: u32) -> Option<&ClusterGroup> {
        self.groups.get(id as usize)
    }

    /// Registers forest `forest` as a member of existing group `id`.
    pub(crate) fn join(&mut self, id: u32) {
        self.group_of.push(id);
        if let Some(group) = self.groups.get_mut(id as usize) {
            group.members += 1;
        }
    }

    /// Opens a new group represented by forest `rep` and registers the
    /// representative as its first member. Returns the new group id,
    /// or `None` when the group table is full (the builder then stops
    /// clustering — the index becomes unusable, scans stay correct).
    pub(crate) fn open(&mut self, rep: u32, digest: u64) -> Option<u32> {
        let id = u32::try_from(self.groups.len()).ok()?;
        self.groups.push(ClusterGroup {
            rep,
            digest,
            members: 1,
        });
        self.group_of.push(id);
        Some(id)
    }

    /// Tiles the cluster index `times` times, mirroring
    /// [`crate::CompiledBank::repeat`]: every copy of forest `i` is
    /// bit-identical to its source (tiling rebases whole regions), so
    /// it joins the *same* group — replication multiplies member
    /// counts without adding groups, which is exactly why the
    /// clustered scan flattens the replicated scaling curve.
    pub(crate) fn repeat(&self, times: usize) -> ClusterIndex {
        let mut group_of = Vec::with_capacity(self.group_of.len() * times);
        for _ in 0..times {
            group_of.extend_from_slice(&self.group_of);
        }
        let groups = self
            .groups
            .iter()
            .map(|g| ClusterGroup {
                members: g
                    .members
                    .saturating_mul(u32::try_from(times).unwrap_or(u32::MAX)),
                ..*g
            })
            .collect();
        ClusterIndex { group_of, groups }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_bitmap_folds_dimensions_into_stripes() {
        let idx = BankIndex::from_rows(
            4,
            vec![IndexRow {
                tested: 0b1111,
                default_accepts: false,
            }],
        );
        // Dims 0..8 fold mod 4: nonzero at dims 1 and 6 → bits 1 and 2.
        let bm = idx.sample_bitmap(&[0.0, 3.0, 0.0, 0.0, 0.0, 0.0, -2.0, 0.0]);
        assert_eq!(bm, 0b0110);
        assert_eq!(idx.sample_bitmap(&[0.0; 8]), 0);
    }

    #[test]
    fn negative_zero_is_default_nan_is_not() {
        let idx = BankIndex::from_rows(
            2,
            vec![IndexRow {
                tested: 0b11,
                default_accepts: false,
            }],
        );
        assert_eq!(idx.sample_bitmap(&[-0.0, -0.0]), 0);
        assert_eq!(idx.sample_bitmap(&[f32::NAN, 0.0]), 0b01);
    }

    #[test]
    fn early_exit_stops_at_the_tested_union() {
        // Only stripe 0 is ever tested; once it is covered the scan
        // must stop setting further bits.
        let idx = BankIndex::from_rows(
            8,
            vec![IndexRow {
                tested: 0b1,
                default_accepts: true,
            }],
        );
        let sample = [1.0f32; 16];
        let bm = idx.sample_bitmap(&sample);
        assert_eq!(bm & 0b1, 0b1);
        assert_eq!(bm, 0b1, "scan must stop once the union is covered");
    }

    #[test]
    fn usability_rules() {
        assert!(BankIndex::from_rows(23, vec![]).is_usable(0));
        let row = IndexRow {
            tested: 1,
            default_accepts: false,
        };
        assert!(BankIndex::from_rows(1, vec![row; 3]).is_usable(3));
        assert!(BankIndex::from_rows(MAX_STRIPES, vec![row; 3]).is_usable(3));
        // Row-count mismatch, zero stripes, oversized stripes: unusable.
        assert!(!BankIndex::from_rows(23, vec![row; 2]).is_usable(3));
        assert!(!BankIndex::from_rows(0, vec![row; 3]).is_usable(3));
        assert!(!BankIndex::from_rows(MAX_STRIPES + 1, vec![row; 3]).is_usable(3));
        assert!(!BankIndex::disabled().is_usable(0));
    }

    #[test]
    fn repeat_tiles_rows() {
        let rows = vec![
            IndexRow {
                tested: 0b01,
                default_accepts: true,
            },
            IndexRow {
                tested: 0b10,
                default_accepts: false,
            },
        ];
        let idx = BankIndex::from_rows(2, rows.clone());
        let tiled = idx.repeat(3);
        assert_eq!(tiled.rows().len(), 6);
        assert!(tiled.is_usable(6));
        for copy in 0..3 {
            assert_eq!(&tiled.rows()[copy * 2..copy * 2 + 2], rows.as_slice());
        }
        assert_eq!(idx.repeat(0).rows().len(), 0);
    }

    #[test]
    fn cluster_index_groups_and_tiles() {
        let mut clusters = ClusterIndex::default();
        let a = clusters.open(0, 0xa).unwrap();
        clusters.join(a);
        let b = clusters.open(2, 0xb).unwrap();
        clusters.join(a);
        assert_eq!(clusters.group_of(), &[a, a, b, a]);
        assert_eq!(clusters.group_count(), 2);
        assert_eq!(clusters.group(a).unwrap().members, 3);
        assert_eq!(clusters.group(b).unwrap().rep, 2);
        assert!(clusters.is_usable(4));
        assert!(!clusters.is_usable(3));
        assert!(!ClusterIndex::default().is_usable(1));
        assert!(ClusterIndex::default().is_usable(0));

        let tiled = clusters.repeat(3);
        assert_eq!(tiled.group_count(), 2, "tiling adds no groups");
        assert_eq!(tiled.group_of().len(), 12);
        assert_eq!(tiled.group_of()[4..8], [a, a, b, a]);
        assert_eq!(tiled.group(a).unwrap().members, 9);
        assert_eq!(
            tiled.group(a).unwrap().rep,
            0,
            "rep stays in the first copy"
        );
        assert!(tiled.is_usable(12));
    }

    #[test]
    fn cluster_join_out_of_range_is_harmless() {
        let mut clusters = ClusterIndex::default();
        clusters.join(7);
        assert_eq!(clusters.group_of(), &[7]);
        assert_eq!(clusters.group(7), None);
        assert!(!clusters.is_usable(1), "no groups: not usable");
    }
}
