//! Criterion bench: enforcement-rule cache lookups at growing cache
//! sizes — the §V claim that the hash table keeps lookup time flat
//! "as the enforcement rule cache grows".

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_core::IsolationLevel;
use sentinel_gateway::{EnforcementRule, RuleCache};
use sentinel_net::MacAddr;

fn cache_with(rules: usize) -> (RuleCache, MacAddr) {
    let mut cache = RuleCache::new();
    let mut probe = MacAddr::ZERO;
    for i in 0..rules {
        let mac = MacAddr::new([2, 0xcc, (i >> 16) as u8, (i >> 8) as u8, i as u8, 1]);
        if i == rules / 2 {
            probe = mac;
        }
        cache.install(EnforcementRule::new(mac, IsolationLevel::Strict));
    }
    (cache, probe)
}

fn bench_rule_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_cache_lookup");
    for rules in [100usize, 1_000, 10_000, 20_000] {
        let (mut cache, probe) = cache_with(rules);
        group.bench_with_input(BenchmarkId::new("hit", rules), &rules, |b, _| {
            b.iter(|| cache.lookup(black_box(probe)).is_some())
        });
        let (mut cache, _) = cache_with(rules);
        let missing = MacAddr::new([2, 0xff, 0xff, 0xff, 0xff, 0xff]);
        group.bench_with_input(BenchmarkId::new("miss", rules), &rules, |b, _| {
            b.iter(|| cache.lookup(black_box(missing)).is_none())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rule_lookup);
criterion_main!(benches);
