//! Criterion bench: complete type identification (Table IV's bottom
//! row) — classification plus, where needed, discrimination.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sentinel_core::Trainer;
use sentinel_devices::{catalog, generate_dataset, NetworkEnvironment};
use sentinel_fingerprint::Fingerprint;

fn bench_end_to_end(c: &mut Criterion) {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let dataset = generate_dataset(&profiles, &env, 10, 1);
    let identifier = Trainer::default().train(&dataset, 7).expect("training");

    // A distinct type: single match, no discrimination.
    let distinct: &Fingerprint = dataset
        .iter()
        .find(|s| s.label() == "HueBridge")
        .unwrap()
        .fingerprint();
    c.bench_function("identify_distinct_type", |b| {
        b.iter(|| identifier.identify(black_box(distinct)))
    });

    // A confused sibling: multi-match, discrimination runs.
    let sibling: &Fingerprint = dataset
        .iter()
        .find(|s| s.label() == "D-LinkSensor")
        .unwrap()
        .fingerprint();
    c.bench_function("identify_confused_sibling", |b| {
        b.iter(|| identifier.identify(black_box(sibling)))
    });
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
