//! Criterion bench: the IoTSSP query hot path — single-fingerprint
//! `handle` vs the chunked `handle_batch`, plus the response-assembly
//! stage alone (which the TypeId redesign made allocation-free).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use sentinel_core::{IoTSecurityService, Trainer, VulnerabilityDatabase};
use sentinel_devices::{catalog, generate_dataset, NetworkEnvironment};
use sentinel_fingerprint::Fingerprint;

fn service_and_probes() -> (IoTSecurityService, Vec<Fingerprint>) {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let dataset = generate_dataset(&profiles, &env, 10, 1);
    let mut identifier = Trainer::default().train(&dataset, 7).expect("training");
    let db = VulnerabilityDatabase::demo(identifier.registry_mut());
    let probes: Vec<Fingerprint> = (0..256)
        .map(|i| dataset.sample(i % dataset.len()).fingerprint().clone())
        .collect();
    (IoTSecurityService::new(identifier, db), probes)
}

fn bench_service_query(c: &mut Criterion) {
    let (service, probes) = service_and_probes();

    c.bench_function("service_handle_single", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let resp = service.handle(black_box(&probes[i % probes.len()]));
            i += 1;
            resp
        })
    });

    let mut group = c.benchmark_group("service_handle_batch");
    for batch in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let slice = &probes[..batch];
            b.iter(|| service.handle_batch(black_box(slice)))
        });
    }
    group.finish();

    // Sequential vs parallel chunk fan-out on the same large batch:
    // workers=1 is the old single-threaded chunk loop, the other rows
    // spread chunks across scoped worker threads.
    let mut group = c.benchmark_group("service_handle_batch_workers");
    let parallelism = std::thread::available_parallelism().map_or(4, usize::from);
    let mut worker_counts = vec![1usize, 2, 4];
    if !worker_counts.contains(&parallelism) {
        worker_counts.push(parallelism);
    }
    for workers in worker_counts {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let slice = &probes[..256];
                b.iter(|| service.handle_batch_with(black_box(slice), workers))
            },
        );
    }
    group.finish();

    // Response assembly alone: identification already done, measure
    // assessment + response construction. This is the stage the
    // TypeId/IsolationClass redesign made allocation-free.
    c.bench_function("service_response_assembly", |b| {
        let (_, identification) = service.handle_detailed(&probes[0]);
        let device_type = identification.device_type();
        b.iter(|| {
            let isolation = service.vulnerabilities().assess(black_box(device_type));
            black_box((device_type, isolation))
        })
    });
}

criterion_group!(benches, bench_service_query);
criterion_main!(benches);
