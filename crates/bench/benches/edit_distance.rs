//! Criterion bench: edit-distance discrimination (the
//! "1 discrimination" and "7 discriminations" rows of Table IV).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sentinel_devices::{capture_setups, catalog, NetworkEnvironment};
use sentinel_editdist::{dissimilarity_score, fingerprint_distance, DistanceVariant};
use sentinel_fingerprint::{Fingerprint, FingerprintExtractor};

fn fingerprints_of(name: &str, n: u32) -> Vec<Fingerprint> {
    let env = NetworkEnvironment::default();
    let profile = catalog::standard_catalog()
        .into_iter()
        .find(|p| p.type_name == name)
        .expect("profile exists");
    capture_setups(&profile, &env, n, 3)
        .iter()
        .map(|c| FingerprintExtractor::extract_from(c.packets()))
        .collect()
}

fn bench_edit_distance(c: &mut Criterion) {
    let dlink = fingerprints_of("D-LinkSensor", 6);
    let probe = &dlink[0];
    let reference = &dlink[1];

    c.bench_function("fingerprint_distance_osa", |b| {
        b.iter(|| {
            fingerprint_distance(black_box(probe), black_box(reference), DistanceVariant::Osa)
        })
    });
    c.bench_function("fingerprint_distance_full_dl", |b| {
        b.iter(|| {
            fingerprint_distance(
                black_box(probe),
                black_box(reference),
                DistanceVariant::FullDamerau,
            )
        })
    });

    // One discrimination round: 5 references (paper's shape).
    let refs: Vec<&Fingerprint> = dlink[1..6].iter().collect();
    c.bench_function("dissimilarity_score_5_refs", |b| {
        b.iter(|| dissimilarity_score(black_box(probe), black_box(&refs), DistanceVariant::Osa))
    });
}

criterion_group!(benches, bench_edit_distance);
criterion_main!(benches);
