//! Criterion bench: fingerprint extraction (Table IV's "fingerprint
//! extraction" row) and the wire-decode path feeding it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sentinel_devices::{catalog, NetworkEnvironment, SetupSimulator};
use sentinel_fingerprint::FingerprintExtractor;
use sentinel_net::wire::decode_frame;
use sentinel_net::{Packet, SimTime};

fn bench_extraction(c: &mut Criterion) {
    let env = NetworkEnvironment::default();
    let profile = &catalog::standard_catalog()[4]; // HueBridge: busy setup
    let trace = SetupSimulator::new(env.clone(), 5).simulate(profile, 0);
    let device_mac = profile.instance_mac(0);
    let packets: Vec<Packet> = trace
        .decode_all()
        .expect("frames decode")
        .into_iter()
        .filter(|p| p.src_mac() == device_mac)
        .collect();

    c.bench_function("fingerprint_extraction", |b| {
        b.iter(|| FingerprintExtractor::extract_from(black_box(&packets)))
    });

    let frame = trace.frames()[0].bytes().to_vec();
    c.bench_function("wire_decode_frame", |b| {
        b.iter(|| decode_frame(black_box(&frame), SimTime::ZERO).expect("decodes"))
    });

    c.bench_function("decode_full_setup_trace", |b| {
        b.iter(|| trace.decode_all().expect("decodes"))
    });
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
