//! Criterion bench: model persistence (the IoTSSP's load path — a
//! gateway or service instance deserialises the trained model bank at
//! startup before it can serve identification queries).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sentinel_core::{persist, Trainer};
use sentinel_devices::{catalog, generate_dataset, NetworkEnvironment};
use sentinel_ml::{codec as ml_codec, ForestConfig, RandomForest};

fn bench_persistence(c: &mut Criterion) {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let dataset = generate_dataset(&profiles, &env, 10, 1);
    let identifier = Trainer::default().train(&dataset, 7).expect("training");

    let mut serialized = Vec::new();
    persist::write_identifier(&mut serialized, &identifier).expect("serialises");

    c.bench_function("serialize_27_type_model", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(serialized.len());
            persist::write_identifier(&mut buf, black_box(&identifier)).expect("serialises");
            buf
        })
    });

    c.bench_function("deserialize_27_type_model", |b| {
        b.iter(|| persist::read_identifier(black_box(serialized.as_slice())).expect("parses"))
    });

    // Per-classifier cost: one binary forest with the 276-dim shape
    // the per-type classifiers use.
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for i in 0..220 {
        let mut row = vec![0.0f32; 276];
        row[18] = i as f32;
        row[41] = (i * 7 % 13) as f32;
        samples.push(row);
        labels.push(usize::from(i >= 110));
    }
    let forest =
        RandomForest::fit(&samples, &labels, 2, &ForestConfig::default(), 3).expect("fits");
    let mut forest_doc = Vec::new();
    ml_codec::write_forest(&mut forest_doc, &forest).expect("serialises");

    c.bench_function("deserialize_single_forest", |b| {
        b.iter(|| ml_codec::read_forest(black_box(forest_doc.as_slice())).expect("parses"))
    });
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
