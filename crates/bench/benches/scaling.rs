//! Type-count scaling bench: the PR-4 full arena scan vs the indexed
//! scan (feature-bitmap prefilter) vs the quantized scan (8-byte
//! nodes) vs the coarse-to-fine clustered scan vs the thread-sharded
//! scan, at the real 27-type bank and at replicated ~1k / ~10k /
//! ~100k / ~1M type counts — the measured trajectory toward the
//! ROADMAP's sub-5 ms dense probe at 10⁵ types.
//!
//! Two probe regimes are measured, because the prefilter's value is
//! workload-shaped:
//!
//! * **dense** setup fingerprints (the paper's workload): every active
//!   feature column is populated, which intersects every forest's
//!   tested set — the prefilter can skip nothing. This regime is where
//!   the PR-9 numbers showed the bank going memory-bandwidth-bound
//!   (210 MiB streamed per probe at ~100k types), and it is what the
//!   three new layers attack: the quantized arena halves the bytes per
//!   node, the hot-first layout packs the accept-heavy regions into
//!   one prefix, and the clustered scan walks one representative per
//!   duplicate-content group — which on a replicated bank collapses
//!   the dense probe from O(types) to O(base types) + one memo read
//!   per member.
//! * **idle** (empty/all-default) fingerprints — devices that have
//!   sent nothing yet, which gateways still query in every periodic
//!   batch: the nonzero bitmap is empty, every forest is answered from
//!   its cached default verdict, and the scan never touches the node
//!   arena at all.
//!
//! Every variant is checked for candidate parity against the full scan
//! at every size before it is timed (a scan that loses a candidate
//! would be a correctness bug, not a speedup). Writes
//! `BENCH_scaling.json` (ns per query for each variant, size and
//! regime, plus derived speedups and skip fractions); CI gates the
//! dense ~100k-type production row at < 5 ms.

use sentinel_bench::bench_report::{measure_ns, write_bench_json};
use sentinel_core::{CandidateScratch, ReplicatedBank, Trainer};
use sentinel_devices::{catalog, generate_dataset, NetworkEnvironment};
use sentinel_fingerprint::FixedFingerprint;
use sentinel_ml::{CompiledBank, ShardScratch};
use sentinel_pool::ComputePool;

/// Replica multiples of the 27-type bank: ~1k, ~10k, ~100k, ~1M types.
const REPLICAS: [usize; 4] = [37, 370, 3700, 37000];

/// The idle-device probe: a fingerprint with no packets yet, whose F′
/// is all default values. Gateways query these on every periodic
/// batch; the prefilter answers them without touching the node arena.
fn iot_idle_probe() -> FixedFingerprint {
    sentinel_fingerprint::Fingerprint::default().to_fixed()
}

/// How many forests a query's prefilter bitmap lets the bank skip.
fn skip_fraction(bank: &CompiledBank, probe: &FixedFingerprint) -> f64 {
    let index = bank.index();
    let bitmap = index.sample_bitmap(probe.as_slice());
    let skipped = index
        .rows()
        .iter()
        .filter(|row| row.tested & bitmap == 0)
        .count();
    skipped as f64 / index.rows().len().max(1) as f64
}

/// ns-per-query for every scan tier over one probe set.
struct TierTimes {
    /// Pure f32 full scan (the reference).
    full: f64,
    /// Routed quantized full scan (8-byte nodes where proven).
    quant: f64,
    /// Forced feature-bitmap prefilter.
    indexed: f64,
    /// Coarse-to-fine clustered scan (one walk per content group).
    clustered: f64,
    /// The auto-routed production entry point.
    production: f64,
    /// Pooled sharded scan (persistent work-stealing pool).
    pooled: f64,
    /// Scoped sharded baseline (a spawn per shard per call).
    scoped: f64,
}

/// Asserts every scan tier reproduces the full scan's candidate set
/// exactly on `bank` — content *and* order — then times each tier over
/// `probes`. The pooled rows run on `pool` (sized by the caller,
/// independent of `SENTINEL_POOL_THREADS`, so CI's single-worker
/// default does not skew the comparison); the scoped rows spawn a
/// thread per shard per call — the pre-pool baseline.
fn measure_bank(
    bank: &CompiledBank,
    probes: &[FixedFingerprint],
    shards: usize,
    pool: &ComputePool,
) -> TierTimes {
    let mut scratch = ShardScratch::new();
    for probe in probes {
        let sample = probe.as_slice();
        let mut full = Vec::new();
        bank.for_each_accepting_full(sample, |i| full.push(i));
        let mut quant = Vec::new();
        bank.for_each_accepting_quant(sample, |i| quant.push(i));
        assert_eq!(quant, full, "quantized scan lost or invented a candidate");
        let mut indexed = Vec::new();
        bank.for_each_accepting_indexed(sample, |i| indexed.push(i));
        assert_eq!(indexed, full, "indexed scan lost or invented a candidate");
        let mut clustered = Vec::new();
        bank.for_each_accepting_clustered(sample, |i| clustered.push(i));
        assert_eq!(
            clustered, full,
            "clustered scan lost or invented a candidate"
        );
        let mut auto = Vec::new();
        bank.for_each_accepting(sample, |i| auto.push(i));
        assert_eq!(auto, full, "auto route lost or invented a candidate");
        let mut pooled = Vec::new();
        bank.for_each_accepting_pooled(pool, sample, shards, &mut scratch, |i| pooled.push(i));
        assert_eq!(pooled, full, "pooled scan lost or invented a candidate");
        let mut scoped = Vec::new();
        bank.for_each_accepting_sharded_scoped(sample, shards, &mut scratch, |i| scoped.push(i));
        assert_eq!(scoped, full, "scoped scan lost or invented a candidate");
    }
    type EmitFn<'a> = &'a dyn Fn(&[f32], &mut dyn FnMut(usize));
    let per_query = |ns_per_pass: f64| ns_per_pass / probes.len() as f64;
    let count = |emit: EmitFn| {
        let mut accepted = 0usize;
        for probe in probes {
            emit(probe.as_slice(), &mut |_| accepted += 1);
        }
        std::hint::black_box(accepted);
    };
    let full = per_query(measure_ns(|| {
        count(&|s, f| bank.for_each_accepting_full(s, f))
    }));
    let quant = per_query(measure_ns(|| {
        count(&|s, f| bank.for_each_accepting_quant(s, f))
    }));
    let indexed = per_query(measure_ns(|| {
        count(&|s, f| bank.for_each_accepting_indexed(s, f))
    }));
    let clustered = per_query(measure_ns(|| {
        count(&|s, f| bank.for_each_accepting_clustered(s, f))
    }));
    let production = per_query(measure_ns(|| count(&|s, f| bank.for_each_accepting(s, f))));
    let pooled = per_query(measure_ns(|| {
        for probe in probes {
            let mut accepted = 0usize;
            bank.for_each_accepting_pooled(pool, probe.as_slice(), shards, &mut scratch, |_| {
                accepted += 1
            });
            std::hint::black_box(accepted);
        }
    }));
    let scoped = per_query(measure_ns(|| {
        for probe in probes {
            let mut accepted = 0usize;
            bank.for_each_accepting_sharded_scoped(probe.as_slice(), shards, &mut scratch, |_| {
                accepted += 1
            });
            std::hint::black_box(accepted);
        }
    }));
    TierTimes {
        full,
        quant,
        indexed,
        clustered,
        production,
        pooled,
        scoped,
    }
}

fn main() {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let dataset = generate_dataset(&profiles, &env, 10, 1);
    let identifier = Trainer::default().train(&dataset, 7).expect("training");
    let shards = std::thread::available_parallelism().map_or(4, |p| p.get());

    let probes: Vec<FixedFingerprint> = (0..4)
        .map(|i| dataset.sample(i * 10).fingerprint().to_fixed())
        .collect();
    let idle_probe = iot_idle_probe();

    let stats = identifier.bank_stats();
    assert!(stats.indexed, "trained banks must be indexed");
    assert_eq!(
        stats.quantized_forests, stats.forests,
        "trained banks must quantize every forest (bit-exact codebooks)"
    );
    let (cols_min, cols_max) = {
        let rows = identifier.compiled_bank().index().rows();
        let min = rows
            .iter()
            .map(|r| r.tested.count_ones())
            .min()
            .unwrap_or(0);
        let max = rows
            .iter()
            .map(|r| r.tested.count_ones())
            .max()
            .unwrap_or(0);
        (min, max)
    };
    println!(
        "bank: {} types, {} nodes ({} quantized forests, {} cluster groups), \
         {} KiB arena, prefilter on {} stripes (forests test \
         {cols_min}–{cols_max} of 23 F′ columns), {shards} scan shards",
        stats.forests,
        stats.nodes,
        stats.quantized_forests,
        stats.cluster_groups,
        stats.arena_bytes / 1024,
        stats.stripes
    );

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut derived: Vec<(String, f64)> = Vec::new();

    // The real 27-type bank, through the identifier's own entry
    // points. The production path (`classify_candidates_into`) sits
    // below the prefilter's size threshold, so it must hold the PR-4
    // sub-1.8 µs line exactly; the forced-prefilter row records what
    // the adaptive threshold is protecting that line from.
    let full_27 = measure_ns(|| {
        for probe in &probes {
            std::hint::black_box(identifier.classify_candidates_full(probe));
        }
    }) / probes.len() as f64;
    let mut scratch = CandidateScratch::new();
    let indexed_27 = measure_ns(|| {
        for probe in &probes {
            identifier.classify_candidates_into(probe, &mut scratch);
            std::hint::black_box(scratch.candidates());
        }
    }) / probes.len() as f64;
    let bank_27 = identifier.compiled_bank();
    let forced_27 = measure_ns(|| {
        for probe in &probes {
            let mut accepted = 0usize;
            bank_27.for_each_accepting_indexed(probe.as_slice(), |_| accepted += 1);
            std::hint::black_box(accepted);
        }
    }) / probes.len() as f64;
    let quant_27 = measure_ns(|| {
        for probe in &probes {
            let mut accepted = 0usize;
            bank_27.for_each_accepting_quant(probe.as_slice(), |_| accepted += 1);
            std::hint::black_box(accepted);
        }
    }) / probes.len() as f64;
    println!(
        "{:>8} types | full {:>10.3} µs | production {:>10.3} µs | forced \
         prefilter {:>10.3} µs | quant {:>10.3} µs",
        stats.forests,
        full_27 / 1e3,
        indexed_27 / 1e3,
        forced_27 / 1e3,
        quant_27 / 1e3
    );
    results.push(("full_27_types".into(), full_27));
    results.push(("production_27_types".into(), indexed_27));
    results.push(("forced_prefilter_27_types".into(), forced_27));
    results.push(("quant_27_types".into(), quant_27));
    derived.push(("speedup_production_27_types".into(), full_27 / indexed_27));

    let mean_skip = probes
        .iter()
        .map(|p| skip_fraction(identifier.compiled_bank(), p))
        .sum::<f64>()
        / probes.len() as f64;
    derived.push(("prefilter_skip_fraction_dense".into(), mean_skip));
    derived.push((
        "prefilter_skip_fraction_idle".into(),
        skip_fraction(identifier.compiled_bank(), &idle_probe),
    ));
    println!(
        "prefilter skips {:.1}% of forests on dense setup probes, {:.1}% on the \
         idle probe",
        mean_skip * 100.0,
        skip_fraction(identifier.compiled_bank(), &idle_probe) * 100.0
    );

    // One persistent pool for every pooled row, sized to the shard
    // count like production sizes its pool to the machine.
    let pool = ComputePool::new(shards);
    for replicas in REPLICAS {
        let tiled: ReplicatedBank = identifier
            .replicated_bank(replicas)
            .expect("tiling stays inside the 31-bit reference space");
        let types = tiled.type_count();
        let dense = measure_bank(tiled.bank(), &probes, shards, &pool);
        let idle = std::slice::from_ref(&idle_probe);
        let idle_times = measure_bank(tiled.bank(), idle, 1, &pool);
        println!(
            "{types:>8} types | dense: full {:>10.3} µs, quant {:>10.3} µs, \
             indexed {:>10.3} µs, clustered {:>8.3} µs, production {:>8.3} µs, \
             pooled({shards}) {:>10.3} µs, scoped({shards}) {:>10.3} µs | idle: \
             full {:>10.3} µs, indexed {:>8.3} µs | arena {} KiB",
            dense.full / 1e3,
            dense.quant / 1e3,
            dense.indexed / 1e3,
            dense.clustered / 1e3,
            dense.production / 1e3,
            dense.pooled / 1e3,
            dense.scoped / 1e3,
            idle_times.full / 1e3,
            idle_times.indexed / 1e3,
            tiled.bank().arena_bytes() / 1024
        );
        let label = |kind: &str| format!("{kind}_{types}_types_replicated");
        results.push((label("full"), dense.full));
        results.push((label("quant"), dense.quant));
        results.push((label("indexed"), dense.indexed));
        results.push((label("clustered"), dense.clustered));
        results.push((label("production"), dense.production));
        results.push((label("sharded"), dense.pooled));
        results.push((label("sharded_scoped"), dense.scoped));
        results.push((label("full_idle"), idle_times.full));
        results.push((label("indexed_idle"), idle_times.indexed));
        results.push((label("clustered_idle"), idle_times.clustered));
        derived.push((
            format!("speedup_quant_{types}_types"),
            dense.full / dense.quant,
        ));
        derived.push((
            format!("speedup_indexed_{types}_types"),
            dense.full / dense.indexed,
        ));
        derived.push((
            format!("speedup_clustered_{types}_types"),
            dense.full / dense.clustered,
        ));
        derived.push((
            format!("speedup_production_{types}_types"),
            dense.full / dense.production,
        ));
        derived.push((
            format!("speedup_sharded_{types}_types"),
            dense.full / dense.pooled,
        ));
        derived.push((
            format!("speedup_pooled_vs_scoped_{types}_types"),
            dense.scoped / dense.pooled,
        ));
        derived.push((
            format!("speedup_indexed_idle_{types}_types"),
            idle_times.full / idle_times.indexed,
        ));
        derived.push((
            format!("arena_bytes_{types}_types"),
            tiled.bank().arena_bytes() as f64,
        ));
    }

    let results_ref: Vec<(&str, f64)> = results.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let derived_ref: Vec<(&str, f64)> = derived.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let path = write_bench_json("scaling", "ns_per_query", &results_ref, &derived_ref)
        .expect("writing bench json");
    println!("wrote {}", path.display());
}
