//! Type-count scaling bench: the PR-4 full arena scan vs the indexed
//! scan (feature-bitmap prefilter) vs the thread-sharded scan, at the
//! real 27-type bank and at replicated ~1k / ~10k / ~100k type counts
//! — the measured trajectory toward the ROADMAP's 10⁵-type target.
//!
//! Two probe regimes are measured, because the prefilter's value is
//! workload-shaped:
//!
//! * **dense** setup fingerprints (the paper's workload): every active
//!   feature column is populated, which intersects every forest's
//!   tested set — the prefilter can skip nothing and must instead cost
//!   ~nothing; the wall-clock flattener at this end is the sharded
//!   scan. Two shard executors are timed against each other: the
//!   persistent work-stealing **pool** (the production path — span
//!   ranges as tasks on pinned workers) and the old **scoped** baseline
//!   (spawn one thread per shard per call), so the JSON records that
//!   replacing per-call spawns with the pool did not cost dense-scan
//!   throughput.
//! * **idle** (empty/all-default) fingerprints — devices that have
//!   sent nothing yet, which gateways still query in every periodic
//!   batch: the nonzero bitmap is empty, every forest is answered from
//!   its cached default verdict, and the scan never touches the node
//!   arena at all. This is where the index beats the full scan by
//!   orders of magnitude at every size.
//!
//! Every variant is checked for candidate parity against the full scan
//! at every size before it is timed (an index that loses a candidate
//! would be a correctness bug, not a speedup). Writes
//! `BENCH_scaling.json` (ns per query for each variant, size and
//! regime, plus derived speedups and the prefilter skip fractions) so
//! the perf trajectory is machine-checkable across PRs.

use sentinel_bench::bench_report::{measure_ns, write_bench_json};
use sentinel_core::{CandidateScratch, ReplicatedBank, Trainer};
use sentinel_devices::{catalog, generate_dataset, NetworkEnvironment};
use sentinel_fingerprint::FixedFingerprint;
use sentinel_ml::{CompiledBank, ShardScratch};
use sentinel_pool::ComputePool;

/// Replica multiples of the 27-type bank: ~1k, ~10k, ~100k types.
const REPLICAS: [usize; 3] = [37, 370, 3700];

/// The idle-device probe: a fingerprint with no packets yet, whose F′
/// is all default values. Gateways query these on every periodic
/// batch; the prefilter answers them without touching the node arena.
fn iot_idle_probe() -> FixedFingerprint {
    sentinel_fingerprint::Fingerprint::default().to_fixed()
}

/// How many forests a query's prefilter bitmap lets the bank skip.
fn skip_fraction(bank: &CompiledBank, probe: &FixedFingerprint) -> f64 {
    let index = bank.index();
    let bitmap = index.sample_bitmap(probe.as_slice());
    let skipped = index
        .rows()
        .iter()
        .filter(|row| row.tested & bitmap == 0)
        .count();
    skipped as f64 / index.rows().len().max(1) as f64
}

/// Asserts the indexed, pooled-sharded and scoped-sharded scans all
/// reproduce the full scan's candidate set exactly on `bank`, then
/// returns (full, indexed, pooled, scoped) ns-per-query over `probes`.
/// The pooled rows run on `pool` (sized by the caller, independent of
/// `SENTINEL_POOL_THREADS`, so CI's single-worker default does not
/// skew the comparison); the scoped rows spawn a thread per shard per
/// call — the pre-pool baseline.
fn measure_bank(
    bank: &CompiledBank,
    probes: &[FixedFingerprint],
    shards: usize,
    pool: &ComputePool,
) -> (f64, f64, f64, f64) {
    let mut scratch = ShardScratch::new();
    for probe in probes {
        let sample = probe.as_slice();
        let mut full = Vec::new();
        bank.for_each_accepting_full(sample, |i| full.push(i));
        let mut indexed = Vec::new();
        bank.for_each_accepting(sample, |i| indexed.push(i));
        assert_eq!(indexed, full, "indexed scan lost or invented a candidate");
        let mut pooled = Vec::new();
        bank.for_each_accepting_pooled(pool, sample, shards, &mut scratch, |i| pooled.push(i));
        assert_eq!(pooled, full, "pooled scan lost or invented a candidate");
        let mut scoped = Vec::new();
        bank.for_each_accepting_sharded_scoped(sample, shards, &mut scratch, |i| scoped.push(i));
        assert_eq!(scoped, full, "scoped scan lost or invented a candidate");
    }
    let per_query = |ns_per_pass: f64| ns_per_pass / probes.len() as f64;
    let full_ns = per_query(measure_ns(|| {
        for probe in probes {
            let mut accepted = 0usize;
            bank.for_each_accepting_full(probe.as_slice(), |_| accepted += 1);
            std::hint::black_box(accepted);
        }
    }));
    let indexed_ns = per_query(measure_ns(|| {
        for probe in probes {
            let mut accepted = 0usize;
            bank.for_each_accepting(probe.as_slice(), |_| accepted += 1);
            std::hint::black_box(accepted);
        }
    }));
    let pooled_ns = per_query(measure_ns(|| {
        for probe in probes {
            let mut accepted = 0usize;
            bank.for_each_accepting_pooled(pool, probe.as_slice(), shards, &mut scratch, |_| {
                accepted += 1
            });
            std::hint::black_box(accepted);
        }
    }));
    let scoped_ns = per_query(measure_ns(|| {
        for probe in probes {
            let mut accepted = 0usize;
            bank.for_each_accepting_sharded_scoped(probe.as_slice(), shards, &mut scratch, |_| {
                accepted += 1
            });
            std::hint::black_box(accepted);
        }
    }));
    (full_ns, indexed_ns, pooled_ns, scoped_ns)
}

fn main() {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let dataset = generate_dataset(&profiles, &env, 10, 1);
    let identifier = Trainer::default().train(&dataset, 7).expect("training");
    let shards = std::thread::available_parallelism().map_or(4, |p| p.get());

    let probes: Vec<FixedFingerprint> = (0..4)
        .map(|i| dataset.sample(i * 10).fingerprint().to_fixed())
        .collect();
    let idle_probe = iot_idle_probe();

    let stats = identifier.bank_stats();
    assert!(stats.indexed, "trained banks must be indexed");
    let (cols_min, cols_max) = {
        let rows = identifier.compiled_bank().index().rows();
        let min = rows
            .iter()
            .map(|r| r.tested.count_ones())
            .min()
            .unwrap_or(0);
        let max = rows
            .iter()
            .map(|r| r.tested.count_ones())
            .max()
            .unwrap_or(0);
        (min, max)
    };
    println!(
        "bank: {} types, {} nodes, {} KiB arena, prefilter on {} stripes \
         (forests test {cols_min}–{cols_max} of 23 F′ columns), {shards} scan shards",
        stats.forests,
        stats.nodes,
        stats.arena_bytes / 1024,
        stats.stripes
    );

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut derived: Vec<(String, f64)> = Vec::new();

    // The real 27-type bank, through the identifier's own entry
    // points. The production path (`classify_candidates_into`) sits
    // below the prefilter's size threshold, so it must hold the PR-4
    // sub-1.8 µs line exactly; the forced-prefilter row records what
    // the adaptive threshold is protecting that line from.
    let full_27 = measure_ns(|| {
        for probe in &probes {
            std::hint::black_box(identifier.classify_candidates_full(probe));
        }
    }) / probes.len() as f64;
    let mut scratch = CandidateScratch::new();
    let indexed_27 = measure_ns(|| {
        for probe in &probes {
            identifier.classify_candidates_into(probe, &mut scratch);
            std::hint::black_box(scratch.candidates());
        }
    }) / probes.len() as f64;
    let bank_27 = identifier.compiled_bank();
    let forced_27 = measure_ns(|| {
        for probe in &probes {
            let mut accepted = 0usize;
            bank_27.for_each_accepting_indexed(probe.as_slice(), |_| accepted += 1);
            std::hint::black_box(accepted);
        }
    }) / probes.len() as f64;
    println!(
        "{:>8} types | full {:>10.3} µs | production {:>10.3} µs | forced \
         prefilter {:>10.3} µs | (sharding not worth the spawns at this size)",
        stats.forests,
        full_27 / 1e3,
        indexed_27 / 1e3,
        forced_27 / 1e3
    );
    results.push(("full_27_types".into(), full_27));
    results.push(("production_27_types".into(), indexed_27));
    results.push(("forced_prefilter_27_types".into(), forced_27));
    derived.push(("speedup_production_27_types".into(), full_27 / indexed_27));

    let mean_skip = probes
        .iter()
        .map(|p| skip_fraction(identifier.compiled_bank(), p))
        .sum::<f64>()
        / probes.len() as f64;
    derived.push(("prefilter_skip_fraction_dense".into(), mean_skip));
    derived.push((
        "prefilter_skip_fraction_idle".into(),
        skip_fraction(identifier.compiled_bank(), &idle_probe),
    ));
    println!(
        "prefilter skips {:.1}% of forests on dense setup probes, {:.1}% on the \
         idle probe",
        mean_skip * 100.0,
        skip_fraction(identifier.compiled_bank(), &idle_probe) * 100.0
    );

    // One persistent pool for every pooled row, sized to the shard
    // count like production sizes its pool to the machine.
    let pool = ComputePool::new(shards);
    for replicas in REPLICAS {
        let tiled: ReplicatedBank = identifier
            .replicated_bank(replicas)
            .expect("tiling stays inside the 31-bit reference space");
        let types = tiled.type_count();
        let (full_ns, indexed_ns, pooled_ns, scoped_ns) =
            measure_bank(tiled.bank(), &probes, shards, &pool);
        let idle = std::slice::from_ref(&idle_probe);
        let (idle_full_ns, idle_indexed_ns, _, _) = measure_bank(tiled.bank(), idle, 1, &pool);
        println!(
            "{types:>8} types | dense: full {:>10.3} µs, indexed {:>10.3} µs, \
             pooled({shards}) {:>10.3} µs, scoped({shards}) {:>10.3} µs | idle: \
             full {:>10.3} µs, indexed {:>8.3} µs | arena {} KiB",
            full_ns / 1e3,
            indexed_ns / 1e3,
            pooled_ns / 1e3,
            scoped_ns / 1e3,
            idle_full_ns / 1e3,
            idle_indexed_ns / 1e3,
            tiled.bank().arena_bytes() / 1024
        );
        let label = |kind: &str| format!("{kind}_{types}_types_replicated");
        results.push((label("full"), full_ns));
        results.push((label("indexed"), indexed_ns));
        results.push((label("sharded"), pooled_ns));
        results.push((label("sharded_scoped"), scoped_ns));
        results.push((label("full_idle"), idle_full_ns));
        results.push((label("indexed_idle"), idle_indexed_ns));
        derived.push((
            format!("speedup_indexed_{types}_types"),
            full_ns / indexed_ns,
        ));
        derived.push((
            format!("speedup_sharded_{types}_types"),
            full_ns / pooled_ns,
        ));
        derived.push((
            format!("speedup_pooled_vs_scoped_{types}_types"),
            scoped_ns / pooled_ns,
        ));
        derived.push((
            format!("speedup_indexed_idle_{types}_types"),
            idle_full_ns / idle_indexed_ns,
        ));
        derived.push((
            format!("arena_bytes_{types}_types"),
            tiled.bank().arena_bytes() as f64,
        ));
    }

    let results_ref: Vec<(&str, f64)> = results.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let derived_ref: Vec<(&str, f64)> = derived.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let path = write_bench_json("scaling", "ns_per_query", &results_ref, &derived_ref)
        .expect("writing bench json");
    println!("wrote {}", path.display());
}
