//! Criterion bench: stage-one Random Forest classification (the
//! "1 classification" and "27 classifications" rows of Table IV).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sentinel_core::Trainer;
use sentinel_devices::{catalog, generate_dataset, NetworkEnvironment};

fn bench_classification(c: &mut Criterion) {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let dataset = generate_dataset(&profiles, &env, 10, 1);
    let identifier = Trainer::default().train(&dataset, 7).expect("training");
    let fixed = dataset.sample(0).fingerprint().to_fixed();

    c.bench_function("classify_27_type_bank", |b| {
        b.iter(|| identifier.classify_candidates(black_box(&fixed)))
    });

    // Single-classifier cost via a 2-type identifier.
    let two: Vec<_> = profiles[..2].to_vec();
    let small_ds = generate_dataset(&two, &env, 10, 1);
    let small = Trainer::default().train(&small_ds, 7).expect("training");
    let small_fixed = small_ds.sample(0).fingerprint().to_fixed();
    c.bench_function("classify_2_type_bank", |b| {
        b.iter(|| small.classify_candidates(black_box(&small_fixed)))
    });
}

criterion_group!(benches, bench_classification);
criterion_main!(benches);
