//! Stage-one classification bench: the interpreted tree-walking bank
//! vs the compiled flat-arena bank (the "1 classification" / "27
//! classifications" rows of Table IV, plus the §VI-B thousands-of-types
//! claim at a replicated ~1 000-type bank).
//!
//! Besides the human-readable report, writes `BENCH_classification.json`
//! (ns per query for each variant and the compiled-over-interpreted
//! speedups) so the perf trajectory is machine-checkable across PRs.

use sentinel_bench::bench_report::{measure_ns, write_bench_json};
use sentinel_core::{CandidateScratch, Trainer};
use sentinel_devices::{catalog, generate_dataset, NetworkEnvironment};
use sentinel_fingerprint::FixedFingerprint;

/// Replicas of the 27-type bank forming the large-scale scenario
/// (27 × 37 = 999 device types).
const REPLICAS: usize = 37;

fn main() {
    let env = NetworkEnvironment::default();
    let profiles = catalog::standard_catalog();
    let dataset = generate_dataset(&profiles, &env, 10, 1);
    let identifier = Trainer::default().train(&dataset, 7).expect("training");
    let types = identifier.type_count();

    // A spread of probes (one per sampled type) so the measurement is
    // not a single lucky early-exit path; every number below is
    // normalised to ns per single query.
    let probes: Vec<FixedFingerprint> = (0..4)
        .map(|i| dataset.sample(i * 10).fingerprint().to_fixed())
        .collect();
    let per_query = |ns_per_pass: f64| ns_per_pass / probes.len() as f64;

    let interpreted_27 = per_query(measure_ns(|| {
        for fixed in &probes {
            std::hint::black_box(identifier.classify_candidates_interpreted(fixed));
        }
    }));

    let mut scratch = CandidateScratch::new();
    let compiled_27 = per_query(measure_ns(|| {
        for fixed in &probes {
            identifier.classify_candidates_into(fixed, &mut scratch);
            std::hint::black_box(scratch.candidates());
        }
    }));

    // The replicated large bank: same forests tiled into a genuinely
    // larger arena (memory scales like a real 999-type bank).
    let large_bank = identifier.compiled_bank().repeat(REPLICAS);
    let large_types = large_bank.forest_count();
    let compiled_large = per_query(measure_ns(|| {
        for fixed in &probes {
            let mut accepted = 0usize;
            large_bank.for_each_accepting(fixed.as_slice(), |_| accepted += 1);
            std::hint::black_box(accepted);
        }
    }));
    let interpreted_large = per_query(measure_ns(|| {
        for fixed in &probes {
            for _ in 0..REPLICAS {
                std::hint::black_box(identifier.classify_candidates_interpreted(fixed));
            }
        }
    }));

    let speedup_27 = interpreted_27 / compiled_27;
    let speedup_large = interpreted_large / compiled_large;

    println!(
        "classify_{types}_interpreted{:>28} time: [{:.3} µs/query]",
        "",
        interpreted_27 / 1e3
    );
    println!(
        "classify_{types}_compiled{:>31} time: [{:.3} µs/query]",
        "",
        compiled_27 / 1e3
    );
    println!(
        "classify_{large_types}_interpreted (replicated){:>14} time: [{:.3} µs/query]",
        "",
        interpreted_large / 1e3
    );
    println!(
        "classify_{large_types}_compiled (replicated){:>17} time: [{:.3} µs/query]",
        "",
        compiled_large / 1e3
    );
    println!(
        "compiled-over-interpreted speedup: {speedup_27:.2}x at {types} types, \
         {speedup_large:.2}x at {large_types} types"
    );
    println!(
        "compiled arena: {} nodes, {} KiB for {types} types",
        identifier.compiled_bank().node_count(),
        identifier.compiled_bank().arena_bytes() / 1024
    );

    let path = write_bench_json(
        "classification",
        "ns_per_query",
        &[
            ("interpreted_27_types", interpreted_27),
            ("compiled_27_types", compiled_27),
            ("interpreted_999_types_replicated", interpreted_large),
            ("compiled_999_types_replicated", compiled_large),
        ],
        &[
            ("speedup_27_types", speedup_27),
            ("speedup_999_types_replicated", speedup_large),
            (
                "compiled_arena_bytes_27_types",
                identifier.compiled_bank().arena_bytes() as f64,
            ),
        ],
    )
    .expect("writing bench json");
    println!("wrote {}", path.display());
}
