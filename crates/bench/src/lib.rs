//! Shared plumbing for the experiment binaries that regenerate every
//! table and figure of the IoT Sentinel evaluation (§VI).
//!
//! Each binary in `src/bin/` reproduces one artefact:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig5_accuracy` | Fig. 5 — per-type identification accuracy |
//! | `table3_confusion` | Table III — confusion matrix of the 10 confused types |
//! | `table4_timing` | Table IV — identification stage timing |
//! | `table5_latency` | Table V — user latency with/without filtering |
//! | `table6_overhead` | Table VI — filtering overhead |
//! | `fig6_scaling` | Fig. 6a/b/c — latency, CPU and memory scaling |
//! | `scaling_types` | §VI-B prose — classification time vs number of types |
//! | `ablations` | DESIGN.md §5 — prefix length, negative ratio, reference count, distance variant |
//! | `standby_identification` | §VIII-A — identification from standby/operation traffic |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sentinel_core::eval::{cross_validate, CrossValConfig, EvaluationReport};
use sentinel_core::CoreError;
use sentinel_devices::{catalog, generate_dataset, NetworkEnvironment};
use sentinel_fingerprint::Dataset;

/// Number of setups per device type in the paper's dataset (§VI-A).
pub const RUNS_PER_TYPE: u32 = 20;

/// Default dataset seed shared across experiment binaries so that every
/// table/figure is computed from the same 540 fingerprints.
pub const DATASET_SEED: u64 = 0x5e17_1e57;

/// Builds the paper's evaluation dataset: 27 device types × 20 setups
/// = 540 fingerprints.
pub fn evaluation_dataset() -> Dataset {
    let profiles = catalog::standard_catalog();
    generate_dataset(
        &profiles,
        &NetworkEnvironment::default(),
        RUNS_PER_TYPE,
        DATASET_SEED,
    )
}

/// Builds the §VIII-A standby evaluation dataset: 27 device types ×
/// 20 standby observation windows = 540 fingerprints. A distinct seed
/// keeps the standby randomness independent of the setup dataset's.
pub fn standby_dataset() -> Dataset {
    sentinel_devices::standby::generate_standby_dataset(
        &NetworkEnvironment::default(),
        RUNS_PER_TYPE,
        DATASET_SEED ^ 0xa5a5_a5a5,
    )
}

/// Runs the paper's headline evaluation: stratified 10-fold
/// cross-validation repeated `repetitions` times.
///
/// # Errors
///
/// Propagates [`CoreError`] from training.
pub fn run_identification_eval(
    dataset: &Dataset,
    repetitions: usize,
    seed: u64,
) -> Result<EvaluationReport, CoreError> {
    let config = CrossValConfig {
        folds: 10,
        repetitions,
        seed,
        ..CrossValConfig::default()
    };
    cross_validate(dataset, &config)
}

/// The Fig. 5 x-axis order (paper device numbering; the final ten are
/// the confused types 1-10 of Table III).
pub fn fig5_order() -> Vec<&'static str> {
    catalog::standard_catalog()
        .iter()
        .map(|p| Box::leak(p.type_name.clone().into_boxed_str()) as &str)
        .collect()
}

/// Formats a ratio as the paper prints accuracies.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_dataset_shape() {
        let ds = evaluation_dataset();
        assert_eq!(ds.len(), 540);
        assert_eq!(ds.labels().len(), 27);
    }

    #[test]
    fn fig5_order_has_27_types() {
        assert_eq!(fig5_order().len(), 27);
    }
}
