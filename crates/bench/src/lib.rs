//! Shared plumbing for the experiment binaries that regenerate every
//! table and figure of the IoT Sentinel evaluation (§VI).
//!
//! Each binary in `src/bin/` reproduces one artefact:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig5_accuracy` | Fig. 5 — per-type identification accuracy |
//! | `table3_confusion` | Table III — confusion matrix of the 10 confused types |
//! | `table4_timing` | Table IV — identification stage timing |
//! | `table5_latency` | Table V — user latency with/without filtering |
//! | `table6_overhead` | Table VI — filtering overhead |
//! | `fig6_scaling` | Fig. 6a/b/c — latency, CPU and memory scaling |
//! | `scaling_types` | §VI-B prose — classification time vs number of types |
//! | `ablations` | DESIGN.md §5 — prefix length, negative ratio, reference count, distance variant |
//! | `standby_identification` | §VIII-A — identification from standby/operation traffic |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sentinel_core::eval::{cross_validate, CrossValConfig, EvaluationReport};
use sentinel_core::CoreError;
use sentinel_devices::{catalog, generate_dataset, NetworkEnvironment};
use sentinel_fingerprint::Dataset;

/// Number of setups per device type in the paper's dataset (§VI-A).
pub const RUNS_PER_TYPE: u32 = 20;

/// Default dataset seed shared across experiment binaries so that every
/// table/figure is computed from the same 540 fingerprints.
pub const DATASET_SEED: u64 = 0x5e17_1e57;

/// Builds the paper's evaluation dataset: 27 device types × 20 setups
/// = 540 fingerprints.
pub fn evaluation_dataset() -> Dataset {
    let profiles = catalog::standard_catalog();
    generate_dataset(
        &profiles,
        &NetworkEnvironment::default(),
        RUNS_PER_TYPE,
        DATASET_SEED,
    )
}

/// Builds the §VIII-A standby evaluation dataset: 27 device types ×
/// 20 standby observation windows = 540 fingerprints. A distinct seed
/// keeps the standby randomness independent of the setup dataset's.
pub fn standby_dataset() -> Dataset {
    sentinel_devices::standby::generate_standby_dataset(
        &NetworkEnvironment::default(),
        RUNS_PER_TYPE,
        DATASET_SEED ^ 0xa5a5_a5a5,
    )
}

/// Runs the paper's headline evaluation: stratified 10-fold
/// cross-validation repeated `repetitions` times.
///
/// # Errors
///
/// Propagates [`CoreError`] from training.
pub fn run_identification_eval(
    dataset: &Dataset,
    repetitions: usize,
    seed: u64,
) -> Result<EvaluationReport, CoreError> {
    let config = CrossValConfig {
        folds: 10,
        repetitions,
        seed,
        ..CrossValConfig::default()
    };
    cross_validate(dataset, &config)
}

/// The Fig. 5 x-axis order (paper device numbering; the final ten are
/// the confused types 1-10 of Table III).
pub fn fig5_order() -> Vec<&'static str> {
    catalog::standard_catalog()
        .iter()
        .map(|p| Box::leak(p.type_name.clone().into_boxed_str()) as &str)
        .collect()
}

/// Formats a ratio as the paper prints accuracies.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.3}")
}

/// Machine-readable bench reporting: wall-clock measurement plus a
/// tiny hand-rolled JSON writer (the workspace has no serde), so
/// benches can record their numbers as `BENCH_<name>.json` for the
/// perf trajectory across PRs.
pub mod bench_report {
    use std::io::Write;
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    /// Measures `f` and returns the best observed ns-per-iteration.
    ///
    /// Same estimator as the vendored criterion shim: a warm-up sizes
    /// the batch, the batch is timed a handful of times, and the
    /// lowest per-iteration time wins (minimum is the classic
    /// noise-resistant location estimator for timing). Honors
    /// `SENTINEL_BENCH_FAST=1` to shrink the budget in CI.
    pub fn measure_ns<O, F: FnMut() -> O>(mut f: F) -> f64 {
        let (warmup, measure, runs) = if std::env::var_os("SENTINEL_BENCH_FAST").is_some() {
            (Duration::from_millis(5), Duration::from_millis(20), 3)
        } else {
            (Duration::from_millis(50), Duration::from_millis(200), 5)
        };
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < warmup {
            std::hint::black_box(f());
            iters += 1;
        }
        let batch = iters.max(1);
        let per_run = (measure.as_nanos() as u64 / runs as u64).max(1);
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let mut done: u64 = 0;
            let t0 = Instant::now();
            while done < batch || t0.elapsed().as_nanos() < u128::from(per_run) {
                std::hint::black_box(f());
                done += 1;
            }
            let ns = t0.elapsed().as_nanos() as f64 / done as f64;
            if ns < best {
                best = ns;
            }
        }
        best
    }

    /// Renders an f64 for JSON (finite guard; JSON has no NaN/inf).
    fn json_number(v: f64) -> String {
        if v.is_finite() {
            format!("{v:.2}")
        } else {
            "null".to_string()
        }
    }

    /// The directory bench reports land in: `$SENTINEL_BENCH_OUT` if
    /// set, else the workspace root (the nearest ancestor of the
    /// running package carrying a `Cargo.lock` — `cargo bench` runs
    /// bench binaries with the *package* directory as CWD), else the
    /// current directory.
    pub fn report_dir() -> PathBuf {
        if let Some(dir) = std::env::var_os("SENTINEL_BENCH_OUT") {
            return PathBuf::from(dir);
        }
        if let Some(manifest_dir) = std::env::var_os("CARGO_MANIFEST_DIR") {
            let mut dir = PathBuf::from(manifest_dir);
            loop {
                if dir.join("Cargo.lock").is_file() {
                    return dir;
                }
                if !dir.pop() {
                    break;
                }
            }
        }
        PathBuf::from(".")
    }

    /// Writes `BENCH_<bench>.json` with a `results` object (the raw
    /// measurements, in `unit`) and a `derived` object (ratios and
    /// other computed figures) into [`report_dir`]. Returns the path
    /// written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_bench_json(
        bench: &str,
        unit: &str,
        results: &[(&str, f64)],
        derived: &[(&str, f64)],
    ) -> std::io::Result<PathBuf> {
        write_bench_json_sections(bench, unit, &[("results", results), ("derived", derived)])
    }

    /// Writes `BENCH_<bench>.json` with one flat `name: number` object
    /// per named section — the generalised shape for reports (like the
    /// fleet simulator's) that carry more than `results`/`derived`.
    /// Returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_bench_json_sections(
        bench: &str,
        unit: &str,
        sections: &[(&str, &[(&str, f64)])],
    ) -> std::io::Result<PathBuf> {
        let path = report_dir().join(format!("BENCH_{bench}.json"));
        let mut out = Vec::new();
        writeln!(out, "{{")?;
        writeln!(out, "  \"bench\": \"{bench}\",")?;
        writeln!(out, "  \"unit\": \"{unit}\",")?;
        for (s, (section, entries)) in sections.iter().enumerate() {
            writeln!(out, "  \"{section}\": {{")?;
            for (i, (name, value)) in entries.iter().enumerate() {
                let comma = if i + 1 == entries.len() { "" } else { "," };
                writeln!(out, "    \"{name}\": {}{comma}", json_number(*value))?;
            }
            let comma = if s + 1 == sections.len() { "" } else { "," };
            writeln!(out, "  }}{comma}")?;
        }
        writeln!(out, "}}")?;
        std::fs::write(&path, out)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_dataset_shape() {
        let ds = evaluation_dataset();
        assert_eq!(ds.len(), 540);
        assert_eq!(ds.labels().len(), 27);
    }

    #[test]
    fn fig5_order_has_27_types() {
        assert_eq!(fig5_order().len(), 27);
    }
}
