//! §VIII-A experiment: device-type identification from
//! **standby/operation traffic**, the paper's future-work hypothesis
//! for legacy installations ("message exchanges during standby and
//! operation cycles are likely to be characteristic for particular
//! device-types and therefore form a good basis for device-type
//! identification").
//!
//! Three measurements:
//!
//! 1. **Standby→standby**: stratified 10-fold cross-validation on the
//!    standby dataset — does the hypothesis hold when models are
//!    trained on standby traffic?
//! 2. **Setup→standby transfer**: models trained on setup
//!    fingerprints, tested on standby fingerprints — can the gateway
//!    reuse its setup-trained models for already-installed devices?
//! 3. **Setup→setup** (reference): the Fig. 5 protocol, for a
//!    side-by-side comparison.
//!
//! Usage: `standby_identification [repetitions]` (default 10).

use std::collections::HashMap;

use sentinel_bench::{
    evaluation_dataset, fig5_order, fmt_ratio, run_identification_eval, standby_dataset,
};
use sentinel_core::eval::evaluate_transfer;
use sentinel_core::IdentifierConfig;

fn main() {
    let repetitions: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    eprintln!("building setup dataset (27 types x 20 setups)...");
    let setup = evaluation_dataset();
    eprintln!("building standby dataset (27 types x 20 observation windows)...");
    let standby = standby_dataset();

    eprintln!("running {repetitions}x stratified 10-fold CV on standby fingerprints...");
    let standby_report =
        run_identification_eval(&standby, repetitions, 23).expect("standby evaluation runs");
    eprintln!("running {repetitions}x stratified 10-fold CV on setup fingerprints...");
    let setup_report =
        run_identification_eval(&setup, repetitions, 7).expect("setup evaluation runs");
    eprintln!("running setup->standby transfer...");
    let transfer_report = evaluate_transfer(&setup, &standby, &IdentifierConfig::default(), 99)
        .expect("transfer evaluation runs");

    println!("== §VIII-A: identification from standby/operation traffic ==");
    println!();
    println!("per-type accuracy (standby->standby CV vs setup->setup CV):");
    let standby_acc: HashMap<String, f64> =
        standby_report.per_type_accuracy().into_iter().collect();
    let setup_acc: HashMap<String, f64> = setup_report.per_type_accuracy().into_iter().collect();
    for name in fig5_order() {
        let s = standby_acc.get(name).copied().unwrap_or(0.0);
        let u = setup_acc.get(name).copied().unwrap_or(0.0);
        let bar: String = std::iter::repeat_n('#', (s * 40.0).round() as usize).collect();
        println!(
            "{name:>20} standby {} setup {} {bar}",
            fmt_ratio(s),
            fmt_ratio(u)
        );
    }
    println!();
    println!(
        "global accuracy, standby->standby: {}",
        fmt_ratio(standby_report.global_accuracy())
    );
    println!(
        "global accuracy, setup->setup:     {} (Fig. 5 protocol)",
        fmt_ratio(setup_report.global_accuracy())
    );
    println!(
        "global accuracy, setup->standby:   {} (transfer, no standby training)",
        fmt_ratio(transfer_report.global_accuracy())
    );
    println!(
        "transfer rejected as unknown:      {} of {} ({:.1}%)",
        transfer_report.no_match,
        transfer_report.total,
        100.0 * transfer_report.no_match as f64 / transfer_report.total.max(1) as f64
    );
    println!();
    println!(
        "standby multi-match rate: {:.1}% (setup: {:.1}%)",
        standby_report.multi_match_rate() * 100.0,
        setup_report.multi_match_rate() * 100.0
    );
    println!();
    println!("reading: a high standby->standby accuracy supports the paper's");
    println!("§VIII-A hypothesis that standby behaviour is type-characteristic;");
    println!("a low setup->standby accuracy shows why legacy profiling needs");
    println!("standby-trained models rather than reuse of setup-trained ones.");
}
