//! Regenerates **Table V**: latency experienced by user devices with
//! and without enforcement filtering, across the nine source ×
//! destination paths of the Fig. 4 testbed (15 iterations per pair in
//! the paper; configurable here).
//!
//! Usage: `table5_latency [iterations]` (default 15).

use sentinel_gateway::Testbed;

/// The paper's Table V reference values: (filtering mean, no-filtering
/// mean) per row.
const PAPER: [(f64, f64); 9] = [
    (24.8, 24.5),
    (18.4, 18.2),
    (20.6, 20.3),
    (28.5, 28.2),
    (17.2, 17.0),
    (20.0, 19.8),
    (27.6, 27.5),
    (15.5, 15.4),
    (20.6, 19.9),
];

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(15);
    let mut testbed = Testbed::new(0x7ab1e5, 100);
    let rows = testbed.latency_table(iterations);

    println!("== Table V: latency (ms) with and without filtering ==");
    println!(
        "{:<4} {:<9} | {:>20} | {:>20} | paper (filt/no-filt)",
        "src", "dst", "filtering mean(±sd)", "no filtering mean(±sd)"
    );
    for (row, paper) in rows.iter().zip(PAPER) {
        println!(
            "D{:<3} {:<9} | {:>12.1} (±{:>4.1}) | {:>12.1} (±{:>4.1}) | {:>5.1} / {:>5.1}",
            row.src,
            row.dst,
            row.filtering_mean,
            row.filtering_std,
            row.baseline_mean,
            row.baseline_std,
            paper.0,
            paper.1
        );
    }
    println!();
    let max_delta = rows
        .iter()
        .map(|r| r.filtering_mean - r.baseline_mean)
        .fold(f64::MIN, f64::max);
    println!(
        "largest filtering overhead on any path: {max_delta:.2} ms — \
         \"the enforcement mechanism ... does not impact the latency experienced by the user\""
    );
}
