//! Regenerates **Fig. 5**: ratio of correct identification for the 27
//! device types, via stratified 10-fold cross-validation repeated 10
//! times (§VI-B), plus the §VI-B prose statistics (global accuracy,
//! multi-match rate, mean edit-distance computations).
//!
//! Usage: `fig5_accuracy [repetitions]` (default 10).

use sentinel_bench::{evaluation_dataset, fig5_order, fmt_ratio, run_identification_eval};

fn main() {
    let repetitions: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    eprintln!("building dataset (27 types x 20 setups)...");
    let dataset = evaluation_dataset();
    eprintln!(
        "running {repetitions}x stratified 10-fold cross-validation on {} fingerprints...",
        dataset.len()
    );
    let report = run_identification_eval(&dataset, repetitions, 7).expect("evaluation runs");

    println!("== Fig. 5: ratio of correct identification per device type ==");
    let per_type: std::collections::HashMap<String, f64> =
        report.per_type_accuracy().into_iter().collect();
    let mut high_accuracy = 0usize;
    for name in fig5_order() {
        let acc = per_type.get(name).copied().unwrap_or(0.0);
        if acc >= 0.95 {
            high_accuracy += 1;
        }
        let bar: String = std::iter::repeat_n('#', (acc * 40.0).round() as usize).collect();
        println!("{name:>20} {} {bar}", fmt_ratio(acc));
    }
    println!();
    println!(
        "global accuracy (macro over types): {}",
        fmt_ratio(report.global_accuracy())
    );
    println!("paper reference:                    0.815");
    println!("types with accuracy >= 0.95:        {high_accuracy} (paper: 17 at >0.95)");
    println!();
    println!("== §VI-B prose statistics ==");
    println!(
        "fingerprints needing discrimination: {:.1}% (paper: 55%)",
        report.multi_match_rate() * 100.0
    );
    println!(
        "edit distance computations per identification: {:.1} (paper: ~7)",
        report.avg_distance_computations()
    );
    println!(
        "identifications rejected by all classifiers: {} of {}",
        report.no_match, report.total
    );
}
