//! Ablations over the design choices DESIGN.md §5 calls out:
//!
//! * F′ unique-packet prefix length (paper fixes 12),
//! * negative subsampling ratio (paper fixes 10×n),
//! * references per type for discrimination (paper fixes 5),
//! * edit-distance variant (paper's operation set = OSA),
//! * classifier accept threshold (sibling recall vs unknown
//!   detection trade-off),
//! * forest size (trees per per-type classifier).
//!
//! Each ablation runs a reduced cross-validation (2 repetitions) on
//! the full 540-fingerprint dataset and reports global accuracy.
//!
//! Usage: `ablations [repetitions]` (default 2).

use sentinel_bench::evaluation_dataset;
use sentinel_core::eval::{cross_validate, CrossValConfig};
use sentinel_core::IdentifierConfig;
use sentinel_editdist::DistanceVariant;
use sentinel_fingerprint::Dataset;

fn run(dataset: &Dataset, identifier: IdentifierConfig, reps: usize) -> (f64, f64) {
    let config = CrossValConfig {
        folds: 10,
        repetitions: reps,
        identifier,
        seed: 5,
        ..CrossValConfig::default()
    };
    let report = cross_validate(dataset, &config).expect("cross-validation");
    (report.global_accuracy(), report.multi_match_rate())
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);
    let dataset = evaluation_dataset();
    let base = IdentifierConfig::default();

    println!("== Ablation: F' unique-packet prefix length ==");
    println!("(the paper picked K=12 as \"a good trade-off\")");
    println!("{:>8} | {:>8} | {:>11}", "K", "accuracy", "multi-match");
    for prefix in [4usize, 8, 12, 16, 20] {
        let (acc, mm) = run(
            &dataset,
            IdentifierConfig {
                fixed_prefix_len: prefix,
                ..base
            },
            reps,
        );
        println!("{prefix:>8} | {acc:>8.3} | {:>10.1}%", mm * 100.0);
    }
    println!();

    println!("== Ablation: negative subsampling ratio ==");
    println!("{:>8} | {:>8} | {:>11}", "ratio", "accuracy", "multi-match");
    for ratio in [1usize, 5, 10, 25] {
        let (acc, mm) = run(
            &dataset,
            IdentifierConfig {
                negative_ratio: ratio,
                ..base
            },
            reps,
        );
        println!("{ratio:>7}x | {acc:>8.3} | {:>10.1}%", mm * 100.0);
    }
    println!("(paper uses 10x)\n");

    println!("== Ablation: references per type for discrimination ==");
    println!("{:>8} | {:>8}", "refs", "accuracy");
    for refs in [1usize, 3, 5, 10] {
        let (acc, _) = run(
            &dataset,
            IdentifierConfig {
                references_per_type: refs,
                ..base
            },
            reps,
        );
        println!("{refs:>8} | {acc:>8.3}");
    }
    println!("(paper uses 5)\n");

    println!("== Ablation: edit-distance variant ==");
    println!("{:>12} | {:>8}", "variant", "accuracy");
    for (name, variant) in [
        ("OSA", DistanceVariant::Osa),
        ("full-DL", DistanceVariant::FullDamerau),
        ("Levenshtein", DistanceVariant::Levenshtein),
    ] {
        let (acc, _) = run(
            &dataset,
            IdentifierConfig {
                distance: variant,
                ..base
            },
            reps,
        );
        println!("{name:>12} | {acc:>8.3}");
    }
    println!("(paper's operation set — insert/delete/substitute/adjacent-transpose — is OSA)\n");

    println!("== Ablation: classifier accept threshold ==");
    println!(
        "{:>10} | {:>8} | {:>11} | {:>9}",
        "threshold", "accuracy", "multi-match", "unknowns"
    );
    for threshold in [0.25f32, 0.35, 0.5, 0.65] {
        let config = CrossValConfig {
            folds: 10,
            repetitions: reps,
            identifier: IdentifierConfig {
                accept_threshold: threshold,
                ..base
            },
            seed: 5,
            ..CrossValConfig::default()
        };
        let report = cross_validate(&dataset, &config).expect("cross-validation");
        println!(
            "{threshold:>10.2} | {:>8.3} | {:>10.1}% | {:>9}",
            report.global_accuracy(),
            report.multi_match_rate() * 100.0,
            report.no_match
        );
    }
    println!("(default 0.35 favours sibling recall; >=0.5 favours unknown-device rejection)\n");

    println!("== Ablation: forest size (trees per classifier) ==");
    println!("{:>8} | {:>8} | {:>11}", "trees", "accuracy", "multi-match");
    for n_trees in [9usize, 17, 33, 65] {
        let (acc, mm) = run(
            &dataset,
            IdentifierConfig {
                forest: sentinel_ml::ForestConfig {
                    n_trees,
                    ..base.forest
                },
                ..base
            },
            reps,
        );
        println!("{n_trees:>8} | {acc:>8.3} | {:>10.1}%", mm * 100.0);
    }
    println!("(default 33; the paper does not report its forest size)");
}
