//! Failure injection: identification robustness under capture loss.
//!
//! The paper's models train on clean lab captures (§VI-A), but a
//! deployed Security Gateway drops frames — radio interference, ring
//! buffer overruns, promiscuous-mode load. This experiment trains on
//! the clean 540-fingerprint dataset and identifies *lossy* field
//! captures at increasing per-frame drop rates, measuring how
//! gracefully the two-stage pipeline degrades when fingerprint
//! columns go missing.
//!
//! Usage: `packet_loss [runs_per_type]` (default 10).

use sentinel_bench::{evaluation_dataset, DATASET_SEED};
use sentinel_core::eval::evaluate_transfer;
use sentinel_core::IdentifierConfig;
use sentinel_devices::{catalog, generate_dataset_with_loss, NetworkEnvironment};

fn main() {
    let runs: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    eprintln!("building clean training dataset (27 types x 20 setups)...");
    let clean = evaluation_dataset();
    let profiles = catalog::standard_catalog();
    let env = NetworkEnvironment::default();

    println!("== Identification accuracy vs capture frame loss ==");
    println!("(trained on clean captures; test captures drop each frame i.i.d.)");
    println!(
        "{:>10} | {:>8} | {:>9} | {:>11}",
        "loss", "accuracy", "unknown", "multi-match"
    );
    for loss in [0.0, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50] {
        // Fresh traces per level (disjoint seed from the training set).
        let lossy =
            generate_dataset_with_loss(&profiles, &env, runs, DATASET_SEED ^ 0x7e57_1055, loss);
        let report = evaluate_transfer(&clean, &lossy, &IdentifierConfig::default(), 12)
            .expect("transfer evaluation runs");
        println!(
            "{:>9.0}% | {:>8.3} | {:>8.1}% | {:>10.1}%",
            loss * 100.0,
            report.global_accuracy(),
            100.0 * report.no_match as f64 / report.total.max(1) as f64,
            report.multi_match_rate() * 100.0,
        );
    }
    println!();
    println!("reading: degradation is gradual (no cliff at the first dropped");
    println!("frame) but the fingerprint is loss-sensitive — every early setup");
    println!("packet shifts the F' prefix the classifiers were trained on.");
    println!("Gateways should capture setup traffic at high priority, and");
    println!("re-fingerprint on the next setup/standby window when stage one");
    println!("rejects a capture taken under load.");
}
