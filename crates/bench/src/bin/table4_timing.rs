//! Regenerates **Table IV**: time consumption for device-type
//! identification — single classification, single discrimination,
//! fingerprint extraction, 27 classifications, the discrimination
//! phase, and full type identification.
//!
//! Absolute numbers depend on the host; the paper's *shape* must hold:
//! one Random Forest classification is orders of magnitude cheaper
//! than one edit-distance discrimination, and identification time is
//! dominated by discrimination.
//!
//! Usage: `table4_timing`

use sentinel_bench::{evaluation_dataset, DATASET_SEED};
use sentinel_core::eval::{measure_extraction, measure_identification};
use sentinel_core::Trainer;
use sentinel_devices::{capture_setups, catalog, NetworkEnvironment};
use sentinel_fingerprint::Fingerprint;

fn main() {
    let dataset = evaluation_dataset();
    eprintln!("training the 27-classifier identifier...");
    let identifier = Trainer::default().train(&dataset, 7).expect("training");

    // Time identification over 200 fingerprints drawn round-robin.
    let test: Vec<&Fingerprint> = dataset
        .iter()
        .step_by(2)
        .take(200)
        .map(|s| s.fingerprint())
        .collect();
    eprintln!("timing identification over {} fingerprints...", test.len());
    let report = measure_identification(&identifier, &test);

    // Time extraction over freshly captured packet sequences.
    let env = NetworkEnvironment::default();
    let captures: Vec<Vec<sentinel_net::Packet>> = catalog::standard_catalog()
        .iter()
        .map(|p| {
            capture_setups(p, &env, 1, DATASET_SEED ^ 0xE)
                .remove(0)
                .into_packets()
        })
        .collect();
    let extraction = measure_extraction(&captures);

    println!("== Table IV: time consumption for device-type identification ==");
    println!("{:<42} {:>22}  (paper)", "step", "measured");
    println!(
        "{:<42} {:>22}  0.014 ms (±0.003)",
        "1 classification (Random Forest)",
        report.single_classification.to_string()
    );
    println!(
        "{:<42} {:>22}  23.36 ms (±24.37)",
        "1 discrimination (edit distance)",
        report.single_discrimination.to_string()
    );
    println!(
        "{:<42} {:>22}  0.850 ms (±0.698)",
        "fingerprint extraction",
        extraction.to_string()
    );
    println!(
        "{:<42} {:>22}  0.385 ms (±0.081)",
        format!(
            "{} classifications (Random Forest)",
            report.classifier_count
        ),
        report.full_classification.to_string()
    );
    println!(
        "{:<42} {:>22}  156.5 ms (±170.6)",
        "discrimination phase (when needed)",
        report.discrimination_phase.to_string()
    );
    println!(
        "{:<42} {:>22}  157.7 ms (±171.4)",
        "type identification (end to end)",
        report.identification.to_string()
    );
    println!();
    println!(
        "mean edit-distance computations per identification: {:.1} (paper: ~7)",
        report.avg_distance_computations
    );
    let ratio =
        report.single_discrimination.mean_ms / report.single_classification.mean_ms.max(1e-9);
    println!(
        "discrimination / classification cost ratio: {ratio:.0}x (paper: ~1670x) — \
         the shape requirement is discrimination >> classification"
    );
}
