//! Regenerates **Table VI**: relative overhead of the filtering
//! mechanism — latency on the two wireless paths, CPU utilisation and
//! memory usage.
//!
//! Usage: `table6_overhead [iterations]` (default 600; the paper used
//! 15 per pair, which leaves large stddevs — more iterations tighten
//! the mean without changing it).

use sentinel_gateway::Testbed;

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(600);
    let mut testbed = Testbed::new(0x0ead, 100);
    let report = testbed.overhead_report(iterations);

    println!("== Table VI: overhead due to filtering mechanism ==");
    println!("{:<22} {:>18}  (paper)", "case", "measured");
    let row = |label: &str, value: (f64, f64), paper: &str| {
        println!(
            "{label:<22} {:>+8.2}% (±{:>4.2})  {paper}",
            value.0, value.1
        );
    };
    row("D1-D2 latency", report.d1d2_latency_pct, "+5.84% (±4.76%)");
    row("D1-D3 latency", report.d1d3_latency_pct, "+0.71% (±5.88%)");
    row("CPU utilization", report.cpu_pct, "+0.63% (±1.8%)");
    row("Memory usage", report.memory_pct, "+7.6% (±4.6%)");
    println!();
    println!("shape requirement: every overhead stays in single-digit percent;");
    println!("the wireless-redirect path (D1-D2) costs the most.");
}
