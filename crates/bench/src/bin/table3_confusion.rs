//! Regenerates **Table III**: the confusion matrix for the ten device
//! types with low identification rate (the four same-vendor blocks).
//!
//! Usage: `table3_confusion [repetitions]` (default 10).

use sentinel_bench::{evaluation_dataset, run_identification_eval};
use sentinel_devices::catalog;

fn main() {
    let repetitions: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let dataset = evaluation_dataset();
    eprintln!("running {repetitions}x 10-fold cross-validation...");
    let report = run_identification_eval(&dataset, repetitions, 7).expect("evaluation runs");

    // The paper numbers the confused devices 1-10 in catalogue order.
    let confused: Vec<&str> = catalog::confusion_groups().into_iter().flatten().collect();
    println!("== Table III: confusion matrix (A = actual, P = predicted) ==");
    println!("device numbering:");
    for (i, name) in confused.iter().enumerate() {
        println!("  ({}) {}", i + 1, name);
    }
    println!();
    print!("A\\P |");
    for i in 1..=confused.len() {
        print!(" {i:>5}");
    }
    println!(" | other unknown");
    for (i, actual) in confused.iter().enumerate() {
        print!("{:>3} |", i + 1);
        let mut in_block = 0usize;
        for predicted in &confused {
            let n = report.confusion.count(actual, predicted);
            in_block += n;
            print!(" {n:>5}");
        }
        let total = report.confusion.row_total(actual);
        let unknown = report.confusion.count(actual, "<unknown>");
        let other = total - in_block - unknown;
        println!(" | {other:>5} {unknown:>7}");
    }
    println!();
    println!("expected shape (paper): block-diagonal within the four vendor groups,");
    println!("zero confusion across groups, first row (D-LinkSwitch) partially separable.");

    // Quantify block purity: predictions must stay inside the actual
    // device's own vendor block.
    let groups = catalog::confusion_groups();
    let mut within = 0usize;
    let mut outside = 0usize;
    for group in &groups {
        for actual in group {
            for predicted in &confused {
                let n = report.confusion.count(actual, predicted);
                if group.contains(predicted) {
                    within += n;
                } else {
                    outside += n;
                }
            }
        }
    }
    println!(
        "\nblock purity: {:.1}% of confused-device predictions stay within the vendor block",
        within as f64 / (within + outside).max(1) as f64 * 100.0
    );
}
