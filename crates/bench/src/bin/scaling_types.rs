//! Regenerates the §VI-B scalability claim: "the classification with
//! Random Forest takes very little time (<1 ms) and grows linearly
//! with the number of types to identify. This shows that IoT Sentinel
//! can easily scale to thousands of device-types while keeping
//! classification time below 100 ms."
//!
//! Where the original harness *projected* large type counts from the
//! per-classifier cost, this now **measures** them: the trained
//! 27-classifier bank is compiled into its flat arena and tiled to the
//! target type count (each replica with its own arena region, so the
//! memory footprint behaves like a genuinely larger bank), then a full
//! early-exit voting pass is timed at every size. The interpreted
//! projection is kept alongside as the baseline the compiled bank is
//! beating.
//!
//! Usage: `scaling_types`

use sentinel_bench::bench_report::measure_ns;
use sentinel_bench::evaluation_dataset;
use sentinel_core::Trainer;

fn main() {
    let dataset = evaluation_dataset();
    eprintln!("training the 27-type identifier once...");
    let identifier = Trainer::default().train(&dataset, 7).expect("training");
    let probe = dataset.sample(0).fingerprint().to_fixed();
    let base_types = identifier.type_count();

    // Interpreted baseline: per-classifier cost from the real
    // 27-classifier bank, projected linearly (it has no early exit, so
    // the projection is faithful).
    let interpreted_bank_ns = measure_ns(|| {
        std::hint::black_box(identifier.classify_candidates_interpreted(&probe));
    });
    let interpreted_per_classifier_ms = interpreted_bank_ns / 1e6 / base_types as f64;

    println!("== §VI-B: classification scaling in the number of device types ==");
    println!(
        "interpreted bank: one {base_types}-classifier pass = {:.4} ms \
         ({:.5} ms per classifier, projected linearly below)",
        interpreted_bank_ns / 1e6,
        interpreted_per_classifier_ms
    );
    println!();
    println!(
        "{:>8} | {:>12} | {:>12} | {:>14} | below 100 ms?",
        "types", "compiled ms", "arena KiB", "interpreted ms"
    );
    for &target in &[27usize, 108, 513, 999, 2_001, 4_995] {
        let replicas = target.div_ceil(base_types);
        let bank = identifier.compiled_bank().repeat(replicas);
        let types = bank.forest_count();
        let sample = probe.as_slice();
        let compiled_ns = measure_ns(|| {
            let mut accepted = 0usize;
            bank.for_each_accepting(sample, |_| accepted += 1);
            std::hint::black_box(accepted);
        });
        let compiled_ms = compiled_ns / 1e6;
        let projected_interpreted_ms = interpreted_per_classifier_ms * types as f64;
        println!(
            "{types:>8} | {compiled_ms:>12.3} | {:>12} | {projected_interpreted_ms:>14.3} | {}",
            bank.arena_bytes() / 1024,
            if compiled_ms < 100.0 { "yes" } else { "NO" }
        );
    }
    println!();
    println!(
        "paper: 27 classifications = 0.385 ms; classification stays below 100 ms \
         into the thousands of types — measured (not projected) here on the \
         compiled bank, same conclusion with margin to spare."
    );
}
