//! Regenerates the §VI-B scalability claim: "the classification with
//! Random Forest takes very little time (<1 ms) and grows linearly
//! with the number of types to identify. This shows that IoT Sentinel
//! can easily scale to thousands of device-types while keeping
//! classification time below 100 ms."
//!
//! We time the stage-one classifier bank at increasing type counts by
//! replicating trained classifiers (classification cost depends only
//! on the number of classifiers, not on how they were trained).
//!
//! Usage: `scaling_types`

use std::time::Instant;

use sentinel_bench::evaluation_dataset;
use sentinel_core::Trainer;

fn main() {
    let dataset = evaluation_dataset();
    eprintln!("training the 27-type identifier once...");
    let identifier = Trainer::default().train(&dataset, 7).expect("training");
    let probe = dataset.sample(0).fingerprint().to_fixed();

    // Measure per-classifier cost from the real 27-classifier bank.
    let reps = 2_000;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = identifier.classify_candidates(&probe);
    }
    let bank_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    let per_classifier_ms = bank_ms / identifier.type_count() as f64;

    println!("== §VI-B: classification scaling in the number of device types ==");
    println!(
        "measured: one 27-classifier pass = {bank_ms:.4} ms ({per_classifier_ms:.5} ms per classifier)"
    );
    println!();
    println!(
        "{:>8} | {:>16} | below 100 ms?",
        "types", "classification ms"
    );
    for types in [27usize, 100, 500, 1_000, 2_000, 5_000] {
        let projected = per_classifier_ms * types as f64;
        println!(
            "{types:>8} | {projected:>16.3} | {}",
            if projected < 100.0 { "yes" } else { "NO" }
        );
    }
    println!();
    println!(
        "paper: 27 classifications = 0.385 ms; classification stays below 100 ms \
         into the thousands of types — linear growth, same conclusion here."
    );
}
