//! Regenerates **Fig. 6**: gateway performance scaling.
//!
//! * `fig6_scaling latency` — Fig. 6a: latency vs concurrent flows on
//!   the D1-D2 and D1-D3 paths, with and without filtering.
//! * `fig6_scaling cpu` — Fig. 6b: CPU utilisation vs concurrent
//!   flows.
//! * `fig6_scaling memory` — Fig. 6c: memory consumption vs number of
//!   enforcement rules.
//! * `fig6_scaling all` (default) — all three series.

use sentinel_gateway::Testbed;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let mut testbed = Testbed::new(0xF16, 0);
    if which == "latency" || which == "all" {
        latency(&mut testbed);
    }
    if which == "cpu" || which == "all" {
        cpu(&mut testbed);
    }
    if which == "memory" || which == "all" {
        memory(&mut testbed);
    }
}

fn latency(testbed: &mut Testbed) {
    println!("== Fig. 6a: latency (ms) vs concurrent flows ==");
    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10}",
        "flows", "D1-D2 w/", "D1-D2 w/o", "D1-D3 w/", "D1-D3 w/o"
    );
    let flow_counts: Vec<usize> = (20..=150).step_by(10).collect();
    for p in testbed.latency_vs_flows(&flow_counts, 60) {
        println!(
            "{:>6} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1}",
            p.flows, p.with_filtering, p.without_filtering, p.secondary_with, p.secondary_without
        );
    }
    println!("paper shape: both paths flat (≈15 and ≈22 ms) up to 150 flows,\nfiltering curve marginally above the baseline.\n");
}

fn cpu(testbed: &mut Testbed) {
    println!("== Fig. 6b: CPU utilization (%) vs concurrent flows ==");
    println!(
        "{:>6} | {:>12} {:>12}",
        "flows", "filtering", "no filtering"
    );
    let flow_counts: Vec<usize> = (0..=150).step_by(10).collect();
    for p in testbed.cpu_vs_flows(&flow_counts, 120) {
        println!(
            "{:>6} | {:>12.1} {:>12.1}",
            p.flows, p.with_filtering, p.without_filtering
        );
    }
    println!("paper shape: ≈37% idle rising to ≈47-48% at 150 flows; filtering adds <1 point.\n");
}

fn memory(testbed: &mut Testbed) {
    println!("== Fig. 6c: memory consumption (MB) vs enforcement rules ==");
    println!(
        "{:>7} | {:>12} {:>12}",
        "rules", "filtering", "no filtering"
    );
    let rule_counts: Vec<usize> = (0..=20_000).step_by(2_000).collect();
    for p in testbed.memory_vs_rules(&rule_counts) {
        println!(
            "{:>7} | {:>12.1} {:>12.1}",
            p.rules, p.with_filtering_mb, p.without_filtering_mb
        );
    }
    println!("paper shape: ≈40 MB base growing near-linearly to ≈90 MB at 20,000 rules;\nfiltering and no-filtering curves nearly coincide.");
}
