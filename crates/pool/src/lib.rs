//! Persistent work-stealing compute pool for the IoT SENTINEL service.
//!
//! Every parallel path in the workspace — batch chunking in
//! `sentinel-core`, sharded span scans in `sentinel-ml`, background
//! recompiles behind hot reload — used to spawn scoped threads per
//! call, and those scopes *nested* when a batch fanned out over a
//! sharded bank (threads × threads). This crate replaces all of that
//! with one pool of pinned worker threads created once and reused for
//! the life of the service:
//!
//! * **Per-worker deques + a global injector.** Each worker owns a
//!   deque it pushes/pops at the back (LIFO, so nested jobs run
//!   depth-first with hot caches) while idle workers steal from the
//!   front of other deques (FIFO, so the oldest — typically outermost
//!   and largest — jobs migrate first). External threads submit
//!   through a shared injector queue. This is the Chase–Lev schedule
//!   with the deques guarded by uncontended mutexes instead of the
//!   epoch-reclamation machinery the lock-free variant needs; tasks
//!   here are coarse (span ranges, batch chunks), so the lock is noise.
//! * **Fork-join over borrowed data.** [`ComputePool::for_each`] is a
//!   scoped `join`: the job descriptor lives on the caller's stack,
//!   workers are handed copyable *tickets* pointing at it, and the call
//!   does not return until every task ran and every ticket has been
//!   retired — so closures may freely borrow `&CompiledBank`, scratch
//!   buffers, or anything else from the caller's frame.
//! * **No oversubscription under nesting.** A task already running on a
//!   pool worker executes sub-jobs by pushing tickets onto its own
//!   deque and draining the task cursor itself; it never blocks waiting
//!   for threads that do not exist and never spawns. Total live
//!   compute threads are exactly the pool size, forever.
//! * **Panic containment.** Each task runs under `catch_unwind`; the
//!   first panic message is captured and surfaced as a typed
//!   [`TaskPanic`] from the submitting call. Remaining tasks still
//!   execute, so the executed-equals-submitted counter reconciliation
//!   holds even on the failure path, and the pool itself is never
//!   poisoned.
//! * **Warm calls are zero-allocation and zero-spawn.** Job state is
//!   stack-allocated, tickets are `Copy`, the queues reuse their grown
//!   capacity, and `Mutex`/`Condvar` are futex-backed on Linux. The
//!   [`thread_spawns`] counter (bumped here per worker created, and by
//!   the `crossbeam` compat shim per scoped spawn) lets tests pin the
//!   zero-spawn property exactly.
//!
//! # Safety
//!
//! This crate contains the workspace's only `unsafe` code, confined to
//! one idea: a [`Ticket`] carries a lifetime-erased pointer to the
//! stack-allocated [`JobCore`] of a submitting call. The pointer is
//! guaranteed valid for as long as any ticket exists because the
//! submitting call never returns before `done == tasks` **and**
//! `outstanding == 0` — i.e. every queued ticket has been either
//! consumed by a worker or purged from the queues by the caller, and
//! every in-flight ticket has been retired. Workers therefore never
//! observe a dangling job pointer.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Environment variable overriding the global pool's worker count.
pub const POOL_THREADS_ENV: &str = "SENTINEL_POOL_THREADS";

/// Locks a mutex, recovering the guard if a panicking task poisoned it.
///
/// Pool state stays consistent across task panics by construction
/// (every critical section only moves plain counters and queue entries),
/// so poisoning carries no information here.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Spawn accounting
// ---------------------------------------------------------------------------

static THREAD_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Records one OS thread creation. Called by the pool for its own
/// workers and by the `crossbeam` compat shim for every scoped spawn,
/// so allocation-style tests can assert warm paths spawn nothing.
pub fn note_thread_spawn() {
    THREAD_SPAWNS.fetch_add(1, Ordering::Relaxed);
}

/// Total OS threads spawned through instrumented paths since process
/// start. Monotone; diff across a region to count spawns inside it.
pub fn thread_spawns() -> u64 {
    THREAD_SPAWNS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A task submitted to the pool panicked.
///
/// The panic was contained on the worker (or caller) that ran the task:
/// sibling tasks in the same job still executed, the pool remains fully
/// usable, and the first panic's message is carried here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    message: String,
}

impl TaskPanic {
    fn new(message: String) -> Self {
        Self { message }
    }

    /// The first panicking task's payload, rendered as text.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Monotone event counters for one pool, snapshot via
/// [`ComputePool::counters`]. Mirrored into the observability registry
/// by the serve layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Tasks handed to the pool (`for_each` task indices plus `run` calls).
    pub submitted: u64,
    /// Tasks that finished executing (panicked tasks included).
    pub executed: u64,
    /// Tickets taken from another worker's deque.
    pub steals: u64,
    /// Tickets pushed by threads outside the pool into the injector.
    pub injector_pushes: u64,
    /// Times a worker parked because no work was queued.
    pub parks: u64,
    /// Times a parked worker was woken.
    pub unparks: u64,
}

#[derive(Default)]
struct CounterCells {
    submitted: AtomicU64,
    executed: AtomicU64,
    steals: AtomicU64,
    injector_pushes: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
}

// ---------------------------------------------------------------------------
// Job protocol
// ---------------------------------------------------------------------------

/// Stack-allocated descriptor for one fork-join submission.
///
/// `run` is the caller's closure with its borrow lifetime erased; see
/// the crate-level safety section for why the erasure is sound. The
/// `cursor` dispenses task indices to whichever threads hold tickets,
/// which is what makes the schedule work-stealing at task granularity:
/// a slow worker simply claims fewer indices.
struct JobCore {
    run: &'static (dyn Fn(usize) + Sync),
    tasks: usize,
    cursor: AtomicUsize,
    state: Mutex<JobState>,
    complete: Condvar,
}

struct JobState {
    /// Tasks whose closure invocation has returned (or panicked).
    done: usize,
    /// Tickets pushed for this job and not yet consumed, purged, or retired.
    outstanding: usize,
    /// First contained panic, if any task panicked.
    panic: Option<String>,
}

/// A copyable invitation for one thread to help drain a job's cursor.
///
/// Holding a ticket grants shared access to the referenced [`JobCore`];
/// validity is guaranteed by the submission protocol (the core outlives
/// all tickets by construction), never by lifetimes.
#[derive(Clone, Copy)]
struct Ticket {
    job: *const JobCore,
}

// SAFETY: a ticket is a plain pointer plus the protocol invariant that
// the pointee outlives it (enforced by `execute_job`, which never
// returns while `outstanding > 0`). `JobCore` itself is Sync: every
// field is either immutable, atomic, or mutex-guarded, and `run` is a
// `Sync` closure.
unsafe impl Send for Ticket {}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

struct Sleep {
    shutdown: bool,
}

struct Shared {
    /// Process-unique id so nested submissions can tell whether the
    /// current thread is a worker of *this* pool.
    pool_id: usize,
    threads: usize,
    injector: Mutex<VecDeque<Ticket>>,
    deques: Vec<Mutex<VecDeque<Ticket>>>,
    /// Queued-ticket count; the parking fast path re-checks it under
    /// `sleep` so a push can never slip between check and wait.
    pending: AtomicUsize,
    sleep: Mutex<Sleep>,
    wake: Condvar,
    counters: CounterCells,
}

thread_local! {
    /// `(pool_id, worker_index)` when the current thread is a pool worker.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

static POOL_IDS: AtomicUsize = AtomicUsize::new(0);

/// A fixed-size pool of pinned worker threads executing fork-join jobs
/// over borrowed data. See the crate docs for the full design.
pub struct ComputePool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputePool")
            .field("threads", &self.shared.threads)
            .finish_non_exhaustive()
    }
}

impl ComputePool {
    /// Creates a pool with `threads` pinned workers (clamped to at
    /// least 1). Workers are created once, here, and live until the
    /// pool is dropped; no call on the pool ever spawns again.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            pool_id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            threads,
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(Sleep { shutdown: false }),
            wake: Condvar::new(),
            counters: CounterCells::default(),
        });
        let handles = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                note_thread_spawn();
                std::thread::Builder::new()
                    .name(format!("sentinel-pool-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("spawning pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of worker threads (fixed at construction).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Snapshot of the pool's monotone event counters.
    pub fn counters(&self) -> PoolCounters {
        let c = &self.shared.counters;
        PoolCounters {
            submitted: c.submitted.load(Ordering::Relaxed),
            executed: c.executed.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            injector_pushes: c.injector_pushes.load(Ordering::Relaxed),
            parks: c.parks.load(Ordering::Relaxed),
            unparks: c.unparks.load(Ordering::Relaxed),
        }
    }

    /// Whether the current thread is one of this pool's workers.
    pub fn on_worker(&self) -> bool {
        self.current_worker().is_some()
    }

    /// Runs `f(0), f(1), …, f(tasks - 1)` across the pool and returns
    /// once all of them finished. The caller participates: it claims
    /// task indices alongside the workers, so a single-task job (or a
    /// call from a pool already saturated elsewhere) degenerates to an
    /// inline loop with no queue traffic beyond the initial tickets.
    ///
    /// Nested use is the designed case: when called from a task already
    /// running on one of this pool's workers, helper tickets go onto
    /// that worker's own deque for siblings to steal — never a new
    /// thread — so fan-out depth never multiplies thread count.
    ///
    /// Any task panic is contained and reported as [`TaskPanic`];
    /// sibling tasks still run.
    pub fn for_each<F>(&self, tasks: usize, f: F) -> Result<(), TaskPanic>
    where
        F: Fn(usize) + Sync,
    {
        let run: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: erases the borrow lifetime of `run` for storage in the
        // JobCore. `execute_job` does not return until no ticket (and so
        // no worker) can reach the job any more, and `f` lives on this
        // frame until after that return.
        let run: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(run) };
        self.execute_job(tasks, run, true)
    }

    /// Executes `f` on a pool worker and returns its result, parking
    /// the calling thread until done. This is the hand-off used by I/O
    /// threads (serve connections, reload handling) that must not do
    /// compute themselves. Called from a thread that *is* a worker of
    /// this pool, it runs inline instead — blocking a worker on its own
    /// pool would deadlock a size-1 pool.
    pub fn run<R, F>(&self, f: F) -> Result<R, TaskPanic>
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if self.on_worker() {
            self.shared
                .counters
                .submitted
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .counters
                .executed
                .fetch_add(1, Ordering::Relaxed);
            return catch_unwind(AssertUnwindSafe(f))
                .map_err(|payload| TaskPanic::new(panic_message(payload)));
        }
        let func = Mutex::new(Some(f));
        let result = Mutex::new(None);
        let call = |_task: usize| {
            let f = lock(&func).take().expect("run task claimed twice");
            let value = f();
            *lock(&result) = Some(value);
        };
        let run: &(dyn Fn(usize) + Sync) = &call;
        // SAFETY: same protocol as `for_each` — the job completes before
        // this frame (holding `func`/`result`/`call`) unwinds.
        let run: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(run) };
        self.execute_job(1, run, false)?;
        let value = lock(&result)
            .take()
            .expect("run task completed without result");
        Ok(value)
    }

    fn current_worker(&self) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((pool, index)) if pool == self.shared.pool_id => Some(index),
            _ => None,
        })
    }

    /// Core submission protocol. With `participate` the caller drains
    /// the cursor itself and then purges its leftover tickets; without
    /// it (the `run` hand-off) exactly the queued tickets execute the
    /// work. Either way this returns only once `done == tasks` and
    /// `outstanding == 0`, which is the invariant the `unsafe` lifetime
    /// erasure rests on.
    fn execute_job(
        &self,
        tasks: usize,
        run: &'static (dyn Fn(usize) + Sync),
        participate: bool,
    ) -> Result<(), TaskPanic> {
        let shared = &*self.shared;
        if tasks == 0 {
            return Ok(());
        }
        shared
            .counters
            .submitted
            .fetch_add(tasks as u64, Ordering::Relaxed);
        if participate && tasks == 1 {
            // Pure inline fast path: no tickets, no wakeups, no waiting.
            let job = JobCore {
                run,
                tasks: 1,
                cursor: AtomicUsize::new(1),
                state: Mutex::new(JobState {
                    done: 0,
                    outstanding: 0,
                    panic: None,
                }),
                complete: Condvar::new(),
            };
            execute_task(shared, &job, 0);
            let mut state = lock(&job.state);
            return match state.panic.take() {
                Some(message) => Err(TaskPanic::new(message)),
                None => Ok(()),
            };
        }

        let job = JobCore {
            run,
            tasks,
            cursor: AtomicUsize::new(0),
            state: Mutex::new(JobState {
                done: 0,
                outstanding: 0,
                panic: None,
            }),
            complete: Condvar::new(),
        };
        let tickets = if participate {
            shared.threads.min(tasks - 1)
        } else {
            shared.threads.min(tasks)
        };
        lock(&job.state).outstanding = tickets;
        self.push_tickets(Ticket { job: &job }, tickets);

        if participate {
            loop {
                let index = job.cursor.fetch_add(1, Ordering::Relaxed);
                if index >= tasks {
                    break;
                }
                execute_task(shared, &job, index);
            }
            // Every task index is claimed; tickets still sitting in a
            // queue are pure bookkeeping now. Remove them ourselves so
            // completion never waits on a parked or busy worker.
            self.purge_tickets(&job);
        }

        let mut state = lock(&job.state);
        while state.done < tasks || state.outstanding > 0 {
            state = job
                .complete
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        match state.panic.take() {
            Some(message) => Err(TaskPanic::new(message)),
            None => Ok(()),
        }
    }

    fn push_tickets(&self, ticket: Ticket, count: usize) {
        if count == 0 {
            return;
        }
        let shared = &*self.shared;
        // `pending` rises before the tickets become visible so a worker
        // that races past an empty queue still refuses to park.
        shared.pending.fetch_add(count, Ordering::SeqCst);
        match self.current_worker() {
            Some(index) => {
                let mut deque = lock(&shared.deques[index]);
                for _ in 0..count {
                    deque.push_back(ticket);
                }
            }
            None => {
                shared
                    .counters
                    .injector_pushes
                    .fetch_add(count as u64, Ordering::Relaxed);
                let mut injector = lock(&shared.injector);
                for _ in 0..count {
                    injector.push_back(ticket);
                }
            }
        }
        let _guard = lock(&shared.sleep);
        shared.wake.notify_all();
    }

    /// Removes every queued ticket for `job` (identified by pointer)
    /// from the injector and all deques. Only sound once the job's
    /// cursor is exhausted — a purged ticket must represent no
    /// remaining work.
    fn purge_tickets(&self, job: &JobCore) {
        let shared = &*self.shared;
        let target: *const JobCore = job;
        let mut removed = 0usize;
        {
            let mut injector = lock(&shared.injector);
            let before = injector.len();
            injector.retain(|ticket| !std::ptr::eq(ticket.job, target));
            removed += before - injector.len();
        }
        for deque in &shared.deques {
            let mut deque = lock(deque);
            let before = deque.len();
            deque.retain(|ticket| !std::ptr::eq(ticket.job, target));
            removed += before - deque.len();
        }
        if removed > 0 {
            shared.pending.fetch_sub(removed, Ordering::SeqCst);
            let mut state = lock(&job.state);
            state.outstanding -= removed;
            if state.outstanding == 0 {
                job.complete.notify_all();
            }
        }
    }
}

impl Drop for ComputePool {
    fn drop(&mut self) {
        {
            let mut sleep = lock(&self.shared.sleep);
            sleep.shutdown = true;
        }
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs one task index under panic containment and records completion.
fn execute_task(shared: &Shared, job: &JobCore, index: usize) {
    let outcome = catch_unwind(AssertUnwindSafe(|| (job.run)(index)));
    shared.counters.executed.fetch_add(1, Ordering::Relaxed);
    let mut state = lock(&job.state);
    if let Err(payload) = outcome {
        if state.panic.is_none() {
            state.panic = Some(panic_message(payload));
        }
    }
    state.done += 1;
    if state.done == job.tasks {
        job.complete.notify_all();
    }
}

/// Drains the job behind `ticket` until its cursor is exhausted, then
/// retires the ticket.
fn work_ticket(shared: &Shared, ticket: Ticket) {
    // SAFETY: the submission protocol keeps the JobCore alive while any
    // ticket for it exists (see crate docs).
    let job = unsafe { &*ticket.job };
    loop {
        let index = job.cursor.fetch_add(1, Ordering::Relaxed);
        if index >= job.tasks {
            break;
        }
        execute_task(shared, job, index);
    }
    let mut state = lock(&job.state);
    state.outstanding -= 1;
    if state.outstanding == 0 {
        job.complete.notify_all();
    }
}

/// Pops the next ticket for worker `index`: own deque back first
/// (LIFO), then the injector, then steals from sibling deques (FIFO).
fn find_ticket(shared: &Shared, index: usize) -> Option<Ticket> {
    if let Some(ticket) = lock(&shared.deques[index]).pop_back() {
        shared.pending.fetch_sub(1, Ordering::SeqCst);
        return Some(ticket);
    }
    if let Some(ticket) = lock(&shared.injector).pop_front() {
        shared.pending.fetch_sub(1, Ordering::SeqCst);
        return Some(ticket);
    }
    for offset in 1..shared.threads {
        let victim = (index + offset) % shared.threads;
        if let Some(ticket) = lock(&shared.deques[victim]).pop_front() {
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            shared.counters.steals.fetch_add(1, Ordering::Relaxed);
            return Some(ticket);
        }
    }
    None
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((shared.pool_id, index))));
    loop {
        if let Some(ticket) = find_ticket(&shared, index) {
            work_ticket(&shared, ticket);
            continue;
        }
        let mut sleep = lock(&shared.sleep);
        if sleep.shutdown {
            return;
        }
        if shared.pending.load(Ordering::SeqCst) > 0 {
            // A push slipped in after our queue sweep; retry instead of
            // parking past live work.
            continue;
        }
        shared.counters.parks.fetch_add(1, Ordering::Relaxed);
        sleep = shared
            .wake
            .wait(sleep)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        shared.counters.unparks.fetch_add(1, Ordering::Relaxed);
        if sleep.shutdown {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Global pool
// ---------------------------------------------------------------------------

/// Worker count for the global pool: `SENTINEL_POOL_THREADS` when set
/// to a positive integer, otherwise the machine's available
/// parallelism.
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var(POOL_THREADS_ENV) {
        if let Ok(parsed) = raw.trim().parse::<usize>() {
            if parsed > 0 {
                return parsed;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

static GLOBAL: OnceLock<Arc<ComputePool>> = OnceLock::new();

/// The process-wide pool, created on first use and sized by
/// [`default_threads`]. Service cells default to sharing it so a
/// process hosting several services still runs one set of compute
/// threads.
pub fn global() -> &'static Arc<ComputePool> {
    GLOBAL.get_or_init(|| Arc::new(ComputePool::new(default_threads())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn for_each_runs_every_task_exactly_once() {
        let pool = ComputePool::new(4);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = ComputePool::new(2);
        pool.for_each(0, |_| panic!("must not run")).unwrap();
    }

    #[test]
    fn single_task_runs_inline_on_the_caller() {
        let pool = ComputePool::new(4);
        let caller = std::thread::current().id();
        let ran_on = Mutex::new(None);
        pool.for_each(1, |_| {
            *lock(&ran_on) = Some(std::thread::current().id());
        })
        .unwrap();
        assert_eq!(lock(&ran_on).take(), Some(caller));
        // And it never touched the queues.
        assert_eq!(pool.counters().injector_pushes, 0);
    }

    #[test]
    fn size_one_pool_matches_sequential_results_bit_identically() {
        let pool = ComputePool::new(1);
        let pooled: Vec<Mutex<u64>> = (0..64).map(|_| Mutex::new(0)).collect();
        pool.for_each(64, |i| {
            *lock(&pooled[i]) = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        })
        .unwrap();
        let sequential: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let pooled: Vec<u64> = pooled.iter().map(|c| *lock(c)).collect();
        assert_eq!(pooled, sequential);
    }

    #[test]
    fn borrowed_caller_data_is_visible_to_tasks() {
        let pool = ComputePool::new(3);
        let inputs: Vec<u64> = (0..100).collect();
        let total = AtomicU64::new(0);
        pool.for_each(inputs.len(), |i| {
            total.fetch_add(inputs[i], Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 99 * 100 / 2);
    }

    #[test]
    fn panic_is_contained_typed_and_does_not_poison_the_pool() {
        let pool = ComputePool::new(2);
        let survivors = AtomicUsize::new(0);
        let err = pool
            .for_each(8, |i| {
                if i == 3 {
                    panic!("task {i} exploded");
                }
                survivors.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap_err();
        assert_eq!(err.message(), "task 3 exploded");
        // Sibling tasks still ran: containment, not abortion.
        assert_eq!(survivors.load(Ordering::SeqCst), 7);
        // The pool is fully usable afterwards.
        let after = AtomicUsize::new(0);
        pool.for_each(16, |_| {
            after.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(after.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn run_executes_remotely_for_external_callers() {
        let pool = ComputePool::new(2);
        let caller = std::thread::current().id();
        let (value, worker) = pool.run(|| (21 * 2, std::thread::current().id())).unwrap();
        assert_eq!(value, 42);
        assert_ne!(worker, caller, "run must hand off to a pool worker");
    }

    #[test]
    fn run_panic_is_typed() {
        let pool = ComputePool::new(1);
        let err = pool.run(|| -> u32 { panic!("boom in run") }).unwrap_err();
        assert_eq!(err.message(), "boom in run");
        assert_eq!(pool.run(|| 7).unwrap(), 7);
    }

    #[test]
    fn nested_for_each_reuses_the_same_workers() {
        let pool = ComputePool::new(3);
        let before = thread_spawns();
        let total = AtomicU64::new(0);
        pool.for_each(6, |outer| {
            pool.for_each(5, |inner| {
                total.fetch_add((outer * 10 + inner) as u64, Ordering::SeqCst);
            })
            .unwrap();
        })
        .unwrap();
        let expected: u64 = (0..6u64)
            .flat_map(|o| (0..5u64).map(move |i| o * 10 + i))
            .sum();
        assert_eq!(total.load(Ordering::SeqCst), expected);
        assert_eq!(thread_spawns() - before, 0, "nesting must never spawn");
    }

    #[test]
    fn deeply_nested_size_one_pool_makes_progress() {
        // The degenerate configuration that deadlocks naive designs:
        // one worker, external caller, three levels of nesting.
        let pool = ComputePool::new(1);
        let total = AtomicUsize::new(0);
        pool.for_each(3, |_| {
            pool.for_each(3, |_| {
                pool.for_each(3, |_| {
                    total.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
            })
            .unwrap();
        })
        .unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 27);
    }

    #[test]
    fn executed_reconciles_with_submitted_even_after_panics() {
        let pool = ComputePool::new(2);
        let _ = pool.for_each(10, |i| {
            if i % 2 == 0 {
                panic!("even task");
            }
        });
        pool.for_each(5, |_| {}).unwrap();
        let _ = pool.run(|| ());
        let counters = pool.counters();
        assert_eq!(counters.submitted, 16);
        assert_eq!(counters.executed, 16);
    }

    #[test]
    fn drop_joins_all_workers() {
        let live = |name: &str| -> usize {
            // Count threads in this process via /proc; fall back to 0
            // lets the assertion below degrade to spawn accounting.
            std::fs::read_to_string("/proc/self/status")
                .ok()
                .and_then(|s| {
                    s.lines()
                        .find(|l| l.starts_with(name))
                        .and_then(|l| l.split_whitespace().nth(1))
                        .and_then(|n| n.parse().ok())
                })
                .unwrap_or(0)
        };
        let before = live("Threads:");
        {
            let pool = ComputePool::new(4);
            pool.for_each(8, |_| {}).unwrap();
            if before > 0 {
                assert_eq!(live("Threads:"), before + 4);
            }
        }
        if before > 0 {
            assert_eq!(live("Threads:"), before, "drop must join every worker");
        }
    }

    #[test]
    fn global_pool_is_shared_and_env_sized() {
        let a = Arc::as_ptr(global());
        let b = Arc::as_ptr(global());
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn parallelism_is_bounded_by_pool_size() {
        let pool = ComputePool::new(2);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.for_each(32, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
        })
        .unwrap();
        // Workers plus the participating caller.
        assert!(peak.load(Ordering::SeqCst) <= pool.threads() + 1);
    }
}
