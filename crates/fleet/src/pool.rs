//! The fingerprint pool: real per-type fingerprints the simulated
//! devices send, grouped by device type.

use sentinel_devices::{catalog, generate_dataset, NetworkEnvironment};
use sentinel_fingerprint::{Dataset, Fingerprint};

/// Per-type fingerprint variants, indexed the way the simulator
/// addresses them: `(type_index, variant)`.
///
/// A fleet of a million devices does not need a million distinct
/// fingerprints — devices of one type send setup traffic drawn from
/// the same small family of captures, which is exactly what the
/// catalog generator produces. The pool keeps that family per type and
/// hands out variants round-robin.
#[derive(Debug, Clone)]
pub struct FingerprintPool {
    types: Vec<(String, Vec<Fingerprint>)>,
}

impl FingerprintPool {
    /// Groups an existing labelled dataset by type.
    ///
    /// # Panics
    ///
    /// When the dataset is empty — a fleet with nothing to send is a
    /// configuration error.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let mut types: Vec<(String, Vec<Fingerprint>)> = Vec::new();
        for (label, indices) in dataset.indices_by_label() {
            let prints = indices
                .into_iter()
                .map(|i| dataset.sample(i).fingerprint().clone())
                .collect();
            types.push((label.to_string(), prints));
        }
        assert!(
            !types.is_empty(),
            "fingerprint pool needs at least one type"
        );
        FingerprintPool { types }
    }

    /// Generates a pool from the standard 27-type catalog:
    /// `setups_per_type` captures per type, deterministic for `seed`.
    pub fn from_catalog(setups_per_type: u32, seed: u64) -> Self {
        let profiles = catalog::standard_catalog();
        let dataset = generate_dataset(
            &profiles,
            &NetworkEnvironment::default(),
            setups_per_type.max(1),
            seed,
        );
        Self::from_dataset(&dataset)
    }

    /// Number of device types.
    pub fn types(&self) -> usize {
        self.types.len()
    }

    /// The type name at `type_index` (modulo the type count).
    pub fn type_name(&self, type_index: usize) -> &str {
        &self.types[type_index % self.types.len()].0
    }

    /// The fingerprint for `(type_index, variant)`; both wrap, so any
    /// `u32` the simulator drew addresses a real capture.
    pub fn get(&self, type_index: usize, variant: u32) -> &Fingerprint {
        let (_, prints) = &self.types[type_index % self.types.len()];
        &prints[variant as usize % prints.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_pool_has_all_types_and_wraps() {
        let pool = FingerprintPool::from_catalog(2, 7);
        assert_eq!(pool.types(), 27);
        // Variant addressing wraps instead of panicking.
        let a = pool.get(0, 0);
        let b = pool.get(0, 2);
        assert_eq!(a, b, "2 variants: variant 2 wraps to 0");
        // Type addressing wraps too.
        assert_eq!(pool.type_name(0), pool.type_name(27));
    }

    #[test]
    fn pool_is_deterministic_per_seed() {
        let a = FingerprintPool::from_catalog(2, 9);
        let b = FingerprintPool::from_catalog(2, 9);
        for t in 0..a.types() {
            assert_eq!(a.get(t, 1), b.get(t, 1));
        }
    }
}
