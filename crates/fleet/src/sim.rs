//! The deterministic discrete-event simulation: device lifecycles,
//! link model and open-loop schedule, producing a [`FleetTrace`] that
//! the driver later replays against a live server.
//!
//! Determinism contract: the trace is a pure function of
//! ([`FleetConfig`], type count). Every random draw comes from a
//! per-device xoshiro stream seeded from the master seed and the
//! device id, and the event heap breaks virtual-time ties by insertion
//! sequence, so no interleaving ambiguity exists. Two runs with the
//! same inputs produce bit-identical event vectors — the property the
//! determinism tests and [`FleetTrace::digest`] lock down.

use std::collections::BinaryHeap;

use rand::{rngs::SmallRng, Rng, RngCore, SeedableRng};

use crate::config::{FleetConfig, MAX_RETRANSMITS};

/// Pseudo-device id used for fleet-wide events (the reload marker).
pub const DEVICE_NONE: u32 = u32::MAX;

/// What happened at one instant of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAction {
    /// A device joined the fleet (initial ramp or churn replacement).
    Enroll,
    /// A device transmitted one fingerprint query.
    Query {
        /// Device-type index into the fingerprint pool.
        type_index: u16,
        /// Which capture variant of that type to send.
        variant: u32,
        /// Simulated lost transmissions that delayed this send.
        retransmits: u8,
    },
    /// A device went to standby.
    Standby,
    /// A device woke from standby.
    Wake,
    /// A device churned out of the fleet.
    Churn,
    /// The fleet-wide hot-reload instant (device = [`DEVICE_NONE`]).
    Reload,
}

/// One trace entry: virtual nanosecond, device, action. The vector
/// [`simulate`] returns is sorted by `(at_ns, emission order)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time in nanoseconds since simulation start.
    pub at_ns: u64,
    /// The acting device, or [`DEVICE_NONE`].
    pub device: u32,
    /// What the device did.
    pub action: FleetAction,
}

/// Deterministic counts summarising one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimSummary {
    /// Enroll events emitted (initial population + replacements).
    pub enrolled: u64,
    /// Total query events.
    pub queries: u64,
    /// Queries sent during setup bursts.
    pub setup_queries: u64,
    /// Queries sent in the steady re-fingerprint phase.
    pub steady_queries: u64,
    /// Standby events.
    pub standbys: u64,
    /// Wake events.
    pub wakes: u64,
    /// Devices churned out.
    pub churned: u64,
    /// Replacement devices that enrolled within the horizon.
    pub replacements: u64,
    /// Simulated lost transmissions across all queries.
    pub retransmits: u64,
    /// The virtual horizon in nanoseconds.
    pub horizon_ns: u64,
}

/// The product of [`simulate`]: the sorted event trace plus summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetTrace {
    /// Every event, sorted by virtual time (ties in emission order).
    pub events: Vec<TraceEvent>,
    /// Deterministic counts over the whole run.
    pub summary: SimSummary,
}

impl FleetTrace {
    /// FNV-1a fingerprint of the full event vector — equal digests ⇔
    /// bit-identical traces, the compact form reports carry.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for event in &self.events {
            eat(event.at_ns);
            eat(u64::from(event.device));
            let (tag, a, b, c) = match event.action {
                FleetAction::Enroll => (0u64, 0, 0, 0),
                FleetAction::Query {
                    type_index,
                    variant,
                    retransmits,
                } => (
                    1,
                    u64::from(type_index),
                    u64::from(variant),
                    u64::from(retransmits),
                ),
                FleetAction::Standby => (2, 0, 0, 0),
                FleetAction::Wake => (3, 0, 0, 0),
                FleetAction::Churn => (4, 0, 0, 0),
                FleetAction::Reload => (5, 0, 0, 0),
            };
            eat(tag);
            eat(a);
            eat(b);
            eat(c);
        }
        hash
    }
}

/// What a query transitions into once answered.
#[derive(Debug, Clone, Copy)]
enum After {
    Setup { remaining: u32 },
    Steady,
}

/// Internal per-device lifecycle steps on the event heap.
#[derive(Debug, Clone, Copy)]
enum Step {
    Enroll,
    /// A query whose send instant (the heap key) and completion were
    /// already decided; popping it emits the Query event.
    SendQuery {
        variant: u32,
        retransmits: u8,
        completion: u64,
        then: After,
    },
    Standby,
    Wake,
    ChurnOut,
    Reload,
}

struct Pending {
    at: u64,
    seq: u64,
    device: u32,
    step: Step,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Device {
    rng: SmallRng,
    type_index: u16,
    /// Earliest instant the link lets this device transmit again.
    next_free: u64,
    /// Virtual instant the device churns out, when churn is on.
    death: Option<u64>,
}

/// SplitMix64 — decorrelates consecutive device ids into independent
/// seed space before xoshiro seeding.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

struct Sim<'a> {
    config: &'a FleetConfig,
    types: usize,
    horizon: u64,
    heap: BinaryHeap<Pending>,
    seq: u64,
    devices: Vec<Device>,
    events: Vec<TraceEvent>,
    summary: SimSummary,
}

impl Sim<'_> {
    fn new_device(&mut self, seed_stream: u64) -> u32 {
        let id = u32::try_from(self.devices.len()).expect("fleet exceeds u32 devices");
        self.devices.push(Device {
            rng: SmallRng::seed_from_u64(self.config.seed ^ mix(seed_stream)),
            type_index: (seed_stream % self.types as u64) as u16,
            next_free: 0,
            death: None,
        });
        id
    }

    /// Pushes `step` for `device` at `at`, routing through the churn
    /// check: a step that would run at or past the device's death
    /// becomes the churn-out event instead. Steps past the horizon are
    /// dropped (the simulation simply ends).
    fn push(&mut self, device: u32, at: u64, step: Step) {
        let (at, step) = match self.devices[device as usize].death {
            Some(death) if at >= death && !matches!(step, Step::ChurnOut) => {
                (death, Step::ChurnOut)
            }
            _ => (at, step),
        };
        if at > self.horizon {
            return;
        }
        self.seq += 1;
        self.heap.push(Pending {
            at,
            seq: self.seq,
            device,
            step,
        });
    }

    fn emit(&mut self, at: u64, device: u32, action: FleetAction) {
        self.events.push(TraceEvent {
            at_ns: at,
            device,
            action,
        });
    }

    /// Decides one query's link fate (retransmissions, rate cap, RTT)
    /// and schedules its send step no earlier than `earliest`.
    fn plan_query(&mut self, device: u32, earliest: u64, then: After) {
        let link = &self.config.link;
        let (variant, retransmits, rtt) = {
            let dev = &mut self.devices[device as usize];
            let variant = dev.rng.next_u64() as u32;
            let mut retransmits = 0u32;
            while retransmits < MAX_RETRANSMITS && link.loss > 0.0 && dev.rng.gen_bool(link.loss) {
                retransmits += 1;
            }
            let rtt = dev
                .rng
                .gen_range(ns(link.rtt_min)..=ns(link.rtt_max).max(ns(link.rtt_min)));
            (variant, retransmits, rtt)
        };
        let dev = &mut self.devices[device as usize];
        let send_at = earliest.max(dev.next_free) + u64::from(retransmits) * ns(link.retry_timeout);
        dev.next_free = send_at + ns(link.min_gap);
        let completion = send_at + rtt;
        self.summary.retransmits += u64::from(retransmits);
        self.push(
            device,
            send_at,
            Step::SendQuery {
                variant,
                retransmits: retransmits as u8,
                completion,
                then,
            },
        );
    }

    fn handle(&mut self, at: u64, device: u32, step: Step) {
        let config = self.config;
        match step {
            Step::Reload => {
                self.emit(at, DEVICE_NONE, FleetAction::Reload);
            }
            Step::Enroll => {
                self.emit(at, device, FleetAction::Enroll);
                self.summary.enrolled += 1;
                let dev = &mut self.devices[device as usize];
                dev.next_free = at;
                if let Some(lifetime) = config.churn_lifetime {
                    let life = ns(lifetime);
                    let drawn = dev.rng.gen_range(life / 2..=life + life / 2);
                    dev.death = Some(at.saturating_add(drawn.max(1)));
                }
                let burst = self.devices[device as usize]
                    .rng
                    .gen_range(config.setup_queries_min..=config.setup_queries_max);
                if burst == 0 {
                    let wait = self.draw_gap(device, config.steady_min, config.steady_max);
                    self.push(device, at + wait, Step::Standby);
                    return;
                }
                let gap = self.draw_gap(device, config.setup_gap_min, config.setup_gap_max);
                self.plan_query(device, at + gap, After::Setup { remaining: burst });
            }
            Step::SendQuery {
                variant,
                retransmits,
                completion,
                then,
            } => {
                let type_index = self.devices[device as usize].type_index;
                self.emit(
                    at,
                    device,
                    FleetAction::Query {
                        type_index,
                        variant,
                        retransmits,
                    },
                );
                self.summary.queries += 1;
                match then {
                    After::Setup { remaining } => {
                        self.summary.setup_queries += 1;
                        if remaining > 1 {
                            let gap =
                                self.draw_gap(device, config.setup_gap_min, config.setup_gap_max);
                            self.plan_query(
                                device,
                                completion + gap,
                                After::Setup {
                                    remaining: remaining - 1,
                                },
                            );
                        } else {
                            let wait = self.draw_gap(device, config.steady_min, config.steady_max);
                            self.push(device, completion + wait, Step::Standby);
                        }
                    }
                    After::Steady => {
                        self.summary.steady_queries += 1;
                        let wait = self.draw_gap(device, config.steady_min, config.steady_max);
                        self.push(device, completion + wait, Step::Standby);
                    }
                }
            }
            // "Standby" on the heap is the steady-state decision point:
            // the device either naps or re-fingerprints.
            Step::Standby => {
                let naps = self.devices[device as usize]
                    .rng
                    .gen_bool(config.standby_probability);
                if naps {
                    self.emit(at, device, FleetAction::Standby);
                    self.summary.standbys += 1;
                    self.push(device, at + ns(config.standby_duration), Step::Wake);
                } else {
                    self.plan_query(device, at, After::Steady);
                }
            }
            Step::Wake => {
                self.emit(at, device, FleetAction::Wake);
                self.summary.wakes += 1;
                // Waking devices re-fingerprint promptly, like a setup
                // step: identity is re-checked on re-appearance.
                let gap = self.draw_gap(device, config.setup_gap_min, config.setup_gap_max);
                self.plan_query(device, at + gap, After::Steady);
            }
            Step::ChurnOut => {
                self.emit(at, device, FleetAction::Churn);
                self.summary.churned += 1;
                let replacement_at = at + ns(config.replacement_delay);
                if replacement_at <= self.horizon {
                    self.summary.replacements += 1;
                    let fresh = self.new_device(u64::from(device) + 0x1_0000_0000);
                    self.push(fresh, replacement_at, Step::Enroll);
                }
            }
        }
    }

    fn draw_gap(&mut self, device: u32, min: std::time::Duration, max: std::time::Duration) -> u64 {
        let (low, high) = (ns(min), ns(max));
        self.devices[device as usize]
            .rng
            .gen_range(low..=high.max(low))
    }
}

/// Runs the simulation for `config` over a pool of `types` device
/// types and returns the deterministic trace.
///
/// # Panics
///
/// Propagates [`FleetConfig::validate`] panics, and panics when
/// `types` is 0.
pub fn simulate(config: &FleetConfig, types: usize) -> FleetTrace {
    config.validate();
    assert!(types > 0, "simulation needs at least one device type");
    let mut sim = Sim {
        config,
        types,
        horizon: ns(config.duration),
        heap: BinaryHeap::new(),
        seq: 0,
        devices: Vec::with_capacity(config.devices as usize),
        events: Vec::new(),
        summary: SimSummary {
            horizon_ns: ns(config.duration),
            ..SimSummary::default()
        },
    };
    let ramp = ns(config.ramp).min(sim.horizon);
    for _ in 0..config.devices {
        let id = sim.new_device(sim.devices.len() as u64);
        let enroll_at = if ramp == 0 {
            0
        } else {
            sim.devices[id as usize].rng.gen_range(0..=ramp)
        };
        sim.push(id, enroll_at, Step::Enroll);
    }
    if let Some(reload_at) = config.reload_at {
        let at = ns(reload_at);
        if at <= sim.horizon {
            sim.seq += 1;
            sim.heap.push(Pending {
                at,
                seq: sim.seq,
                device: DEVICE_NONE,
                step: Step::Reload,
            });
        }
    }
    while let Some(Pending {
        at, device, step, ..
    }) = sim.heap.pop()
    {
        sim.handle(at, device, step);
    }
    FleetTrace {
        events: sim.events,
        summary: sim.summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn small_config() -> FleetConfig {
        FleetConfig {
            devices: 50,
            seed: 7,
            duration: Duration::from_secs(60),
            ramp: Duration::from_secs(5),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn trace_is_sorted_and_nonempty() {
        let trace = simulate(&small_config(), 27);
        assert!(trace.summary.queries > 0);
        assert!(
            trace.events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
            "events must be time-sorted"
        );
        assert!(trace
            .events
            .iter()
            .all(|e| e.at_ns <= trace.summary.horizon_ns));
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let config = small_config();
        let a = simulate(&config, 27);
        let b = simulate(&config, 27);
        assert_eq!(a.events, b.events, "same seed must replay bit-identically");
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.digest(), b.digest());
        let other = FleetConfig { seed: 8, ..config };
        assert_ne!(simulate(&other, 27).digest(), a.digest());
    }

    #[test]
    fn summary_counts_match_the_events() {
        let trace = simulate(&small_config(), 27);
        let count = |pred: fn(&FleetAction) -> bool| {
            trace.events.iter().filter(|e| pred(&e.action)).count() as u64
        };
        assert_eq!(
            count(|a| matches!(a, FleetAction::Enroll)),
            trace.summary.enrolled
        );
        assert_eq!(
            count(|a| matches!(a, FleetAction::Query { .. })),
            trace.summary.queries
        );
        assert_eq!(
            count(|a| matches!(a, FleetAction::Standby)),
            trace.summary.standbys
        );
        assert_eq!(
            count(|a| matches!(a, FleetAction::Wake)),
            trace.summary.wakes
        );
        assert_eq!(
            count(|a| matches!(a, FleetAction::Churn)),
            trace.summary.churned
        );
        assert_eq!(
            trace.summary.queries,
            trace.summary.setup_queries + trace.summary.steady_queries
        );
    }

    #[test]
    fn churn_produces_replacements_and_reload_marker_is_present() {
        let trace = simulate(&small_config(), 27);
        assert!(
            trace.summary.churned > 0,
            "90s mean lifetime in 60s run must churn"
        );
        assert!(trace.summary.replacements <= trace.summary.churned);
        let reloads = trace
            .events
            .iter()
            .filter(|e| matches!(e.action, FleetAction::Reload))
            .count();
        assert_eq!(reloads, 1);
        assert!(trace
            .events
            .iter()
            .filter(|e| matches!(e.action, FleetAction::Reload))
            .all(|e| e.device == DEVICE_NONE));
    }

    #[test]
    fn devices_respect_the_link_rate_cap() {
        let config = small_config();
        let trace = simulate(&config, 27);
        let min_gap = config.link.min_gap.as_nanos() as u64;
        let mut last_send: std::collections::HashMap<u32, u64> = Default::default();
        for event in &trace.events {
            if let FleetAction::Query { .. } = event.action {
                if let Some(prev) = last_send.insert(event.device, event.at_ns) {
                    assert!(
                        event.at_ns >= prev + min_gap,
                        "device {} sent {}ns after previous (cap {}ns)",
                        event.device,
                        event.at_ns - prev,
                        min_gap
                    );
                }
            }
        }
    }

    #[test]
    fn no_churn_config_never_churns() {
        let config = FleetConfig {
            churn_lifetime: None,
            reload_at: None,
            ..small_config()
        };
        let trace = simulate(&config, 27);
        assert_eq!(trace.summary.churned, 0);
        assert_eq!(trace.summary.enrolled, u64::from(config.devices));
        assert!(!trace
            .events
            .iter()
            .any(|e| matches!(e.action, FleetAction::Reload)));
    }
}
