//! The wall-clock driver: replays a simulated [`FleetTrace`] against a
//! **live** `sentinel serve` instance over real TCP, measuring what the
//! simulation cannot — actual service latency, throughput and
//! reload-propagation lag.
//!
//! The split matters: the simulation is pure and deterministic (same
//! seed ⇒ same trace), while this replay is measurement and inherently
//! wall-clock noisy. Reports keep the two apart.
//!
//! Latency is measured **open-loop**: in paced mode each query has a
//! scheduled wall-clock target derived from its virtual timestamp, and
//! latency counts from that target — so when the server falls behind,
//! queueing delay shows up in the numbers instead of silently slowing
//! the offered load (the coordinated-omission trap).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use sentinel_serve::{ClientConfig, ClientError, ErrorCode, SentinelClient};

use crate::config::Pacing;
use crate::pool::FingerprintPool;
use crate::sim::{FleetAction, FleetTrace};
use sentinel_obs::{LogHistogram, MetricsSnapshot};

/// Driver tunables, independent of the simulated scenario.
#[derive(Debug, Clone)]
pub struct DriveConfig {
    /// TCP connections (and driver threads) to spread devices over.
    pub connections: usize,
    /// Virtual→wall-clock mapping.
    pub pacing: Pacing,
    /// Per-connection client configuration; the jitter seed is further
    /// diversified per connection.
    pub client: ClientConfig,
}

impl Default for DriveConfig {
    fn default() -> Self {
        DriveConfig {
            connections: 4,
            pacing: Pacing::Uncapped,
            client: ClientConfig::default(),
        }
    }
}

/// Triggers the mid-run hot reload and returns the new service epoch.
///
/// The driver stays transport-agnostic: the CLI wires this to a wire
/// admin reload against the live server, in-process tests wire it to
/// [`sentinel_core::ServiceCell::replace`].
pub type ReloadHook<'a> = Box<dyn FnMut() -> Result<u64, String> + Send + 'a>;

/// What the reload-under-fire scenario measured.
#[derive(Debug, Clone, Copy)]
pub struct ReloadOutcome {
    /// The epoch the reload installed.
    pub epoch: u64,
    /// Wall nanoseconds (since drive start) when the reload was
    /// acknowledged.
    pub ack_wall_ns: u64,
    /// Worst-case over connections: time from reload acknowledgement
    /// until that connection first saw a response stamped with the new
    /// epoch.
    pub propagation_lag: Duration,
    /// Connections that observed the new epoch before finishing.
    pub connections_observed: usize,
    /// Epoch regressions: responses stamped with a pre-reload epoch
    /// received on a connection that had *already* seen the new epoch.
    /// (Old-epoch responses merely in flight at the reload instant are
    /// expected and not counted.)
    pub stale_responses: u64,
}

/// The merged measurement of one replay.
#[derive(Debug)]
pub struct DriveOutcome {
    /// Per-query latency in nanoseconds (see the module docs for what
    /// "latency" means per pacing mode).
    pub latency: LogHistogram,
    /// Wall-clock span of the whole replay.
    pub wall_elapsed: Duration,
    /// Queries sent.
    pub queries_sent: u64,
    /// Well-formed responses received.
    pub responses_ok: u64,
    /// Transport/protocol/server errors encountered.
    pub errors: u64,
    /// The subset of `errors` that were queries the server shed with a
    /// retryable `Overloaded` answer (after the client's own overload
    /// retries ran out). Shed queries were refused, not corrupted —
    /// under deliberate overload they are the system working as
    /// designed.
    pub shed: u64,
    /// Query batches resent inside the client after a retryable
    /// `Overloaded` answer, summed over connections.
    pub overload_retries: u64,
    /// Connect retries summed over every (re)connection.
    pub connect_retries: u64,
    /// Reload measurement, when the trace carried a reload marker and
    /// a hook was supplied.
    pub reload: Option<ReloadOutcome>,
    /// The server's own metrics snapshot (counters plus per-stage
    /// latency histograms), fetched over a `Stats` frame once the
    /// replay drained. `None` when the server predates wire v3 or the
    /// extra connection failed — the replay's client-side numbers
    /// stand alone either way.
    pub server: Option<MetricsSnapshot>,
}

impl DriveOutcome {
    /// Sustained queries per second over the replay.
    pub fn qps(&self) -> f64 {
        let secs = self.wall_elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.responses_ok as f64 / secs
    }
}

/// One query to send: virtual send instant plus pool coordinates.
#[derive(Debug, Clone, Copy)]
struct PlannedQuery {
    at_ns: u64,
    type_index: u16,
    variant: u32,
}

/// What one connection thread brings home.
struct WorkerReport {
    latency: LogHistogram,
    sent: u64,
    ok: u64,
    errors: u64,
    shed: u64,
    overload_retries: u64,
    connect_retries: u64,
    first_new_epoch_wall: Option<u64>,
    stale: u64,
}

/// One connection's replay loop: pace, send, record, watch epochs.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    plan: &[PlannedQuery],
    pool: &FingerprintPool,
    addr: &str,
    client_config: ClientConfig,
    pacing: Pacing,
    t0: Instant,
    sent_total: &AtomicU64,
    ack_epoch: &AtomicU64,
) -> WorkerReport {
    let mut report = WorkerReport {
        latency: LogHistogram::new(),
        sent: 0,
        ok: 0,
        errors: 0,
        shed: 0,
        overload_retries: 0,
        connect_retries: 0,
        first_new_epoch_wall: None,
        stale: 0,
    };
    if plan.is_empty() {
        return report;
    }
    let mut client = match SentinelClient::connect(addr, client_config.clone()) {
        Ok(client) => client,
        Err(_) => {
            report.errors += plan.len() as u64;
            return report;
        }
    };
    report.connect_retries += client.stats().connect_retries;
    for query in plan {
        let target = wall_target(pacing, query.at_ns);
        if let Some(target_ns) = target {
            let elapsed = t0.elapsed().as_nanos() as u64;
            if target_ns > elapsed {
                std::thread::sleep(Duration::from_nanos(target_ns - elapsed));
            }
        }
        let reference_ns = match target {
            Some(target_ns) => target_ns,
            None => t0.elapsed().as_nanos() as u64,
        };
        let fingerprint = pool.get(usize::from(query.type_index), query.variant);
        report.sent += 1;
        sent_total.fetch_add(1, Ordering::Relaxed);
        match client.query_batch_stamped(std::slice::from_ref(fingerprint)) {
            Ok(batch) => {
                let now_ns = t0.elapsed().as_nanos() as u64;
                report.latency.record(now_ns.saturating_sub(reference_ns));
                report.ok += 1;
                let ack = ack_epoch.load(Ordering::Acquire);
                if ack != 0 {
                    match batch.epoch {
                        Some(epoch) if epoch >= ack => {
                            report.first_new_epoch_wall.get_or_insert(now_ns);
                        }
                        // A pre-reload stamp is only a regression once
                        // this connection has seen the new epoch;
                        // before that it is just an in-flight batch
                        // pinned to the old model.
                        Some(_) if report.first_new_epoch_wall.is_some() => {
                            report.stale += 1;
                        }
                        _ => {}
                    }
                }
            }
            // A shed query is a typed refusal on a healthy connection
            // (the client's own overload retries already ran out):
            // count it and keep the connection — reconnecting would
            // only add to the stampede the server is shedding against.
            Err(ClientError::Server {
                code: ErrorCode::Overloaded,
                ..
            }) => {
                report.errors += 1;
                report.shed += 1;
            }
            Err(_) => {
                report.errors += 1;
                // One reconnect attempt keeps a single dropped
                // connection from voiding the rest of this worker's
                // plan.
                match SentinelClient::connect(addr, client_config.clone()) {
                    Ok(fresh) => {
                        report.overload_retries += client.stats().overload_retries;
                        report.connect_retries += fresh.stats().connect_retries;
                        client = fresh;
                    }
                    Err(_) => {
                        report.errors += plan.len() as u64 - report.sent;
                        break;
                    }
                }
            }
        }
    }
    report.overload_retries += client.stats().overload_retries;
    report
}

fn wall_target(pacing: Pacing, at_ns: u64) -> Option<u64> {
    match pacing {
        Pacing::Uncapped => None,
        Pacing::Scaled(speed) => {
            assert!(speed > 0.0, "pacing speedup must be positive");
            Some((at_ns as f64 / speed) as u64)
        }
    }
}

/// Replays `trace` against the server at `addr`.
///
/// Devices are partitioned over [`DriveConfig::connections`] by id, so
/// each device's queries stay ordered on one connection. When the
/// trace carries a reload marker and `reload_hook` is given, a
/// dedicated thread fires the hook at the marker's pace-mapped wall
/// instant (or once half the queries are out, under uncapped pacing)
/// and every connection watches response epoch stamps to time the
/// propagation.
///
/// # Errors
///
/// Returns a description when no connection could be established or
/// the replay got zero successful responses for a non-empty plan.
pub fn drive(
    trace: &FleetTrace,
    pool: &FingerprintPool,
    addr: &str,
    config: &DriveConfig,
    mut reload_hook: Option<ReloadHook<'_>>,
) -> Result<DriveOutcome, String> {
    let connections = config.connections.max(1);
    let mut plans: Vec<Vec<PlannedQuery>> = vec![Vec::new(); connections];
    let mut reload_at_ns = None;
    for event in &trace.events {
        match event.action {
            FleetAction::Query {
                type_index,
                variant,
                ..
            } => {
                plans[event.device as usize % connections].push(PlannedQuery {
                    at_ns: event.at_ns,
                    type_index,
                    variant,
                });
            }
            FleetAction::Reload => reload_at_ns = Some(event.at_ns),
            _ => {}
        }
    }
    let total: u64 = plans.iter().map(|p| p.len() as u64).sum();

    let t0 = Instant::now();
    let sent_total = AtomicU64::new(0);
    let finished_workers = AtomicU64::new(0);
    // ack_epoch doubles as the "reload happened" flag (epochs are >= 1);
    // ack_wall is stored before it so readers that see the epoch also
    // see a valid timestamp.
    let ack_epoch = AtomicU64::new(0);
    let ack_wall = AtomicU64::new(0);
    let reload_result: std::sync::Mutex<Option<Result<u64, String>>> = std::sync::Mutex::new(None);
    let want_reload = reload_at_ns.is_some() && reload_hook.is_some();

    let reports = crossbeam::thread::scope(|scope| {
        if want_reload {
            let reload_at = reload_at_ns.expect("checked above");
            let hook = reload_hook.as_mut().expect("checked above");
            let sent_total = &sent_total;
            let finished_workers = &finished_workers;
            let ack_epoch = &ack_epoch;
            let ack_wall = &ack_wall;
            let reload_result = &reload_result;
            let pacing = config.pacing;
            scope.spawn(move |_| {
                match wall_target(pacing, reload_at) {
                    Some(target_ns) => {
                        let elapsed = t0.elapsed().as_nanos() as u64;
                        if target_ns > elapsed {
                            std::thread::sleep(Duration::from_nanos(target_ns - elapsed));
                        }
                    }
                    None => {
                        // Uncapped runs have no wall mapping: fire once
                        // half the offered load is out, mid-burst (or
                        // when the workers finish early — e.g. all
                        // erroring out — so this thread cannot hang).
                        while sent_total.load(Ordering::Relaxed) < total / 2
                            && (finished_workers.load(Ordering::Relaxed) as usize) < connections
                        {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                }
                let outcome = hook();
                if let Ok(epoch) = outcome {
                    ack_wall.store(t0.elapsed().as_nanos() as u64, Ordering::Release);
                    ack_epoch.store(epoch, Ordering::Release);
                }
                *reload_result.lock().expect("reload result lock") = Some(outcome);
            });
        }

        let handles: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(worker, plan)| {
                let client_config = ClientConfig {
                    retry_jitter_seed: config.client.retry_jitter_seed ^ (worker as u64 + 1),
                    ..config.client.clone()
                };
                let pacing = config.pacing;
                let sent_total = &sent_total;
                let finished_workers = &finished_workers;
                let ack_epoch = &ack_epoch;
                scope.spawn(move |_| {
                    let report = run_worker(
                        plan,
                        pool,
                        addr,
                        client_config,
                        pacing,
                        t0,
                        sent_total,
                        ack_epoch,
                    );
                    finished_workers.fetch_add(1, Ordering::Relaxed);
                    report
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("driver scope");

    let wall_elapsed = t0.elapsed();
    let mut latency = LogHistogram::new();
    let mut queries_sent = 0;
    let mut responses_ok = 0;
    let mut errors = 0;
    let mut shed = 0;
    let mut overload_retries = 0;
    let mut connect_retries = 0;
    let mut stale = 0;
    let mut worst_lag_ns: u64 = 0;
    let mut observed = 0;
    let ack_at = ack_wall.load(Ordering::Acquire);
    for report in reports {
        latency.merge(&report.latency);
        queries_sent += report.sent;
        responses_ok += report.ok;
        errors += report.errors;
        shed += report.shed;
        overload_retries += report.overload_retries;
        connect_retries += report.connect_retries;
        stale += report.stale;
        if let Some(first) = report.first_new_epoch_wall {
            observed += 1;
            worst_lag_ns = worst_lag_ns.max(first.saturating_sub(ack_at));
        }
    }
    if total > 0 && responses_ok == 0 {
        return Err(format!(
            "no successful responses from {addr} ({errors} errors over {total} planned queries)"
        ));
    }
    let reload = if want_reload {
        match reload_result.lock().expect("reload result lock").take() {
            Some(Ok(epoch)) => Some(ReloadOutcome {
                epoch,
                ack_wall_ns: ack_at,
                propagation_lag: Duration::from_nanos(worst_lag_ns),
                connections_observed: observed,
                stale_responses: stale,
            }),
            Some(Err(error)) => return Err(format!("reload hook failed: {error}")),
            None => return Err("reload thread never ran its hook".to_string()),
        }
    } else {
        None
    };
    // One extra connection after the replay drained: the server-side
    // view of the run just measured. Best-effort — a pre-v3 server or
    // a refused connection only costs this section, not the replay.
    let server = SentinelClient::connect(addr, config.client.clone())
        .ok()
        .and_then(|mut client| client.server_stats().ok());
    Ok(DriveOutcome {
        latency,
        wall_elapsed,
        queries_sent,
        responses_ok,
        errors,
        shed,
        overload_retries,
        connect_retries,
        reload,
        server,
    })
}
