//! The fleet report: one struct tying the deterministic simulation
//! summary to the wall-clock measurement, with a `BENCH_fleet.json`
//! writer on the shared bench-report plumbing.

use std::path::PathBuf;

use sentinel_bench::bench_report::write_bench_json_sections;
use sentinel_obs::{Counter, MetricsSnapshot, Stage};

use crate::config::FleetConfig;
use crate::driver::DriveOutcome;
use crate::sim::{FleetTrace, SimSummary};

/// Everything one fleet run produced, ready to print or persist.
///
/// Fields split into the **deterministic** half (scenario + simulation
/// summary + trace digest — identical across runs with one seed) and
/// the **measured** half (wall-clock latency/throughput — never
/// identical across runs, excluded from determinism assertions).
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Configured population size.
    pub devices: u32,
    /// Master seed.
    pub seed: u64,
    /// Virtual horizon in seconds.
    pub virtual_secs: f64,
    /// FNV digest of the event trace ([`FleetTrace::digest`]).
    pub trace_digest: u64,
    /// Deterministic simulation counts.
    pub sim: SimSummary,
    /// Wall-clock span of the replay in seconds.
    pub wall_secs: f64,
    /// Sustained successful queries per second.
    pub qps: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Worst latency, microseconds.
    pub max_us: f64,
    /// Queries sent over the wire.
    pub queries_sent: u64,
    /// Successful responses.
    pub responses_ok: u64,
    /// Errors (transport, protocol, server).
    pub errors: u64,
    /// The subset of `errors` the server shed with a retryable
    /// `Overloaded` answer after client-side retries ran out.
    pub shed: u64,
    /// Client-side overload retries (shed answers that were resent).
    pub overload_retries: u64,
    /// Connect retries across all (re)connections.
    pub connect_retries: u64,
    /// Reload-under-fire: worst per-connection epoch-propagation lag
    /// in milliseconds, when the scenario reloaded.
    pub reload_lag_ms: Option<f64>,
    /// The epoch the mid-run reload installed.
    pub reload_epoch: Option<u64>,
    /// Epoch regressions: old-epoch responses on a connection that had
    /// already seen the new epoch (must be zero on a healthy server).
    pub stale_after_reload: Option<u64>,
    /// The server's own metrics snapshot for the run, fetched over a
    /// `Stats` frame after the replay drained (`None` against pre-v3
    /// servers).
    pub server: Option<MetricsSnapshot>,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

impl FleetReport {
    /// Combines scenario, trace and measurement into the report.
    pub fn compose(config: &FleetConfig, trace: &FleetTrace, outcome: &DriveOutcome) -> Self {
        let latency = &outcome.latency;
        FleetReport {
            devices: config.devices,
            seed: config.seed,
            virtual_secs: config.duration.as_secs_f64(),
            trace_digest: trace.digest(),
            sim: trace.summary,
            wall_secs: outcome.wall_elapsed.as_secs_f64(),
            qps: outcome.qps(),
            p50_us: us(latency.quantile(0.50)),
            p99_us: us(latency.quantile(0.99)),
            p999_us: us(latency.quantile(0.999)),
            mean_us: latency.mean() / 1_000.0,
            max_us: us(latency.max()),
            queries_sent: outcome.queries_sent,
            responses_ok: outcome.responses_ok,
            errors: outcome.errors,
            shed: outcome.shed,
            overload_retries: outcome.overload_retries,
            connect_retries: outcome.connect_retries,
            reload_lag_ms: outcome
                .reload
                .as_ref()
                .map(|r| r.propagation_lag.as_secs_f64() * 1_000.0),
            reload_epoch: outcome.reload.as_ref().map(|r| r.epoch),
            stale_after_reload: outcome.reload.as_ref().map(|r| r.stale_responses),
            server: outcome.server.clone(),
        }
    }

    /// Writes `BENCH_fleet.json` (into `$SENTINEL_BENCH_OUT` or the
    /// workspace root) and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the file.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let mut results: Vec<(&str, f64)> = vec![
            ("qps", self.qps),
            ("p50_us", self.p50_us),
            ("p99_us", self.p99_us),
            ("p999_us", self.p999_us),
            ("mean_us", self.mean_us),
            ("max_us", self.max_us),
            ("errors", self.errors as f64),
        ];
        if let Some(lag) = self.reload_lag_ms {
            results.push(("reload_lag_ms", lag));
        }
        let mut derived: Vec<(&str, f64)> = vec![
            ("wall_secs", self.wall_secs),
            ("queries_sent", self.queries_sent as f64),
            ("responses_ok", self.responses_ok as f64),
            ("shed", self.shed as f64),
            ("overload_retries", self.overload_retries as f64),
            ("connect_retries", self.connect_retries as f64),
        ];
        if let Some(epoch) = self.reload_epoch {
            derived.push(("reload_epoch", epoch as f64));
        }
        if let Some(stale) = self.stale_after_reload {
            derived.push(("stale_after_reload", stale as f64));
        }
        let sim: Vec<(&str, f64)> = vec![
            ("devices", f64::from(self.devices)),
            ("virtual_secs", self.virtual_secs),
            ("enrolled", self.sim.enrolled as f64),
            ("queries", self.sim.queries as f64),
            ("setup_queries", self.sim.setup_queries as f64),
            ("steady_queries", self.sim.steady_queries as f64),
            ("standbys", self.sim.standbys as f64),
            ("wakes", self.sim.wakes as f64),
            ("churned", self.sim.churned as f64),
            ("replacements", self.sim.replacements as f64),
            ("retransmits", self.sim.retransmits as f64),
            // The digest's low 32 bits: exactly representable in the
            // JSON writer's f64 numbers, still a strong change signal.
            ("trace_digest_lo", f64::from(self.trace_digest as u32)),
        ];
        // Satellite view of the same run: the client side's counters
        // under the obs catalog names, so dashboards join the two
        // sections on one vocabulary.
        let client: Vec<(&str, f64)> = vec![
            (
                Counter::ClientConnectRetries.name(),
                self.connect_retries as f64,
            ),
            (Counter::ClientRequestsSent.name(), self.queries_sent as f64),
            (
                Counter::ClientResponsesReceived.name(),
                self.responses_ok as f64,
            ),
        ];
        // The server's own view, when it answered a Stats frame: every
        // known counter, plus a per-stage latency summary. Owned keys
        // (stage names are composed) bridged into the &str slices the
        // writer takes.
        let server_owned: Vec<(String, f64)> = match &self.server {
            Some(snapshot) => {
                let mut entries = vec![("epoch".to_string(), snapshot.epoch as f64)];
                for counter in Counter::ALL {
                    entries.push((counter.name().to_string(), snapshot.counter(counter) as f64));
                }
                for stage in Stage::ALL {
                    let Some(summary) = snapshot.stage(stage) else {
                        continue;
                    };
                    let stage = stage.name();
                    entries.push((format!("stage_{stage}_count"), summary.count as f64));
                    entries.push((format!("stage_{stage}_p50_us"), us(summary.p50_ns)));
                    entries.push((format!("stage_{stage}_p99_us"), us(summary.p99_ns)));
                    entries.push((format!("stage_{stage}_max_us"), us(summary.max_ns)));
                    entries.push((
                        format!("stage_{stage}_mean_us"),
                        summary.mean_ns() / 1_000.0,
                    ));
                }
                entries
            }
            None => Vec::new(),
        };
        let server: Vec<(&str, f64)> = server_owned
            .iter()
            .map(|(name, value)| (name.as_str(), *value))
            .collect();
        let mut sections: Vec<(&str, &[(&str, f64)])> = vec![
            ("results", &results),
            ("derived", &derived),
            ("sim", &sim),
            ("client", &client),
        ];
        if !server.is_empty() {
            sections.push(("server", &server));
        }
        write_bench_json_sections("fleet", "us", &sections)
    }

    /// Human-readable summary lines for the CLI.
    pub fn lines(&self) -> Vec<String> {
        let mut out = vec![
            format!(
                "fleet: {} devices over {:.0} virtual s (seed {}, trace digest {:016x})",
                self.devices, self.virtual_secs, self.seed, self.trace_digest
            ),
            format!(
                "sim:   {} queries ({} setup / {} steady), {} standbys, {} churned, {} replaced, {} retransmits",
                self.sim.queries,
                self.sim.setup_queries,
                self.sim.steady_queries,
                self.sim.standbys,
                self.sim.churned,
                self.sim.replacements,
                self.sim.retransmits
            ),
            format!(
                "live:  {} ok / {} sent in {:.2} wall s -> {:.0} qps, {} errors ({} shed), {} connect retries",
                self.responses_ok,
                self.queries_sent,
                self.wall_secs,
                self.qps,
                self.errors,
                self.shed,
                self.connect_retries
            ),
            format!(
                "lat:   p50 {:.0} us, p99 {:.0} us, p99.9 {:.0} us, mean {:.0} us, max {:.0} us",
                self.p50_us, self.p99_us, self.p999_us, self.mean_us, self.max_us
            ),
        ];
        if let (Some(lag), Some(epoch)) = (self.reload_lag_ms, self.reload_epoch) {
            out.push(format!(
                "reload: epoch {} propagated in {:.1} ms worst-case, {} epoch regressions",
                epoch,
                lag,
                self.stale_after_reload.unwrap_or(0)
            ));
        }
        if let Some(snapshot) = &self.server {
            out.push(format!(
                "server: epoch {}, {} query frames / {} queries answered, {} errors, {} reloads",
                snapshot.epoch,
                snapshot.counter(Counter::QueryFrames),
                snapshot.counter(Counter::QueriesAnswered),
                snapshot.counter(Counter::ProtocolErrors),
                snapshot.counter(Counter::Reloads),
            ));
            if let Some(frame) = snapshot.stage(Stage::Frame) {
                out.push(format!(
                    "server: frame stage p50 {:.0} us, p99 {:.0} us, max {:.0} us over {} frames",
                    us(frame.p50_ns),
                    us(frame.p99_ns),
                    us(frame.max_ns),
                    frame.count,
                ));
            }
        }
        out
    }
}
