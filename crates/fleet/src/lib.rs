//! `sentinel-fleet`: a discrete-event fleet simulator that drives a
//! **live** `sentinel serve` instance like a large ISP device
//! population.
//!
//! The paper evaluates identification one device at a time; the north
//! star here is serving millions of enrolled devices. This crate turns
//! that slogan into a measured regime in two cleanly separated phases:
//!
//! 1. **Simulate** ([`simulate`]): a seeded discrete-event simulation
//!    (binary-heap event queue over virtual nanoseconds) of a
//!    heterogeneous device population — enrollment ramp, setup-phase
//!    query bursts, steady re-fingerprinting, standby/wake cycles,
//!    churn with replacement — filtered through a per-link network
//!    model (RTT, loss-driven retransmission delays, a rate cap).
//!    The output [`FleetTrace`] is a *pure function of the config*:
//!    same seed, same trace, bit for bit.
//! 2. **Drive** ([`drive`]): replay the trace's queries over real TCP
//!    against a live server through a pool of [`SentinelClient`]
//!    connections — either paced (virtual time mapped onto the wall
//!    clock, latency measured open-loop against each query's schedule
//!    so queueing delay is visible) or uncapped (throughput ceiling).
//!    A mid-run hot reload is fired under load and its epoch
//!    propagation timed via the wire v3 response stamps.
//!
//! [`FleetReport::compose`] merges both halves and writes
//! `BENCH_fleet.json` next to the other bench artifacts.
//!
//! In-process miniature fleets for tests need no binary: build a
//! service, [`sentinel_serve::serve`] it on a loopback ephemeral port,
//! then `simulate` + `drive` against it (see the crate tests and
//! `tests/fleet_loopback.rs` at the workspace root).
//!
//! [`SentinelClient`]: sentinel_serve::SentinelClient

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod pool;
pub mod report;
pub mod sim;

pub use config::{FleetConfig, LinkConfig, Pacing, MAX_RETRANSMITS};
pub use driver::{drive, DriveConfig, DriveOutcome, ReloadHook, ReloadOutcome};
pub use pool::FingerprintPool;
pub use report::FleetReport;
/// The latency histogram fleet reports are built on — promoted into
/// `sentinel-obs` as the workspace's single implementation; re-exported
/// here so existing fleet callers keep compiling unchanged.
pub use sentinel_obs::LogHistogram;
pub use sim::{simulate, FleetAction, FleetTrace, SimSummary, TraceEvent, DEVICE_NONE};

/// End-to-end convenience: simulate `config` over `pool`'s types,
/// drive the live server at `addr`, and compose the report.
///
/// # Errors
///
/// Propagates [`drive`]'s error string.
pub fn run(
    config: &FleetConfig,
    pool: &FingerprintPool,
    addr: &str,
    drive_config: &DriveConfig,
    reload_hook: Option<ReloadHook<'_>>,
) -> Result<(FleetTrace, FleetReport), String> {
    let trace = simulate(config, pool.types());
    let outcome = drive(&trace, pool, addr, drive_config, reload_hook)?;
    let report = FleetReport::compose(config, &trace, &outcome);
    Ok((trace, report))
}
