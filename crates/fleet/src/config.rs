//! Fleet scenario configuration: population, lifecycle timing, link
//! model and virtual→wall-clock pacing.

use std::time::Duration;

/// Per-link network model applied to every device's queries.
///
/// All times are *virtual*: they shape the simulated schedule, not the
/// real sockets the driver later opens.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Fastest round-trip the access link can deliver.
    pub rtt_min: Duration,
    /// Slowest ordinary round-trip (uniform between min and max).
    pub rtt_max: Duration,
    /// Probability that a query transmission is lost and must be
    /// retransmitted after [`LinkConfig::retry_timeout`].
    pub loss: f64,
    /// Retransmission timeout per lost transmission (at most
    /// [`MAX_RETRANSMITS`] per query).
    pub retry_timeout: Duration,
    /// Rate cap: minimum spacing between consecutive sends from one
    /// device, as a gateway's policer would enforce.
    pub min_gap: Duration,
}

/// Retransmissions a query suffers at most before the link gives up
/// injecting delay (the query itself still goes through — the cap only
/// bounds simulated patience).
pub const MAX_RETRANSMITS: u32 = 5;

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            rtt_min: Duration::from_millis(2),
            rtt_max: Duration::from_millis(25),
            loss: 0.005,
            retry_timeout: Duration::from_millis(250),
            min_gap: Duration::from_millis(10),
        }
    }
}

/// How simulated virtual time maps onto wall-clock time while driving
/// the live server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Ignore virtual timestamps: send every query as fast as the
    /// connection allows. Measures the throughput ceiling; latency is
    /// time-in-flight only.
    Uncapped,
    /// Replay the schedule sped up by this factor (1.0 = real time,
    /// 60.0 = one virtual minute per wall second). Latency is measured
    /// open-loop against each query's scheduled wall target, so server
    /// queueing delay is *included* rather than silently absorbed.
    Scaled(f64),
}

/// The whole scenario: population size, lifecycle timing, link model.
///
/// Defaults describe a plausible ISP access population: devices enroll
/// over a ramp, burst 6–14 setup queries, then re-fingerprint every
/// 20–60 virtual seconds with occasional standby periods, and a slice
/// of the fleet churns out and is replaced.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Devices enrolled at the start (churn replaces them 1:1 beyond
    /// this).
    pub devices: u32,
    /// Master seed; every stream in the simulation derives from it.
    pub seed: u64,
    /// Virtual horizon. Events scheduled past it are dropped.
    pub duration: Duration,
    /// Enrollment window: device start times spread uniformly in it.
    pub ramp: Duration,
    /// Fewest queries in a device's setup burst.
    pub setup_queries_min: u32,
    /// Most queries in a device's setup burst.
    pub setup_queries_max: u32,
    /// Shortest pause between setup-burst queries.
    pub setup_gap_min: Duration,
    /// Longest pause between setup-burst queries.
    pub setup_gap_max: Duration,
    /// Shortest steady-state re-fingerprint interval.
    pub steady_min: Duration,
    /// Longest steady-state re-fingerprint interval.
    pub steady_max: Duration,
    /// Probability a steady-state wakeup chooses standby instead of a
    /// query.
    pub standby_probability: f64,
    /// How long a standby period lasts before the device wakes.
    pub standby_duration: Duration,
    /// Mean device lifetime; `None` disables churn. Actual lifetimes
    /// draw uniformly from 50–150% of this.
    pub churn_lifetime: Option<Duration>,
    /// Delay before a churned-out device's replacement enrolls.
    pub replacement_delay: Duration,
    /// Virtual instant of the mid-run hot reload; `None` skips the
    /// reload scenario.
    pub reload_at: Option<Duration>,
    /// The shared link model.
    pub link: LinkConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 1_000,
            seed: 42,
            duration: Duration::from_secs(120),
            ramp: Duration::from_secs(30),
            setup_queries_min: 6,
            setup_queries_max: 14,
            setup_gap_min: Duration::from_millis(200),
            setup_gap_max: Duration::from_millis(1_500),
            steady_min: Duration::from_secs(20),
            steady_max: Duration::from_secs(60),
            standby_probability: 0.15,
            standby_duration: Duration::from_secs(30),
            churn_lifetime: Some(Duration::from_secs(90)),
            replacement_delay: Duration::from_secs(5),
            reload_at: Some(Duration::from_secs(60)),
            link: LinkConfig::default(),
        }
    }
}

impl FleetConfig {
    /// Panics with a description when a field combination is
    /// internally inconsistent (empty ranges, probabilities outside
    /// `[0, 1]`) — called once up front so failures are legible
    /// instead of surfacing as RNG panics mid-simulation.
    pub fn validate(&self) {
        assert!(self.devices > 0, "fleet needs at least one device");
        assert!(
            self.setup_queries_min <= self.setup_queries_max,
            "setup burst range is empty"
        );
        assert!(
            self.setup_gap_min <= self.setup_gap_max,
            "setup gap range is empty"
        );
        assert!(self.steady_min <= self.steady_max, "steady range is empty");
        assert!(
            (0.0..=1.0).contains(&self.standby_probability),
            "standby probability outside [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.link.loss),
            "loss probability outside [0, 1]"
        );
        assert!(self.link.rtt_min <= self.link.rtt_max, "rtt range is empty");
    }
}
