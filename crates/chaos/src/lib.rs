//! `sentinel-chaos`: deterministic fault injection for the serve path.
//!
//! A robustness claim is only worth what the harness that tried to
//! break it was worth. This crate generates a **seeded, bit-reproducible
//! [`FaultPlan`]** — which attacker connection misbehaves how, at which
//! frame, and which scheduled query the compute pool must panic on —
//! and executes it against a *live* `sentinel-serve` instance:
//!
//! * [`FaultStream`] wraps any `Read + Write` transport and applies one
//!   [`Fault`] per outgoing frame: a mid-frame **stall** (the header is
//!   split around a pause, exercising the server's whole-frame
//!   deadline), a **truncated frame** (some header bytes then a clean
//!   shutdown — the server must count exactly one protocol error), or
//!   a **hangup** before the first byte (a clean EOF the server must
//!   *not* count as an error).
//! * [`inject`] replays a whole plan's attacker connections against an
//!   address, counting every fault into
//!   [`Counter::FaultsInjected`](sentinel_obs::Counter::FaultsInjected)
//!   when given the server's registry.
//! * [`query_panic_hook`] turns the plan's scheduled panic points into
//!   a [`ServerConfig::fault_injection`] hook: the Nth query batch the
//!   pool executes panics, deterministically, and the server must
//!   contain it (one dead connection, one `worker_panics`, gauge back
//!   to zero).
//!
//! [`ServerConfig::fault_injection`]: sentinel_serve::ServerConfig
//!
//! Everything derives from one `u64` seed through splitmix64-split
//! per-connection streams (the same idiom as the fleet simulator), so
//! the same seed reproduces the same fault sequence bit-for-bit — a
//! failing soak is a replayable soak. [`FaultPlan::digest`] fingerprints
//! a plan in one `u64` for pinning in tests and CI logs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use rand::{rngs::SmallRng, Rng, SeedableRng};
use sentinel_obs::{Counter, MetricsRegistry};
use sentinel_serve::server::FaultInjection;
use sentinel_serve::wire::{self, Message, HEADER_LEN};

/// Tunables for [`FaultPlan::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Master seed: every random choice below derives from it.
    pub seed: u64,
    /// Attacker connections to plan.
    pub connections: u32,
    /// Fewest well-formed frames a connection sends before its
    /// terminal fault.
    pub min_ops: u32,
    /// Most frames a connection sends before its terminal fault
    /// (inclusive).
    pub max_ops: u32,
    /// Probability that any single frame is sent with a mid-frame
    /// stall instead of cleanly.
    pub stall_probability: f64,
    /// How long a stalled frame pauses between its header halves. Keep
    /// this under the server's `io_timeout` to exercise the deadline
    /// without tripping it (or over it, to force the trip).
    pub stall: Duration,
    /// Schedule a pool-task panic every this-many executed query
    /// batches (`0` disables scheduled panics).
    pub panic_every: u64,
    /// How many panics to schedule in total.
    pub panics: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            connections: 8,
            min_ops: 1,
            max_ops: 6,
            stall_probability: 0.25,
            stall: Duration::from_millis(20),
            panic_every: 0,
            panics: 0,
        }
    }
}

/// One frame-level fault an attacker connection applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Send the frame whole and read the response — a well-behaved op
    /// interleaved between faults, so the server's happy path runs on
    /// the *same* connections that misbehave.
    Clean,
    /// Split the frame mid-header around a pause, then finish it. The
    /// server's whole-frame deadline must tolerate (or evict) it; the
    /// frame itself is valid once complete.
    Stall,
    /// Send only `keep` bytes of the frame (always fewer than a
    /// header), then shut the write side down. The server sees a
    /// started-then-dead frame: exactly one protocol error. Terminal —
    /// the connection is done.
    Truncate {
        /// Bytes actually sent before the cut, `1..HEADER_LEN`.
        keep: u32,
    },
    /// Close the connection before the next frame's first byte: a
    /// clean EOF the server must treat as a normal goodbye, not an
    /// error. Terminal.
    Hangup,
}

/// The faults one attacker connection applies, in order. At most the
/// last entry is terminal ([`Fault::Truncate`] / [`Fault::Hangup`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionPlan {
    /// Per-frame faults; the final entry always terminates the
    /// connection.
    pub faults: Vec<Fault>,
}

/// A complete seeded fault schedule: per-connection frame faults plus
/// the global query sequence numbers whose pool task must panic.
///
/// Plans are plain data — comparing two for equality (or their
/// [`digest`](FaultPlan::digest)s) is how tests pin that the same seed
/// reproduces the same fault sequence bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// One schedule per attacker connection.
    pub connections: Vec<ConnectionPlan>,
    /// 1-based query-batch sequence numbers (in pool execution order)
    /// that panic. Sorted ascending.
    pub panic_queries: Vec<u64>,
}

/// splitmix64 — the same stream-splitting mixer the fleet simulator
/// uses, so `seed ^ mix(i)` gives every connection an independent,
/// reproducible stream regardless of how many draws its neighbours
/// make.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Expands `config` into the full deterministic schedule. Calling
    /// twice with equal configs yields equal plans (pinned by tests).
    pub fn generate(config: &ChaosConfig) -> FaultPlan {
        let mut connections = Vec::with_capacity(config.connections as usize);
        for i in 0..u64::from(config.connections) {
            // One independent stream per connection: reordering or
            // resizing one connection's draws cannot shift another's.
            let mut rng = SmallRng::seed_from_u64(config.seed ^ mix(i + 1));
            let min = config.min_ops.min(config.max_ops);
            let ops = rng.gen_range(min..=config.max_ops);
            let mut faults = Vec::with_capacity(ops as usize + 1);
            for _ in 0..ops {
                faults.push(if rng.gen_bool(config.stall_probability) {
                    Fault::Stall
                } else {
                    Fault::Clean
                });
            }
            faults.push(if rng.gen_bool(0.5) {
                Fault::Truncate {
                    keep: rng.gen_range(1..HEADER_LEN as u32),
                }
            } else {
                Fault::Hangup
            });
            connections.push(ConnectionPlan { faults });
        }
        let panic_queries = if config.panic_every == 0 {
            Vec::new()
        } else {
            (1..=u64::from(config.panics))
                .map(|n| n * config.panic_every)
                .collect()
        };
        FaultPlan {
            seed: config.seed,
            connections,
            panic_queries,
        }
    }

    /// FNV-1a fingerprint of the whole schedule: two plans digest
    /// equal iff they would inject the identical fault sequence.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.seed);
        for plan in &self.connections {
            eat(plan.faults.len() as u64);
            for fault in &plan.faults {
                let (tag, arg) = match *fault {
                    Fault::Clean => (0u64, 0u64),
                    Fault::Stall => (1, 0),
                    Fault::Truncate { keep } => (2, u64::from(keep)),
                    Fault::Hangup => (3, 0),
                };
                eat(tag);
                eat(arg);
            }
        }
        for &q in &self.panic_queries {
            eat(q);
        }
        hash
    }

    /// Whether the `seq`-th executed query batch (1-based) is
    /// scheduled to panic.
    pub fn should_panic(&self, seq: u64) -> bool {
        self.panic_queries.binary_search(&seq).is_ok()
    }

    /// Total frame-level faults the injector will apply (stalls +
    /// truncates + hangups), for reconciling against
    /// [`Counter::FaultsInjected`].
    pub fn frame_faults(&self) -> u64 {
        self.connections
            .iter()
            .flat_map(|c| &c.faults)
            .filter(|f| !matches!(f, Fault::Clean))
            .count() as u64
    }
}

/// A transport wrapper that applies one [`Fault`] per outgoing frame.
///
/// The wrapper is deliberately dumb about protocol: it takes fully
/// encoded frames and decides only *how* the bytes leave (whole, split
/// around a stall, cut short, or not at all), so it composes with any
/// frame the wire module can encode.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    stall: Duration,
    injected: u64,
}

impl<S: Read + Write> FaultStream<S> {
    /// Wraps `inner`; stalled frames pause `stall` mid-header.
    pub fn new(inner: S, stall: Duration) -> Self {
        FaultStream {
            inner,
            stall,
            injected: 0,
        }
    }

    /// Faults applied so far (clean sends don't count).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The wrapped transport.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Sends `frame` under `fault`. Returns `Ok(true)` when the frame
    /// went out whole (a response should follow), `Ok(false)` when the
    /// fault cut the connection short (terminal — drop it).
    pub fn send_frame(&mut self, frame: &[u8], fault: Fault) -> std::io::Result<bool> {
        match fault {
            Fault::Clean => {
                self.inner.write_all(frame)?;
                self.inner.flush()?;
                Ok(true)
            }
            Fault::Stall => {
                self.injected += 1;
                // Split inside the header: the server has committed to
                // reading a frame but cannot finish until the pause
                // ends — exactly the shape a slow or sick peer
                // produces.
                let split = (HEADER_LEN / 2).min(frame.len());
                self.inner.write_all(&frame[..split])?;
                self.inner.flush()?;
                std::thread::sleep(self.stall);
                self.inner.write_all(&frame[split..])?;
                self.inner.flush()?;
                Ok(true)
            }
            Fault::Truncate { keep } => {
                self.injected += 1;
                let keep = (keep as usize).clamp(1, frame.len());
                self.inner.write_all(&frame[..keep])?;
                self.inner.flush()?;
                Ok(false)
            }
            Fault::Hangup => {
                self.injected += 1;
                Ok(false)
            }
        }
    }
}

/// What [`inject`] did, for reconciling against server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectorReport {
    /// Attacker connections opened (or attempted).
    pub connections: u64,
    /// Whole frames that went out (clean + stalled).
    pub frames_sent: u64,
    /// Pong responses read back for those frames.
    pub pongs: u64,
    /// Frames sent split around a stall.
    pub stalls: u64,
    /// Connections ended by a truncated frame. Each must cost the
    /// server **exactly one** protocol error.
    pub truncates: u64,
    /// Connections ended by a clean pre-frame hangup. Each must cost
    /// the server **zero** protocol errors.
    pub hangups: u64,
}

impl InjectorReport {
    /// Total faults applied — reconciles with the injector's share of
    /// [`Counter::FaultsInjected`].
    pub fn faults(&self) -> u64 {
        self.stalls + self.truncates + self.hangups
    }
}

/// Replays every attacker connection in `plan` against `addr`,
/// sequentially and in plan order (determinism beats speed here — the
/// point is a reproducible abuse pattern, not throughput). Each fault
/// is recorded into `registry`'s
/// [`Counter::FaultsInjected`] when one is supplied — pass the served
/// registry so chaos shows up in the server's own books.
///
/// Frames are valid `Ping`s, so every *surviving* exchange also checks
/// the server still answers.
///
/// # Errors
///
/// Only connect failures abort the run; per-connection I/O errors are
/// expected casualties of the faults themselves and end that
/// connection only.
pub fn inject(
    addr: impl ToSocketAddrs + Copy,
    plan: &FaultPlan,
    registry: Option<&MetricsRegistry>,
) -> std::io::Result<InjectorReport> {
    let mut ping = Vec::new();
    wire::encode_frame(&Message::Ping, &mut ping)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut report = InjectorReport::default();
    for connection in &plan.connections {
        report.connections += 1;
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let mut faulted = FaultStream::new(stream, plan_stall(plan));
        for &fault in &connection.faults {
            count_fault(fault, registry, &mut report);
            let whole = match faulted.send_frame(&ping, fault) {
                Ok(whole) => whole,
                // The server may already have dropped us (e.g. a stall
                // that outlived its frame deadline): that connection's
                // story is over, move to the next one.
                Err(_) => break,
            };
            if !whole {
                break; // terminal fault: truncate or hangup
            }
            report.frames_sent += 1;
            if read_pong(faulted.inner_mut()).is_ok() {
                report.pongs += 1;
            } else {
                break;
            }
        }
        let _ = faulted.inner_mut().shutdown(Shutdown::Both);
    }
    Ok(report)
}

/// The stall length a plan's connections use. Plans don't carry the
/// duration (it is an execution knob, not part of the schedule), so
/// the injector derives a short deterministic pause from the seed —
/// long enough to split a frame observably, short enough to stay well
/// inside any sane `io_timeout`.
fn plan_stall(plan: &FaultPlan) -> Duration {
    Duration::from_millis(5 + plan.seed % 16)
}

fn count_fault(fault: Fault, registry: Option<&MetricsRegistry>, report: &mut InjectorReport) {
    let slot = match fault {
        Fault::Clean => return,
        Fault::Stall => &mut report.stalls,
        Fault::Truncate { .. } => &mut report.truncates,
        Fault::Hangup => &mut report.hangups,
    };
    *slot += 1;
    if let Some(registry) = registry {
        registry.incr(Counter::FaultsInjected);
    }
}

/// Reads one whole frame and asserts it decodes to `Pong`.
fn read_pong(stream: &mut TcpStream) -> std::io::Result<()> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header)?;
    let decoded = wire::decode_header(&header)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut payload = vec![0u8; decoded.len as usize];
    stream.read_exact(&mut payload)?;
    match wire::decode_payload_at(decoded.version, decoded.kind, &payload) {
        Ok(Message::Pong) => Ok(()),
        Ok(other) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("expected pong, got kind {:#04x}", other.kind()),
        )),
        Err(e) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            e.to_string(),
        )),
    }
}

/// Late-binding handle to the server's metrics registry.
///
/// The fault hook must sit in `ServerConfig` *before* `serve` runs,
/// but the server only creates its registry *during* `serve`. A
/// `RegistrySlot` breaks the cycle: hand a clone to
/// [`query_panic_hook`] up front, then [`bind`](RegistrySlot::bind)
/// the served registry (from `ServerHandle::metrics`) before traffic
/// starts. An unbound slot drops increments — the scheduled panics
/// still fire, but the books only reconcile if binding happens before
/// the first query.
#[derive(Clone, Debug, Default)]
pub struct RegistrySlot {
    slot: Arc<OnceLock<Arc<MetricsRegistry>>>,
}

impl RegistrySlot {
    /// An empty slot; [`bind`](RegistrySlot::bind) it once the server
    /// handle exists.
    pub fn new() -> Self {
        RegistrySlot::default()
    }

    /// Binds the served registry. First bind wins; later calls are
    /// ignored.
    pub fn bind(&self, registry: Arc<MetricsRegistry>) {
        let _ = self.slot.set(registry);
    }

    fn incr(&self, counter: Counter) {
        if let Some(registry) = self.slot.get() {
            registry.incr(counter);
        }
    }
}

/// Builds a [`ServerConfig::fault_injection`] hook from the plan's
/// scheduled panic points: the hook counts executed query batches and
/// panics on exactly the scheduled sequence numbers, incrementing
/// [`Counter::FaultsInjected`] first so the books reconcile
/// (`faults_injected == injector faults + worker panics` at
/// quiescence).
///
/// [`ServerConfig::fault_injection`]: sentinel_serve::ServerConfig
pub fn query_panic_hook(plan: &FaultPlan, registry: RegistrySlot) -> FaultInjection {
    let schedule = plan.panic_queries.clone();
    let seq = AtomicU64::new(0);
    Arc::new(move |_request| {
        let n = seq.fetch_add(1, Ordering::SeqCst) + 1;
        if schedule.binary_search(&n).is_ok() {
            registry.incr(Counter::FaultsInjected);
            panic!("chaos: scheduled pool-task fault at query batch {n}");
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            connections: 6,
            min_ops: 1,
            max_ops: 5,
            stall_probability: 0.3,
            panic_every: 10,
            panics: 3,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::generate(&config(42));
        let b = FaultPlan::generate(&config(42));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(&config(42));
        let b = FaultPlan::generate(&config(43));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn every_connection_ends_terminally() {
        let plan = FaultPlan::generate(&config(7));
        assert_eq!(plan.connections.len(), 6);
        for connection in &plan.connections {
            let last = connection.faults.last().expect("non-empty plan");
            assert!(
                matches!(last, Fault::Truncate { .. } | Fault::Hangup),
                "connections must end in a terminal fault, got {last:?}"
            );
            // Terminal faults appear only at the end.
            for fault in &connection.faults[..connection.faults.len() - 1] {
                assert!(matches!(fault, Fault::Clean | Fault::Stall));
            }
            // Truncations always send at least one byte but never a
            // whole header — the server must see a *started* frame.
            for fault in &connection.faults {
                if let Fault::Truncate { keep } = fault {
                    assert!((1..HEADER_LEN as u32).contains(keep));
                }
            }
        }
    }

    #[test]
    fn panic_schedule_is_every_nth() {
        let plan = FaultPlan::generate(&config(1));
        assert_eq!(plan.panic_queries, vec![10, 20, 30]);
        assert!(plan.should_panic(10));
        assert!(plan.should_panic(30));
        assert!(!plan.should_panic(11));
        assert!(!plan.should_panic(0));
        let quiet = FaultPlan::generate(&ChaosConfig {
            panic_every: 0,
            panics: 9,
            ..config(1)
        });
        assert!(quiet.panic_queries.is_empty());
    }

    #[test]
    fn frame_faults_counts_non_clean_entries() {
        let plan = FaultPlan::generate(&config(5));
        let manual: u64 = plan
            .connections
            .iter()
            .flat_map(|c| &c.faults)
            .filter(|f| !matches!(f, Fault::Clean))
            .count() as u64;
        assert_eq!(plan.frame_faults(), manual);
        // Terminal faults alone guarantee at least one per connection.
        assert!(plan.frame_faults() >= plan.connections.len() as u64);
    }

    #[test]
    fn panic_hook_fires_on_schedule_only() {
        let plan = FaultPlan {
            seed: 0,
            connections: Vec::new(),
            panic_queries: vec![2],
        };
        let registry = Arc::new(MetricsRegistry::new(1));
        let slot = RegistrySlot::new();
        slot.bind(Arc::clone(&registry));
        let hook = query_panic_hook(&plan, slot);
        let request = wire::QueryRequest::default();
        hook(&request); // 1: clean
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook(&request)));
        assert!(outcome.is_err(), "query 2 must panic");
        hook(&request); // 3: clean again
        assert_eq!(registry.get(Counter::FaultsInjected), 1);
    }

    #[test]
    fn unbound_slot_still_panics_on_schedule() {
        let plan = FaultPlan {
            seed: 0,
            connections: Vec::new(),
            panic_queries: vec![1],
        };
        let hook = query_panic_hook(&plan, RegistrySlot::new());
        let request = wire::QueryRequest::default();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook(&request)));
        assert!(outcome.is_err(), "panic fires even without a registry");
    }
}
