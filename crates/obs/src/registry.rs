//! The lock-free metrics registry: a fixed catalog of atomic counters
//! and gauges plus per-worker-shard stage-latency histograms, merged
//! into a [`MetricsSnapshot`] on demand.
//!
//! Design constraints, in order:
//!
//! 1. **Warm-path cost**: recording a counter or a stage latency from
//!    a server worker is a handful of relaxed atomic RMWs — no locks,
//!    no allocation, no shared cache line beyond the counter itself
//!    (stage histograms are sharded per worker precisely so two
//!    workers never contend on one bucket).
//! 2. **Fixed identity**: every metric has a stable small integer id
//!    ([`Counter`] as `u16`, [`Stage`] as `u8`) and a stable snake_case
//!    name. The wire protocol ships ids, the text exposition ships
//!    names, and both sides tolerate ids they do not know — a newer
//!    server can grow the catalog without breaking older pollers.
//! 3. **Monotone snapshots**: counters and per-stage sample counts are
//!    single atomics (or sums of single atomics), so a poller taking
//!    repeated snapshots never sees a value decrease. Cross-metric
//!    relationships (decode count vs scan count) are exact only at
//!    quiescence — recording is relaxed, deliberately.

use crate::histogram::{AtomicHistogram, LogHistogram};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// The counter/gauge catalog. Variants are wire ids — append-only;
/// never renumber.
///
/// Most entries are counters (monotone). [`Counter::ConnectionsActive`]
/// is the one gauge (it also decrements). The `Client*` entries are
/// recorded by [`ClientStats`-shaped] gateway-side code, not the
/// server; they share the catalog so fleet reports encode client- and
/// server-side counters in one format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Counter {
    /// Connections accepted by the listener.
    ConnectionsAccepted = 0,
    /// Connections refused because the worker pool's queue was full.
    ConnectionsRefused = 1,
    /// Connections currently open (gauge).
    ConnectionsActive = 2,
    /// Frames answered, of any kind (queries, pings, reloads, stats).
    FramesServed = 3,
    /// Query frames answered.
    QueryFrames = 4,
    /// Fingerprints answered across all query frames (a batch of 8
    /// counts 8 here and 1 in [`Counter::QueryFrames`]).
    QueriesAnswered = 5,
    /// Malformed frames and I/O errors observed on connections.
    ProtocolErrors = 6,
    /// Worker panics contained by the pool.
    WorkerPanics = 7,
    /// Successful hot reloads (epoch advances).
    Reloads = 8,
    /// Reload frames that failed validation (model not an extension,
    /// parse error) and were answered with an error frame.
    ReloadsRejected = 9,
    /// Admin frames refused because the server runs without `--admin`.
    AdminRejected = 10,
    /// Stats frames answered.
    StatsServed = 11,
    /// Classifier-bank scans (one per fingerprint identified). Lives
    /// in the compiled bank itself, so a model hot-reload installs a
    /// fresh bank and **resets** this to zero — unlike the registry
    /// counters, it is monotone only between reloads.
    ScanQueries = 12,
    /// Scans answered with the feature-bitmap prefilter consulted.
    /// Per-model like [`Counter::ScanQueries`]: resets on reload.
    ScanPrefiltered = 13,
    /// Forest evaluations skipped by the prefilter (answered from the
    /// cached all-default verdict without walking the arena).
    /// Per-model like [`Counter::ScanQueries`]: resets on reload.
    ScanForestsSkipped = 14,
    /// Client-side: reconnect attempts beyond the first.
    ClientConnectRetries = 15,
    /// Client-side: request frames sent.
    ClientRequestsSent = 16,
    /// Client-side: response frames received.
    ClientResponsesReceived = 17,
    /// Compute-pool tasks submitted (`for_each` indices plus `run`
    /// hand-offs). Lives in the pool, overlaid into snapshots by the
    /// server; the pool outlives reloads, so this never resets.
    PoolTasksSubmitted = 18,
    /// Compute-pool tasks that finished executing (panicked tasks
    /// included, so this reconciles exactly with
    /// [`Counter::PoolTasksSubmitted`] when the pool is quiescent).
    PoolTasksExecuted = 19,
    /// Tickets a pool worker took from another worker's deque.
    PoolSteals = 20,
    /// Tickets pushed into the pool's injector by external threads.
    PoolInjectorPushes = 21,
    /// Times a pool worker parked with no work queued.
    PoolParks = 22,
    /// Times a parked pool worker was woken.
    PoolUnparks = 23,
    /// Fingerprints shed by admission control instead of computed (a
    /// shed batch of 8 counts 8 here and 1 in
    /// [`Counter::OverloadRejections`]). Monotone.
    QueriesShed = 24,
    /// Frames answered with the retryable `Overloaded` error: query
    /// frames refused by the in-flight budget plus admin reload frames
    /// refused by the reload rate limit. Monotone.
    OverloadRejections = 25,
    /// Admin reload frames refused by the token-bucket rate limit
    /// (a subset of [`Counter::OverloadRejections`]). Monotone.
    ReloadsRateLimited = 26,
    /// Reload tasks that panicked mid-validation and were rolled back:
    /// the previous epoch kept serving and the peer got a typed
    /// `ReloadRejected` answer. Monotone.
    ReloadRollbacks = 27,
    /// Faults deliberately injected by a chaos harness (stalls,
    /// truncated frames, hangups, scheduled task panics). Zero outside
    /// chaos runs. Monotone.
    FaultsInjected = 28,
}

impl Counter {
    /// Every catalog entry, in id order.
    pub const ALL: [Counter; 29] = [
        Counter::ConnectionsAccepted,
        Counter::ConnectionsRefused,
        Counter::ConnectionsActive,
        Counter::FramesServed,
        Counter::QueryFrames,
        Counter::QueriesAnswered,
        Counter::ProtocolErrors,
        Counter::WorkerPanics,
        Counter::Reloads,
        Counter::ReloadsRejected,
        Counter::AdminRejected,
        Counter::StatsServed,
        Counter::ScanQueries,
        Counter::ScanPrefiltered,
        Counter::ScanForestsSkipped,
        Counter::ClientConnectRetries,
        Counter::ClientRequestsSent,
        Counter::ClientResponsesReceived,
        Counter::PoolTasksSubmitted,
        Counter::PoolTasksExecuted,
        Counter::PoolSteals,
        Counter::PoolInjectorPushes,
        Counter::PoolParks,
        Counter::PoolUnparks,
        Counter::QueriesShed,
        Counter::OverloadRejections,
        Counter::ReloadsRateLimited,
        Counter::ReloadRollbacks,
        Counter::FaultsInjected,
    ];

    /// Number of catalog entries.
    pub const COUNT: usize = Counter::ALL.len();

    /// The counter's wire id.
    pub fn id(self) -> u16 {
        self as u16
    }

    /// The catalog entry with wire id `id`, if known.
    pub fn from_id(id: u16) -> Option<Counter> {
        Counter::ALL.get(id as usize).copied()
    }

    /// Stable snake_case name (text exposition, bench JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Counter::ConnectionsAccepted => "connections_accepted",
            Counter::ConnectionsRefused => "connections_refused",
            Counter::ConnectionsActive => "connections_active",
            Counter::FramesServed => "frames_served",
            Counter::QueryFrames => "query_frames",
            Counter::QueriesAnswered => "queries_answered",
            Counter::ProtocolErrors => "protocol_errors",
            Counter::WorkerPanics => "worker_panics",
            Counter::Reloads => "reloads",
            Counter::ReloadsRejected => "reloads_rejected",
            Counter::AdminRejected => "admin_rejected",
            Counter::StatsServed => "stats_served",
            Counter::ScanQueries => "scan_queries",
            Counter::ScanPrefiltered => "scan_prefiltered",
            Counter::ScanForestsSkipped => "scan_forests_skipped",
            Counter::ClientConnectRetries => "client_connect_retries",
            Counter::ClientRequestsSent => "client_requests_sent",
            Counter::ClientResponsesReceived => "client_responses_received",
            Counter::PoolTasksSubmitted => "pool_tasks_submitted",
            Counter::PoolTasksExecuted => "pool_tasks_executed",
            Counter::PoolSteals => "pool_steals",
            Counter::PoolInjectorPushes => "pool_injector_pushes",
            Counter::PoolParks => "pool_parks",
            Counter::PoolUnparks => "pool_unparks",
            Counter::QueriesShed => "queries_shed",
            Counter::OverloadRejections => "overload_rejections",
            Counter::ReloadsRateLimited => "reloads_rate_limited",
            Counter::ReloadRollbacks => "reload_rollbacks",
            Counter::FaultsInjected => "faults_injected",
        }
    }

    /// Whether the entry is a gauge (may decrease between snapshots).
    pub fn is_gauge(self) -> bool {
        matches!(self, Counter::ConnectionsActive)
    }

    /// Whether the entry is monotone for the whole life of a server.
    /// False for the gauge and for the per-model scan counters, which
    /// reset when a hot reload installs a fresh compiled bank.
    pub fn is_monotone(self) -> bool {
        !matches!(
            self,
            Counter::ConnectionsActive
                | Counter::ScanQueries
                | Counter::ScanPrefiltered
                | Counter::ScanForestsSkipped
        )
    }
}

/// The serve pipeline's instrumented stages, in execution order.
/// Variants are wire ids — append-only; never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Query-frame payload decode (wire bytes → fingerprints).
    Decode = 0,
    /// Identification: prefilter consult + arena scan/vote + response
    /// assembly (`handle_batch_with`), the paper's classification step.
    Scan = 1,
    /// Response-frame encode (responses → wire bytes) and send.
    Encode = 2,
    /// Whole query frame, decode through send — the server-side view
    /// of what a client measures as request latency, minus the wire.
    Frame = 3,
}

impl Stage {
    /// Every stage, in id (= execution) order.
    pub const ALL: [Stage; 4] = [Stage::Decode, Stage::Scan, Stage::Encode, Stage::Frame];

    /// Number of stages.
    pub const COUNT: usize = Stage::ALL.len();

    /// The stage's wire id.
    pub fn id(self) -> u8 {
        self as u8
    }

    /// The stage with wire id `id`, if known.
    pub fn from_id(id: u8) -> Option<Stage> {
        Stage::ALL.get(id as usize).copied()
    }

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Scan => "scan",
            Stage::Encode => "encode",
            Stage::Frame => "frame",
        }
    }
}

/// One worker's stage histograms: a private cache-line neighborhood
/// per worker, so concurrent workers never contend on bucket atomics.
#[derive(Debug)]
struct StageShard {
    stages: [AtomicHistogram; Stage::COUNT],
}

impl StageShard {
    fn new() -> Self {
        StageShard {
            stages: [
                AtomicHistogram::new(),
                AtomicHistogram::new(),
                AtomicHistogram::new(),
                AtomicHistogram::new(),
            ],
        }
    }
}

/// The process-wide metrics registry: one atomic slot per [`Counter`]
/// plus one [`StageShard`] per worker thread.
///
/// Everything on the record side is `&self`, lock-free, and
/// allocation-free; snapshotting allocates (it builds a
/// [`MetricsSnapshot`]) and is meant for pollers, not the query path.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::COUNT],
    shards: Box<[StageShard]>,
}

impl MetricsRegistry {
    /// A registry with `shards` stage-histogram shards (clamped to at
    /// least 1). Use one shard per worker thread; extra recorders fold
    /// onto shard `index % shards`.
    pub fn new(shards: usize) -> Self {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            shards: (0..shards.max(1)).map(|_| StageShard::new()).collect(),
        }
    }

    /// Number of stage shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Adds `n` to `counter`.
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Relaxed);
    }

    /// Adds 1 to `counter`.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Subtracts 1 from `counter` — gauges only (a counter driven
    /// negative wraps; the registry does not police it).
    pub fn decr(&self, counter: Counter) {
        self.counters[counter as usize].fetch_sub(1, Relaxed);
    }

    /// Current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Relaxed)
    }

    /// Records one `ns` latency sample for `stage` on shard `shard`
    /// (folded modulo the shard count, so any index is safe).
    pub fn record(&self, shard: usize, stage: Stage, ns: u64) {
        self.shards[shard % self.shards.len()].stages[stage as usize].record(ns);
    }

    /// All shards of `stage` merged into one histogram.
    pub fn stage_histogram(&self, stage: Stage) -> LogHistogram {
        let mut out = LogHistogram::new();
        for shard in self.shards.iter() {
            shard.stages[stage as usize].merge_into(&mut out);
        }
        out
    }

    /// A point-in-time snapshot of every counter and every stage
    /// histogram. `epoch` is left 0 — callers owning a service cell
    /// overlay the serving epoch (and cell-tracked counters like
    /// [`Counter::Reloads`]) before shipping it.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.id(), self.get(c)))
            .collect();
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                (
                    s.id(),
                    HistogramSummary::from_histogram(&self.stage_histogram(s)),
                )
            })
            .collect();
        MetricsSnapshot {
            epoch: 0,
            counters,
            stages,
        }
    }
}

/// The fixed-width digest of one latency histogram that snapshots and
/// the Stats wire frame carry: count, sum, extrema, and four canonical
/// quantiles. All durations in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples, saturating at `u64::MAX`.
    pub sum_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
}

impl HistogramSummary {
    /// Digests `h` into the fixed-width summary.
    pub fn from_histogram(h: &LogHistogram) -> Self {
        HistogramSummary {
            count: h.count(),
            sum_ns: u64::try_from(h.sum()).unwrap_or(u64::MAX),
            min_ns: h.min(),
            max_ns: h.max(),
            p50_ns: h.quantile(0.50),
            p90_ns: h.quantile(0.90),
            p99_ns: h.quantile(0.99),
            p999_ns: h.quantile(0.999),
        }
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// A point-in-time view of the registry: the payload of the Stats wire
/// frame, the source of the text exposition, and the "server" section
/// of fleet bench reports.
///
/// Counters and stages are `(id, value)` pairs rather than fixed
/// arrays so a decoder keeps entries whose ids it does not recognise
/// (forward compatibility) and an encoder can ship a subset.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// The model epoch serving when the snapshot was taken (1 = the
    /// initially loaded model; each successful reload advances it).
    pub epoch: u64,
    /// `(Counter id, value)` pairs, id order.
    pub counters: Vec<(u16, u64)>,
    /// `(Stage id, summary)` pairs, id order.
    pub stages: Vec<(u8, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Value of `counter`, 0 when absent.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(id, _)| *id == counter.id())
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sets `counter` to `value`, inserting it if absent.
    pub fn set_counter(&mut self, counter: Counter, value: u64) {
        match self.counters.iter_mut().find(|(id, _)| *id == counter.id()) {
            Some(slot) => slot.1 = value,
            None => self.counters.push((counter.id(), value)),
        }
    }

    /// Summary for `stage`, if present.
    pub fn stage(&self, stage: Stage) -> Option<&HistogramSummary> {
        self.stages
            .iter()
            .find(|(id, _)| *id == stage.id())
            .map(|(_, s)| s)
    }

    /// Renders the snapshot in Prometheus text exposition format:
    /// counters as `sentinel_<name>`, the epoch as `sentinel_epoch`,
    /// and each stage histogram as a summary family
    /// `sentinel_stage_seconds{stage="..."}` with quantile, `_sum`,
    /// and `_count` series (durations converted to seconds, per the
    /// format's base-unit convention).
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE sentinel_epoch gauge");
        let _ = writeln!(out, "sentinel_epoch {}", self.epoch);
        for &(id, value) in &self.counters {
            let Some(counter) = Counter::from_id(id) else {
                continue;
            };
            let kind = if counter.is_gauge() {
                "gauge"
            } else {
                "counter"
            };
            let _ = writeln!(out, "# TYPE sentinel_{} {kind}", counter.name());
            let _ = writeln!(out, "sentinel_{} {value}", counter.name());
        }
        let _ = writeln!(out, "# TYPE sentinel_stage_seconds summary");
        for &(id, summary) in &self.stages {
            let Some(stage) = Stage::from_id(id) else {
                continue;
            };
            let name = stage.name();
            for (q, v) in [
                ("0.5", summary.p50_ns),
                ("0.9", summary.p90_ns),
                ("0.99", summary.p99_ns),
                ("0.999", summary.p999_ns),
            ] {
                let _ = writeln!(
                    out,
                    "sentinel_stage_seconds{{stage=\"{name}\",quantile=\"{q}\"}} {}",
                    seconds(v)
                );
            }
            let _ = writeln!(
                out,
                "sentinel_stage_seconds_sum{{stage=\"{name}\"}} {}",
                seconds(summary.sum_ns)
            );
            let _ = writeln!(
                out,
                "sentinel_stage_seconds_count{{stage=\"{name}\"}} {}",
                summary.count
            );
        }
        out
    }
}

/// Nanoseconds → seconds, formatted with enough digits to round-trip
/// nanosecond resolution without scientific notation.
fn seconds(ns: u64) -> String {
    format!("{:.9}", ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ids_round_trip() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.id() as usize, i, "{c:?} id out of order");
            assert_eq!(Counter::from_id(c.id()), Some(*c));
        }
        assert_eq!(Counter::from_id(Counter::COUNT as u16), None);
        // Names are unique.
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn stage_ids_round_trip() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.id() as usize, i);
            assert_eq!(Stage::from_id(s.id()), Some(*s));
        }
        assert_eq!(Stage::from_id(Stage::COUNT as u8), None);
    }

    #[test]
    fn registry_counts_and_records() {
        let reg = MetricsRegistry::new(2);
        reg.incr(Counter::QueryFrames);
        reg.add(Counter::QueriesAnswered, 8);
        reg.incr(Counter::ConnectionsActive);
        reg.decr(Counter::ConnectionsActive);
        assert_eq!(reg.get(Counter::QueryFrames), 1);
        assert_eq!(reg.get(Counter::QueriesAnswered), 8);
        assert_eq!(reg.get(Counter::ConnectionsActive), 0);

        reg.record(0, Stage::Scan, 1_000);
        reg.record(1, Stage::Scan, 3_000);
        reg.record(5, Stage::Scan, 5_000); // folds onto shard 1
        let h = reg.stage_histogram(Stage::Scan);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 1_000);
        assert!(h.max() >= 5_000);
    }

    #[test]
    fn snapshot_carries_all_ids_and_overlays() {
        let reg = MetricsRegistry::new(1);
        reg.incr(Counter::FramesServed);
        reg.record(0, Stage::Frame, 42);
        let mut snap = reg.snapshot();
        assert_eq!(snap.counters.len(), Counter::COUNT);
        assert_eq!(snap.stages.len(), Stage::COUNT);
        assert_eq!(snap.counter(Counter::FramesServed), 1);
        assert_eq!(snap.counter(Counter::Reloads), 0);
        assert_eq!(snap.stage(Stage::Frame).unwrap().count, 1);
        assert_eq!(snap.stage(Stage::Scan).unwrap().count, 0);

        snap.epoch = 3;
        snap.set_counter(Counter::Reloads, 2);
        assert_eq!(snap.counter(Counter::Reloads), 2);
    }

    #[test]
    fn summary_digests_histogram() {
        let mut h = LogHistogram::new();
        for v in 1..=1_000u64 {
            h.record(v * 1_000);
        }
        let s = HistogramSummary::from_histogram(&h);
        assert_eq!(s.count, 1_000);
        assert_eq!(s.min_ns, 1_000);
        assert_eq!(s.max_ns, 1_000_000);
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns && s.p99_ns <= s.p999_ns);
        assert!(s.p999_ns <= s.max_ns);
        assert!((s.mean_ns() - h.mean()).abs() < 1.0);
    }

    #[test]
    fn text_exposition_shape() {
        let reg = MetricsRegistry::new(1);
        reg.incr(Counter::QueryFrames);
        reg.record(0, Stage::Scan, 1_500_000);
        let mut snap = reg.snapshot();
        snap.epoch = 2;
        let text = snap.to_text();
        assert!(text.contains("sentinel_epoch 2\n"));
        assert!(text.contains("sentinel_query_frames 1\n"));
        assert!(text.contains("# TYPE sentinel_query_frames counter\n"));
        assert!(text.contains("# TYPE sentinel_connections_active gauge\n"));
        assert!(text.contains("sentinel_stage_seconds_count{stage=\"scan\"} 1\n"));
        assert!(text.contains("sentinel_stage_seconds{stage=\"scan\",quantile=\"0.99\"}"));
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "bad exposition line: {line}"
            );
        }
    }

    #[test]
    fn unknown_ids_survive_but_do_not_render() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.push((9_999, 7));
        snap.stages.push((200, HistogramSummary::default()));
        let text = snap.to_text();
        assert!(!text.contains("9999"));
        assert_eq!(snap.counters[0], (9_999, 7));
    }
}
