//! Hand-rolled log-linear latency histograms (the HdrHistogram shape):
//! constant memory, O(1) record, ≤ 1/16 relative bucket error — good
//! enough for p50/p99/p999 over millions of samples without keeping
//! them. [`LogHistogram`] is the single-writer form (merge-friendly,
//! used by the fleet driver's per-worker reports); [`AtomicHistogram`]
//! is the shared-writer form the server's metrics registry records
//! into from its worker threads.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket resolution: each power-of-two range splits into 16
/// linear sub-buckets, bounding relative error at 1/16 (~6%).
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Bucket count: 16 exact small-value buckets plus 16 sub-buckets for
/// each exponent 4..=63.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// A fixed-size log-bucketed histogram of `u64` samples (nanoseconds,
/// here, though the scheme is unit-agnostic).
///
/// Values below 16 land in exact buckets; larger values share a bucket
/// with at most 1/16 relative spread, so quantile estimates are within
/// ~6% of the true sample — plenty for latency reporting, at 8 KiB per
/// histogram and no allocation after construction.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket holding `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let mantissa = (value >> (exp - SUB_BITS)) & (SUB - 1);
    (((exp - SUB_BITS + 1) as u64 * SUB) + mantissa) as usize
}

/// Inclusive lower bound of bucket `index` (the inverse of
/// [`bucket_index`] up to sub-bucket resolution).
fn bucket_low(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let exp = index / SUB + SUB_BITS as u64 - 1;
    let mantissa = index % SUB;
    (SUB + mantissa) << (exp - SUB_BITS as u64)
}

/// Midpoint of bucket `index` — the value quantiles report.
fn bucket_mid(index: usize) -> u64 {
    let low = bucket_low(index);
    if (index as u64) < SUB {
        return low;
    }
    let width = bucket_low(index + 1).saturating_sub(low);
    low + width / 2
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples (kept at full width, so it cannot overflow).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of all samples (exact — the sum is kept at full width).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// The value at quantile `q` in `[0, 1]`, to bucket resolution
    /// (bucket midpoint, clamped to the observed min/max). 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_mid(index).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// The shared-writer sibling of [`LogHistogram`]: identical bucket
/// scheme, but every bucket is a relaxed [`AtomicU64`], so any number
/// of threads can [`AtomicHistogram::record`] concurrently through a
/// shared reference — lock-free and allocation-free, the contract the
/// serve path's stage timers rely on.
///
/// Reads go through [`AtomicHistogram::merge_into`], which folds the
/// bucket counts into a plain [`LogHistogram`]. Per-bucket counts are
/// monotone under concurrent recording (each is a single atomic), so
/// repeated snapshots never observe a count going backwards; the
/// `sum`/`min`/`max` companions are updated by separate relaxed
/// operations and may trail the bucket counts by in-flight samples —
/// exact at quiescence, advisory mid-flight.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free, allocation-free, `&self`.
    ///
    /// The running sum is kept in a `u64` (unlike the single-writer
    /// histogram's `u128` — there is no 128-bit atomic on stable);
    /// with nanosecond samples it wraps after ~584 years of recorded
    /// latency, which is beyond any server's lifetime.
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Number of recorded samples: the bucket counts summed, so the
    /// value is consistent with what [`AtomicHistogram::merge_into`]
    /// would fold out at the same instant.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Relaxed)).sum()
    }

    /// Folds this histogram's current contents into `out`.
    pub fn merge_into(&self, out: &mut LogHistogram) {
        for (mine, theirs) in out.counts.iter_mut().zip(self.counts.iter()) {
            let theirs = theirs.load(Relaxed);
            *mine += theirs;
            out.total += theirs;
        }
        out.sum += u128::from(self.sum.load(Relaxed));
        out.min = out.min.min(self.min.load(Relaxed));
        out.max = out.max.max(self.max.load(Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_mid(v as usize), v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn buckets_tile_the_domain_in_order() {
        // Lower bounds must be strictly increasing and round-trip
        // through bucket_index, so every u64 has exactly one bucket.
        let mut prev = 0;
        for index in 1..BUCKETS {
            let low = bucket_low(index);
            assert!(low > prev, "bucket {index} low {low} <= {prev}");
            assert_eq!(bucket_index(low), index);
            // The value just below this bucket belongs to the previous.
            assert_eq!(bucket_index(low - 1), index - 1);
            prev = low;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err <= 1.0 / 16.0 + 1e-9, "q{q}: got {got}, err {err}");
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100_000);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in 0..1_000u64 {
            let sample = v * v + 7;
            if v % 2 == 0 {
                a.record(sample);
            } else {
                b.record(sample);
            }
            whole.record(sample);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean(), whole.mean());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn atomic_matches_single_writer() {
        let atomic = AtomicHistogram::new();
        let mut plain = LogHistogram::new();
        for v in 0..1_000u64 {
            let sample = v * 31 + 5;
            atomic.record(sample);
            plain.record(sample);
        }
        assert_eq!(atomic.count(), plain.count());
        let mut folded = LogHistogram::new();
        atomic.merge_into(&mut folded);
        assert_eq!(folded.count(), plain.count());
        assert_eq!(folded.min(), plain.min());
        assert_eq!(folded.max(), plain.max());
        assert_eq!(folded.mean(), plain.mean());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(folded.quantile(q), plain.quantile(q));
        }
    }

    #[test]
    fn atomic_records_concurrently() {
        let atomic = std::sync::Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&atomic);
                std::thread::spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v * 4 + t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut folded = LogHistogram::new();
        atomic.merge_into(&mut folded);
        assert_eq!(folded.count(), 40_000);
        assert_eq!(folded.min(), 0);
        assert_eq!(folded.max(), 4 * 9_999 + 3);
    }

    #[test]
    fn atomic_empty_merge_is_identity() {
        let atomic = AtomicHistogram::new();
        let mut out = LogHistogram::new();
        atomic.merge_into(&mut out);
        assert_eq!(out.count(), 0);
        assert_eq!(out.min(), 0);
        assert_eq!(out.max(), 0);
    }
}
