//! `sentinel-obs`: observability primitives for the IoT Sentinel
//! stack.
//!
//! The paper's security enforcement loop has a gateway *trusting* the
//! identification service; this crate is what makes a live service
//! inspectable instead of a black box. It holds the workspace's one
//! latency-histogram implementation and the lock-free metrics registry
//! the serve pipeline records into:
//!
//! - [`LogHistogram`] — single-writer log-linear histogram (promoted
//!   here from `sentinel-fleet`, which re-exports it).
//! - [`AtomicHistogram`] — the shared-writer form: relaxed atomic
//!   buckets, `&self` recording, lock- and allocation-free.
//! - [`MetricsRegistry`] — fixed-catalog atomic [`Counter`]s plus
//!   per-worker [`Stage`]-latency histogram shards; snapshotting merges
//!   the shards without ever stalling a recorder.
//! - [`MetricsSnapshot`] / [`HistogramSummary`] — the point-in-time
//!   view: what the Stats wire frame ships, what
//!   [`MetricsSnapshot::to_text`] renders as Prometheus text
//!   exposition, and what fleet bench reports embed.
//!
//! The crate is dependency-free and protocol-agnostic: `sentinel-serve`
//! owns the wire encoding of snapshots, `sentinel-fleet` the report
//! embedding. Everything here is plain data plus atomics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod registry;

pub use histogram::{AtomicHistogram, LogHistogram};
pub use registry::{Counter, HistogramSummary, MetricsRegistry, MetricsSnapshot, Stage};
