//! Adversarial-input properties of the wire codec: a passive monitor
//! parses whatever appears on the air, so `decode_frame` must be
//! total — it may reject, but it must never panic — and composed
//! frames must round-trip for arbitrary field values.

use proptest::prelude::*;

use sentinel_net::wire::{compose, decode_frame};
use sentinel_net::{AppProtocol, MacAddr, Port, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decode_frame_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_frame(&bytes, SimTime::ZERO);
    }

    /// Mutating any single byte of a valid frame never panics the
    /// decoder (truncation/corruption tolerance).
    #[test]
    fn corrupted_valid_frames_never_panic(
        instance in 0u32..50,
        position in 0usize..400,
        value in any::<u8>(),
        truncate_at in 0usize..400,
    ) {
        let mac = MacAddr::from_oui([0x02, 0x42, 0x42], instance);
        let mut frame = compose::dhcp_discover(mac, instance, "fuzz-device");
        let pos = position % frame.len();
        frame[pos] = value;
        let _ = decode_frame(&frame, SimTime::ZERO);
        frame.truncate(truncate_at % (frame.len() + 1));
        let _ = decode_frame(&frame, SimTime::ZERO);
    }

    /// DNS queries round-trip for arbitrary label content and ids.
    #[test]
    fn dns_query_roundtrip(
        id in any::<u16>(),
        label_a in "[a-z0-9-]{1,20}",
        label_b in "[a-z]{1,10}",
        sport in 1024u16..65535,
    ) {
        let dev = MacAddr::new([2, 0, 0, 0, 0, 1]);
        let gw = MacAddr::new([2, 0, 0, 0, 0, 0]);
        let host = format!("{label_a}.{label_b}.example");
        let frame = compose::dns_query(
            dev,
            gw,
            "192.168.1.50".parse().unwrap(),
            "192.168.1.1".parse().unwrap(),
            id,
            &host,
            Port::new(sport),
        );
        let pkt = decode_frame(&frame, SimTime::ZERO).expect("valid frame decodes");
        prop_assert_eq!(pkt.app_protocol(), Some(AppProtocol::Dns));
        prop_assert_eq!(pkt.src_port(), Some(Port::new(sport)));
        prop_assert_eq!(pkt.wire_len(), frame.len());
    }

    /// TCP data frames round-trip for arbitrary payloads, and payload
    /// classification never panics.
    #[test]
    fn tcp_data_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        sport in 1u16..65535,
        dport in 1u16..65535,
        seq in any::<u32>(),
    ) {
        let dev = MacAddr::new([2, 0, 0, 0, 0, 1]);
        let gw = MacAddr::new([2, 0, 0, 0, 0, 0]);
        let frame = compose::tcp_data(
            dev,
            gw,
            "192.168.1.50".parse().unwrap(),
            "52.1.2.3".parse().unwrap(),
            Port::new(sport),
            Port::new(dport),
            seq,
            1,
            payload.clone(),
        );
        let pkt = decode_frame(&frame, SimTime::ZERO).expect("valid frame decodes");
        prop_assert!(pkt.is_tcp());
        prop_assert_eq!(pkt.dst_port(), Some(Port::new(dport)));
        if payload.is_empty() {
            prop_assert!(pkt.app().is_none());
        } else {
            prop_assert!(pkt.app().is_some());
        }
    }

    /// UDP opaque broadcast frames keep their payload length through
    /// encode/decode regardless of padding.
    #[test]
    fn udp_opaque_length_preserved(len in 0usize..200, fill in any::<u8>()) {
        let dev = MacAddr::new([2, 0, 0, 0, 0, 1]);
        let frame = compose::udp_opaque(
            dev,
            MacAddr::BROADCAST,
            "192.168.1.50".parse().unwrap(),
            "192.168.1.255".parse().unwrap(),
            Port::new(50000),
            Port::new(9999),
            len,
            fill,
        );
        let pkt = decode_frame(&frame, SimTime::ZERO).expect("valid frame decodes");
        if len > 0 {
            match pkt.app() {
                Some(sentinel_net::AppPayload::Opaque { len: got }) => {
                    prop_assert_eq!(*got, len)
                }
                other => prop_assert!(false, "expected opaque payload, got {other:?}"),
            }
        }
        prop_assert!(pkt.wire_len() >= 60, "ethernet minimum");
    }

    /// ARP frames round-trip for arbitrary addresses.
    #[test]
    fn arp_roundtrip(sender in any::<u32>(), target in any::<u32>(), suffix in any::<u32>()) {
        let mac = MacAddr::from_oui([0x02, 0x11, 0x22], suffix);
        let sender_ip = std::net::Ipv4Addr::from(sender);
        let target_ip = std::net::Ipv4Addr::from(target);
        let frame = compose::arp_request(mac, sender_ip, target_ip);
        let pkt = decode_frame(&frame, SimTime::ZERO).expect("valid frame decodes");
        prop_assert!(pkt.is_arp());
        prop_assert_eq!(pkt.src_mac(), mac);
    }

    /// The pcap reader is total over arbitrary bytes.
    #[test]
    fn pcap_reader_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = sentinel_net::pcap::read(&bytes[..]);
    }
}
