//! ARP (RFC 826) for IPv4 over Ethernet.

use std::net::Ipv4Addr;

use bytes::BufMut;

use crate::error::WireError;
use crate::mac::MacAddr;
use crate::wire::Reader;

/// ARP operation: request.
pub const OP_REQUEST: u16 = 1;
/// ARP operation: reply.
pub const OP_REPLY: u16 = 2;

/// An ARP packet for IPv4-over-Ethernet (htype 1, ptype 0x0800).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation (1 = request, 2 = reply).
    pub operation: u16,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address. `0.0.0.0` in ARP probes (RFC 5227).
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// An ARP probe (RFC 5227): sender IP `0.0.0.0`, asking for
    /// `target_ip` — devices send these to check for address conflicts
    /// right after DHCP.
    pub fn probe(sender_mac: MacAddr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            operation: OP_REQUEST,
            sender_mac,
            sender_ip: Ipv4Addr::UNSPECIFIED,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// A gratuitous ARP announcement: sender and target IP equal.
    pub fn announce(sender_mac: MacAddr, ip: Ipv4Addr) -> Self {
        ArpPacket {
            operation: OP_REQUEST,
            sender_mac,
            sender_ip: ip,
            target_mac: MacAddr::ZERO,
            target_ip: ip,
        }
    }

    /// A normal ARP request resolving `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            operation: OP_REQUEST,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// An ARP reply.
    pub fn reply(
        sender_mac: MacAddr,
        sender_ip: Ipv4Addr,
        target_mac: MacAddr,
        target_ip: Ipv4Addr,
    ) -> Self {
        ArpPacket {
            operation: OP_REPLY,
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        }
    }

    /// Encodes the packet into `out` (28 bytes).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u16(1); // htype: Ethernet
        out.put_u16(0x0800); // ptype: IPv4
        out.put_u8(6); // hlen
        out.put_u8(4); // plen
        out.put_u16(self.operation);
        out.put_slice(&self.sender_mac.octets());
        out.put_slice(&self.sender_ip.octets());
        out.put_slice(&self.target_mac.octets());
        out.put_slice(&self.target_ip.octets());
    }

    /// Decodes an ARP packet.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on short input and
    /// [`WireError::InvalidField`] for non-Ethernet/IPv4 ARP.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let htype = r.read_u16("arp htype")?;
        let ptype = r.read_u16("arp ptype")?;
        if htype != 1 {
            return Err(WireError::invalid_field("arp htype", htype));
        }
        if ptype != 0x0800 {
            return Err(WireError::invalid_field(
                "arp ptype",
                format!("0x{ptype:04x}"),
            ));
        }
        let hlen = r.read_u8("arp hlen")?;
        let plen = r.read_u8("arp plen")?;
        if hlen != 6 || plen != 4 {
            return Err(WireError::invalid_field(
                "arp addr lengths",
                format!("{hlen}/{plen}"),
            ));
        }
        let operation = r.read_u16("arp operation")?;
        let sender_mac = MacAddr::new(r.read_array::<6>("arp sender mac")?);
        let sender_ip = Ipv4Addr::from(r.read_array::<4>("arp sender ip")?);
        let target_mac = MacAddr::new(r.read_array::<6>("arp target mac")?);
        let target_ip = Ipv4Addr::from(r.read_array::<4>("arp target ip")?);
        Ok(ArpPacket {
            operation,
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(last: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, last])
    }

    #[test]
    fn round_trip_request() {
        let arp = ArpPacket::request(
            mac(1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        let mut buf = Vec::new();
        arp.encode(&mut buf);
        assert_eq!(buf.len(), 28);
        let decoded = ArpPacket::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, arp);
    }

    #[test]
    fn probe_has_zero_sender_ip() {
        let arp = ArpPacket::probe(mac(1), Ipv4Addr::new(192, 168, 1, 50));
        assert_eq!(arp.sender_ip, Ipv4Addr::UNSPECIFIED);
        assert_eq!(arp.operation, OP_REQUEST);
    }

    #[test]
    fn announce_targets_own_ip() {
        let ip = Ipv4Addr::new(192, 168, 1, 50);
        let arp = ArpPacket::announce(mac(1), ip);
        assert_eq!(arp.sender_ip, ip);
        assert_eq!(arp.target_ip, ip);
    }

    #[test]
    fn reply_round_trip() {
        let arp = ArpPacket::reply(
            mac(9),
            Ipv4Addr::new(10, 0, 0, 1),
            mac(1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let mut buf = Vec::new();
        arp.encode(&mut buf);
        let decoded = ArpPacket::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.operation, OP_REPLY);
        assert_eq!(decoded, arp);
    }

    #[test]
    fn rejects_non_ethernet_hardware() {
        let mut buf = Vec::new();
        ArpPacket::probe(mac(1), Ipv4Addr::LOCALHOST).encode(&mut buf);
        buf[1] = 6; // htype = IEEE 802
        assert!(ArpPacket::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn truncated_errors() {
        let mut buf = Vec::new();
        ArpPacket::probe(mac(1), Ipv4Addr::LOCALHOST).encode(&mut buf);
        buf.truncate(20);
        assert!(matches!(
            ArpPacket::decode(&mut Reader::new(&buf)),
            Err(WireError::Truncated { .. })
        ));
    }
}
