//! Ethernet II and IEEE 802.3/802.2 LLC framing.

use bytes::BufMut;

use crate::error::WireError;
use crate::mac::MacAddr;
use crate::wire::Reader;

/// Minimum Ethernet frame length on the wire (without FCS).
pub const MIN_FRAME_LEN: usize = 60;

/// An Ethernet frame header: destination, source, and either an
/// EtherType (Ethernet II) or a length + LLC header (802.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EthernetHeader {
    /// Ethernet II framing.
    TypeII {
        /// Destination MAC.
        dst: MacAddr,
        /// Source MAC.
        src: MacAddr,
        /// EtherType (> 1535).
        ethertype: u16,
    },
    /// IEEE 802.3 framing with an 802.2 LLC header.
    Llc {
        /// Destination MAC.
        dst: MacAddr,
        /// Source MAC.
        src: MacAddr,
        /// Payload length (≤ 1500).
        length: u16,
        /// Destination service access point.
        dsap: u8,
        /// Source service access point.
        ssap: u8,
        /// LLC control field.
        control: u8,
    },
}

impl EthernetHeader {
    /// Source MAC of either framing variant.
    pub fn src(&self) -> MacAddr {
        match self {
            EthernetHeader::TypeII { src, .. } | EthernetHeader::Llc { src, .. } => *src,
        }
    }

    /// Destination MAC of either framing variant.
    pub fn dst(&self) -> MacAddr {
        match self {
            EthernetHeader::TypeII { dst, .. } | EthernetHeader::Llc { dst, .. } => *dst,
        }
    }

    /// Encodes the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            EthernetHeader::TypeII {
                dst,
                src,
                ethertype,
            } => {
                out.put_slice(&dst.octets());
                out.put_slice(&src.octets());
                out.put_u16(*ethertype);
            }
            EthernetHeader::Llc {
                dst,
                src,
                length,
                dsap,
                ssap,
                control,
            } => {
                out.put_slice(&dst.octets());
                out.put_slice(&src.octets());
                out.put_u16(*length);
                out.put_u8(*dsap);
                out.put_u8(*ssap);
                out.put_u8(*control);
            }
        }
    }

    /// Decodes a header from `r`, leaving the reader positioned at the
    /// start of the payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than 14 bytes remain.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let dst = MacAddr::new(r.read_array::<6>("ethernet dst")?);
        let src = MacAddr::new(r.read_array::<6>("ethernet src")?);
        let type_or_len = r.read_u16("ethernet type/length")?;
        if type_or_len <= 1500 {
            let dsap = r.read_u8("llc dsap")?;
            let ssap = r.read_u8("llc ssap")?;
            let control = r.read_u8("llc control")?;
            Ok(EthernetHeader::Llc {
                dst,
                src,
                length: type_or_len,
                dsap,
                ssap,
                control,
            })
        } else {
            Ok(EthernetHeader::TypeII {
                dst,
                src,
                ethertype: type_or_len,
            })
        }
    }
}

/// Pads `frame` with zero bytes up to the Ethernet minimum of 60 bytes
/// (64 with FCS, which captures do not include).
pub fn pad_to_minimum(frame: &mut Vec<u8>) {
    while frame.len() < MIN_FRAME_LEN {
        frame.push(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(last: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, last])
    }

    #[test]
    fn type_ii_round_trip() {
        let hdr = EthernetHeader::TypeII {
            dst: mac(1),
            src: mac(2),
            ethertype: 0x0800,
        };
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), 14);
        let mut r = Reader::new(&buf);
        assert_eq!(EthernetHeader::decode(&mut r).unwrap(), hdr);
    }

    #[test]
    fn llc_round_trip() {
        let hdr = EthernetHeader::Llc {
            dst: mac(1),
            src: mac(2),
            length: 38,
            dsap: 0x42,
            ssap: 0x42,
            control: 0x03,
        };
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), 17);
        let mut r = Reader::new(&buf);
        assert_eq!(EthernetHeader::decode(&mut r).unwrap(), hdr);
    }

    #[test]
    fn length_field_value_1500_is_llc() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&mac(1).octets());
        buf.extend_from_slice(&mac(2).octets());
        buf.extend_from_slice(&1500u16.to_be_bytes());
        buf.extend_from_slice(&[0xaa, 0xaa, 0x03]);
        let mut r = Reader::new(&buf);
        assert!(matches!(
            EthernetHeader::decode(&mut r).unwrap(),
            EthernetHeader::Llc { .. }
        ));
    }

    #[test]
    fn truncated_header_errors() {
        let buf = [0u8; 10];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            EthernetHeader::decode(&mut r),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn padding_reaches_minimum() {
        let mut frame = vec![0u8; 20];
        pad_to_minimum(&mut frame);
        assert_eq!(frame.len(), MIN_FRAME_LEN);
        let mut long = vec![0u8; 100];
        pad_to_minimum(&mut long);
        assert_eq!(long.len(), 100);
    }
}
