//! High-level frame composition.
//!
//! Each function assembles a complete, decodable Ethernet frame for one
//! protocol event of an IoT device's setup conversation. The device
//! simulator (`sentinel-devices`) sequences these into full setup
//! traces; [`super::decode_frame`] parses them back.

#![allow(clippy::too_many_arguments)] // frame composers mirror header fields 1:1

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::mac::MacAddr;
use crate::port::Port;
use crate::protocol::{EtherType, IpProtocol};

use super::arp::ArpPacket;
use super::dhcp::{DhcpMessage, DhcpMessageType};
use super::dns::DnsMessage;
use super::eapol::EapolFrame;
use super::ethernet::{pad_to_minimum, EthernetHeader};
use super::http::{HttpRequest, TlsClientHello};
use super::icmp::{IcmpMessage, IgmpMessage};
use super::ipv4::Ipv4Header;
use super::ipv6::{all_mld_routers, link_local_from_mac, Ipv6Header};
use super::ntp::NtpPacket;
use super::ssdp::{SsdpMessage, SSDP_GROUP};
use super::tcp::TcpSegment;
use super::udp::UdpDatagram;

/// The mDNS multicast group 224.0.0.251.
pub const MDNS_GROUP: Ipv4Addr = Ipv4Addr::new(224, 0, 0, 251);

/// Wraps `payload` in an Ethernet II frame and pads to the minimum
/// frame size.
fn ethernet_frame(src: MacAddr, dst: MacAddr, ethertype: EtherType, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(14 + payload.len().max(46));
    EthernetHeader::TypeII {
        dst,
        src,
        ethertype: ethertype.as_u16(),
    }
    .encode(&mut out);
    out.extend_from_slice(payload);
    pad_to_minimum(&mut out);
    out
}

/// Wraps a transport payload in IPv4 + Ethernet.
fn ipv4_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    header: &Ipv4Header,
    transport: &[u8],
) -> Vec<u8> {
    let mut ip = Vec::with_capacity(header.header_len() + transport.len());
    header.encode(&mut ip, transport.len());
    ip.extend_from_slice(transport);
    ethernet_frame(src_mac, dst_mac, EtherType::Ipv4, &ip)
}

/// Wraps a transport payload in IPv6 + Ethernet.
fn ipv6_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    header: &Ipv6Header,
    transport: &[u8],
) -> Vec<u8> {
    let mut ip = Vec::with_capacity(header.header_len() + transport.len());
    header.encode(&mut ip, transport.len());
    ip.extend_from_slice(transport);
    ethernet_frame(src_mac, dst_mac, EtherType::Ipv6, &ip)
}

/// Builds a UDP/IPv4 frame.
pub fn udp_ipv4(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: Port,
    dst_port: Port,
    payload: Vec<u8>,
) -> Vec<u8> {
    let dg = UdpDatagram::new(src_port, dst_port, payload);
    let mut transport = Vec::new();
    dg.encode(&mut transport);
    let header = Ipv4Header::new(src_ip, dst_ip, IpProtocol::Udp.as_u8());
    ipv4_frame(src_mac, dst_mac, &header, &transport)
}

// ---------------------------------------------------------------------
// 802.1X / WiFi association
// ---------------------------------------------------------------------

/// EAPOL-Start from a device to the gateway.
pub fn eapol_start(src: MacAddr, gateway: MacAddr) -> Vec<u8> {
    let mut body = Vec::new();
    EapolFrame::start().encode(&mut body);
    ethernet_frame(src, gateway, EtherType::Eapol, &body)
}

/// One message of the WPA2 four-way handshake. Messages 1 and 3 travel
/// gateway→device; 2 and 4 device→gateway — the caller picks src/dst.
///
/// # Panics
///
/// Panics if `msg` is not in `1..=4`.
pub fn eapol_key(src: MacAddr, dst: MacAddr, msg: u8) -> Vec<u8> {
    let mut body = Vec::new();
    EapolFrame::key_handshake(msg).encode(&mut body);
    ethernet_frame(src, dst, EtherType::Eapol, &body)
}

// ---------------------------------------------------------------------
// ARP
// ---------------------------------------------------------------------

/// ARP probe (RFC 5227 duplicate address detection) broadcast.
pub fn arp_probe(src: MacAddr, target_ip: Ipv4Addr) -> Vec<u8> {
    let mut body = Vec::new();
    ArpPacket::probe(src, target_ip).encode(&mut body);
    ethernet_frame(src, MacAddr::BROADCAST, EtherType::Arp, &body)
}

/// Gratuitous ARP announcement broadcast.
pub fn arp_announce(src: MacAddr, ip: Ipv4Addr) -> Vec<u8> {
    let mut body = Vec::new();
    ArpPacket::announce(src, ip).encode(&mut body);
    ethernet_frame(src, MacAddr::BROADCAST, EtherType::Arp, &body)
}

/// ARP request resolving `target_ip` (typically the gateway).
pub fn arp_request(src: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Vec<u8> {
    let mut body = Vec::new();
    ArpPacket::request(src, sender_ip, target_ip).encode(&mut body);
    ethernet_frame(src, MacAddr::BROADCAST, EtherType::Arp, &body)
}

/// Unicast ARP reply.
pub fn arp_reply(src: MacAddr, dst: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Vec<u8> {
    let mut body = Vec::new();
    ArpPacket::reply(src, sender_ip, dst, target_ip).encode(&mut body);
    ethernet_frame(src, dst, EtherType::Arp, &body)
}

// ---------------------------------------------------------------------
// DHCP / BOOTP
// ---------------------------------------------------------------------

fn dhcp_broadcast(src: MacAddr, msg: &DhcpMessage) -> Vec<u8> {
    let mut payload = Vec::new();
    msg.encode(&mut payload);
    udp_ipv4(
        src,
        MacAddr::BROADCAST,
        Ipv4Addr::UNSPECIFIED,
        Ipv4Addr::BROADCAST,
        Port::DHCP_CLIENT,
        Port::DHCP_SERVER,
        payload,
    )
}

/// DHCPDISCOVER broadcast from a device.
pub fn dhcp_discover(src: MacAddr, xid: u32, hostname: &str) -> Vec<u8> {
    dhcp_broadcast(src, &DhcpMessage::discover(src, xid, hostname))
}

/// DHCPREQUEST broadcast from a device.
pub fn dhcp_request(
    src: MacAddr,
    xid: u32,
    requested: Ipv4Addr,
    server: Ipv4Addr,
    hostname: &str,
) -> Vec<u8> {
    dhcp_broadcast(
        src,
        &DhcpMessage::request(src, xid, requested, server, hostname),
    )
}

/// Plain BOOTP request broadcast (legacy devices).
pub fn bootp_request(src: MacAddr, xid: u32) -> Vec<u8> {
    dhcp_broadcast(src, &DhcpMessage::bootp_request(src, xid))
}

/// DHCPINFORM from an already-addressed device.
pub fn dhcp_inform(src: MacAddr, xid: u32, ciaddr: Ipv4Addr) -> Vec<u8> {
    let msg = DhcpMessage::inform(src, xid, ciaddr);
    let mut payload = Vec::new();
    msg.encode(&mut payload);
    udp_ipv4(
        src,
        MacAddr::BROADCAST,
        ciaddr,
        Ipv4Addr::BROADCAST,
        Port::DHCP_CLIENT,
        Port::DHCP_SERVER,
        payload,
    )
}

/// DHCPOFFER or DHCPACK from the gateway to a device.
pub fn dhcp_server_reply(
    gateway_mac: MacAddr,
    device_mac: MacAddr,
    msg_type: DhcpMessageType,
    xid: u32,
    yiaddr: Ipv4Addr,
    server: Ipv4Addr,
) -> Vec<u8> {
    let msg = DhcpMessage::server_reply(msg_type, device_mac, xid, yiaddr, server);
    let mut payload = Vec::new();
    msg.encode(&mut payload);
    udp_ipv4(
        gateway_mac,
        device_mac,
        server,
        yiaddr,
        Port::DHCP_SERVER,
        Port::DHCP_CLIENT,
        payload,
    )
}

// ---------------------------------------------------------------------
// DNS / mDNS
// ---------------------------------------------------------------------

/// Unicast DNS A query from a device to its resolver.
pub fn dns_query(
    src: MacAddr,
    gateway_mac: MacAddr,
    src_ip: Ipv4Addr,
    resolver: Ipv4Addr,
    id: u16,
    name: &str,
    src_port: Port,
) -> Vec<u8> {
    let mut payload = Vec::new();
    DnsMessage::query_a(id, name).encode(&mut payload);
    udp_ipv4(
        src,
        gateway_mac,
        src_ip,
        resolver,
        src_port,
        Port::DNS,
        payload,
    )
}

/// DNS A response from the resolver back to a device.
pub fn dns_response(
    gateway_mac: MacAddr,
    device_mac: MacAddr,
    resolver: Ipv4Addr,
    device_ip: Ipv4Addr,
    id: u16,
    name: &str,
    answer: Ipv4Addr,
    dst_port: Port,
) -> Vec<u8> {
    let mut payload = Vec::new();
    DnsMessage::response_a(id, name, answer).encode(&mut payload);
    udp_ipv4(
        gateway_mac,
        device_mac,
        resolver,
        device_ip,
        Port::DNS,
        dst_port,
        payload,
    )
}

/// Multicast mDNS PTR query (e.g. service discovery on `.local`).
pub fn mdns_query(src: MacAddr, src_ip: Ipv4Addr, service: &str) -> Vec<u8> {
    let mut payload = Vec::new();
    DnsMessage::mdns_query_ptr(service).encode(&mut payload);
    udp_ipv4(
        src,
        MacAddr::ipv4_multicast(0xfb),
        src_ip,
        MDNS_GROUP,
        Port::MDNS,
        Port::MDNS,
        payload,
    )
}

/// Multicast mDNS announcement of `instance` under `service`.
pub fn mdns_announce(src: MacAddr, src_ip: Ipv4Addr, service: &str, instance: &str) -> Vec<u8> {
    let mut payload = Vec::new();
    DnsMessage::mdns_announce(service, instance).encode(&mut payload);
    udp_ipv4(
        src,
        MacAddr::ipv4_multicast(0xfb),
        src_ip,
        MDNS_GROUP,
        Port::MDNS,
        Port::MDNS,
        payload,
    )
}

// ---------------------------------------------------------------------
// SSDP / IGMP
// ---------------------------------------------------------------------

/// Multicast SSDP M-SEARCH for `search_target`.
pub fn ssdp_msearch(
    src: MacAddr,
    src_ip: Ipv4Addr,
    search_target: &str,
    src_port: Port,
) -> Vec<u8> {
    let mut payload = Vec::new();
    SsdpMessage::msearch(search_target).encode(&mut payload);
    udp_ipv4(
        src,
        MacAddr::ipv4_multicast(0x007f_fffa),
        src_ip,
        SSDP_GROUP,
        src_port,
        Port::SSDP,
        payload,
    )
}

/// Multicast SSDP NOTIFY ssdp:alive announcement.
pub fn ssdp_notify(
    src: MacAddr,
    src_ip: Ipv4Addr,
    nt: &str,
    location: &str,
    server: &str,
) -> Vec<u8> {
    let mut payload = Vec::new();
    SsdpMessage::notify_alive(nt, location, server).encode(&mut payload);
    udp_ipv4(
        src,
        MacAddr::ipv4_multicast(0x007f_fffa),
        src_ip,
        SSDP_GROUP,
        Port::new(1900),
        Port::SSDP,
        payload,
    )
}

/// IGMPv3 membership report joining `group`, carrying the Router Alert
/// IP option (all IGMP does) — the source of fingerprint feature 18.
pub fn igmp_join(src: MacAddr, src_ip: Ipv4Addr, group: Ipv4Addr) -> Vec<u8> {
    let mut transport = Vec::new();
    IgmpMessage::v3_join(group).encode(&mut transport);
    let header = Ipv4Header::new(
        src_ip,
        Ipv4Addr::new(224, 0, 0, 22),
        IpProtocol::Igmp.as_u8(),
    )
    .with_router_alert();
    ipv4_frame(src, MacAddr::ipv4_multicast(0x16), &header, &transport)
}

/// IGMPv2 membership report variant whose IP header carries Router
/// Alert *and* option padding — some embedded stacks pad the options
/// word, which is exactly fingerprint feature 17.
pub fn igmp_join_padded(src: MacAddr, src_ip: Ipv4Addr, group: Ipv4Addr) -> Vec<u8> {
    let mut transport = Vec::new();
    IgmpMessage::v2_report(group).encode(&mut transport);
    let header = Ipv4Header::new(src_ip, group, IpProtocol::Igmp.as_u8())
        .with_router_alert()
        .with_padding();
    let group_low23 = u32::from(group) & 0x007f_ffff;
    ipv4_frame(
        src,
        MacAddr::ipv4_multicast(group_low23),
        &header,
        &transport,
    )
}

// ---------------------------------------------------------------------
// NTP / ICMP
// ---------------------------------------------------------------------

/// NTP client request to `server_ip` (routed through the gateway).
pub fn ntp_request(
    src: MacAddr,
    gateway_mac: MacAddr,
    src_ip: Ipv4Addr,
    server_ip: Ipv4Addr,
    src_port: Port,
    timestamp: u64,
) -> Vec<u8> {
    let mut payload = Vec::new();
    NtpPacket::client(timestamp).encode(&mut payload);
    udp_ipv4(
        src,
        gateway_mac,
        src_ip,
        server_ip,
        src_port,
        Port::NTP,
        payload,
    )
}

/// ICMP echo request (connectivity check to the gateway or a cloud
/// host).
pub fn icmp_echo(
    src: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    identifier: u16,
    sequence: u16,
) -> Vec<u8> {
    let mut transport = Vec::new();
    IcmpMessage::echo_request(identifier, sequence).encode(&mut transport);
    let header = Ipv4Header::new(src_ip, dst_ip, IpProtocol::Icmp.as_u8());
    ipv4_frame(src, dst_mac, &header, &transport)
}

/// ICMPv6 router solicitation from the device's link-local address.
pub fn icmpv6_router_solicit(src: MacAddr) -> Vec<u8> {
    let mut transport = Vec::new();
    IcmpMessage::router_solicitation().encode(&mut transport);
    let header = Ipv6Header::new(
        link_local_from_mac(src),
        super::ipv6::all_routers(),
        IpProtocol::Icmpv6.as_u8(),
    );
    ipv6_frame(
        src,
        MacAddr::new([0x33, 0x33, 0, 0, 0, 2]),
        &header,
        &transport,
    )
}

/// ICMPv6 neighbour solicitation (IPv6 duplicate address detection).
pub fn icmpv6_neighbor_solicit(src: MacAddr) -> Vec<u8> {
    let target = link_local_from_mac(src);
    let mut transport = Vec::new();
    IcmpMessage::neighbor_solicitation(target.octets()).encode(&mut transport);
    let header = Ipv6Header::new(
        Ipv6Addr::UNSPECIFIED,
        solicited_node_multicast(target),
        IpProtocol::Icmpv6.as_u8(),
    );
    ipv6_frame(
        src,
        MacAddr::new([0x33, 0x33, 0xff, 0, 0, 1]),
        &header,
        &transport,
    )
}

/// MLDv2 listener report (IPv6 multicast join) with the hop-by-hop
/// Router Alert option.
pub fn mldv2_report(src: MacAddr) -> Vec<u8> {
    let groups = [solicited_node_multicast(link_local_from_mac(src)).octets()];
    let mut transport = Vec::new();
    IcmpMessage::mldv2_report(&groups).encode(&mut transport);
    let header = Ipv6Header::new(
        link_local_from_mac(src),
        all_mld_routers(),
        IpProtocol::Icmpv6.as_u8(),
    )
    .with_router_alert();
    ipv6_frame(
        src,
        MacAddr::new([0x33, 0x33, 0, 0, 0, 0x16]),
        &header,
        &transport,
    )
}

fn solicited_node_multicast(addr: Ipv6Addr) -> Ipv6Addr {
    let o = addr.octets();
    Ipv6Addr::new(
        0xff02,
        0,
        0,
        0,
        0,
        1,
        0xff00 | u16::from(o[13]),
        u16::from_be_bytes([o[14], o[15]]),
    )
}

// ---------------------------------------------------------------------
// TCP / HTTP / TLS
// ---------------------------------------------------------------------

/// TCP SYN opening a connection.
pub fn tcp_syn(
    src: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: Port,
    dst_port: Port,
    seq: u32,
) -> Vec<u8> {
    let mut transport = Vec::new();
    TcpSegment::syn(src_port, dst_port, seq).encode(&mut transport);
    let header = Ipv4Header::new(src_ip, dst_ip, IpProtocol::Tcp.as_u8());
    ipv4_frame(src, dst_mac, &header, &transport)
}

/// Bare TCP ACK.
pub fn tcp_ack(
    src: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: Port,
    dst_port: Port,
    seq: u32,
    ack: u32,
) -> Vec<u8> {
    let mut transport = Vec::new();
    TcpSegment::ack_only(src_port, dst_port, seq, ack).encode(&mut transport);
    let header = Ipv4Header::new(src_ip, dst_ip, IpProtocol::Tcp.as_u8());
    ipv4_frame(src, dst_mac, &header, &transport)
}

/// TCP FIN+ACK closing a connection.
pub fn tcp_fin(
    src: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: Port,
    dst_port: Port,
    seq: u32,
    ack: u32,
) -> Vec<u8> {
    let mut transport = Vec::new();
    TcpSegment::fin(src_port, dst_port, seq, ack).encode(&mut transport);
    let header = Ipv4Header::new(src_ip, dst_ip, IpProtocol::Tcp.as_u8());
    ipv4_frame(src, dst_mac, &header, &transport)
}

/// TCP PSH+ACK segment carrying arbitrary payload bytes.
pub fn tcp_data(
    src: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: Port,
    dst_port: Port,
    seq: u32,
    ack: u32,
    payload: Vec<u8>,
) -> Vec<u8> {
    let mut transport = Vec::new();
    TcpSegment::push(src_port, dst_port, seq, ack, payload).encode(&mut transport);
    let header = Ipv4Header::new(src_ip, dst_ip, IpProtocol::Tcp.as_u8());
    ipv4_frame(src, dst_mac, &header, &transport)
}

/// HTTP GET request in a TCP segment.
#[allow(clippy::too_many_arguments)]
pub fn http_get(
    src: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: Port,
    dst_port: Port,
    seq: u32,
    host: &str,
    path: &str,
    user_agent: &str,
) -> Vec<u8> {
    let mut payload = Vec::new();
    HttpRequest::get(host, path, user_agent).encode(&mut payload);
    tcp_data(
        src, dst_mac, src_ip, dst_ip, src_port, dst_port, seq, 1, payload,
    )
}

/// HTTP POST request in a TCP segment.
#[allow(clippy::too_many_arguments)]
pub fn http_post(
    src: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: Port,
    dst_port: Port,
    seq: u32,
    host: &str,
    path: &str,
    user_agent: &str,
    body: Vec<u8>,
) -> Vec<u8> {
    let mut payload = Vec::new();
    HttpRequest::post(host, path, user_agent, body).encode(&mut payload);
    tcp_data(
        src, dst_mac, src_ip, dst_ip, src_port, dst_port, seq, 1, payload,
    )
}

/// TLS ClientHello (with SNI) in a TCP segment — the first packet of
/// every HTTPS cloud connection.
#[allow(clippy::too_many_arguments)]
pub fn tls_client_hello(
    src: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: Port,
    dst_port: Port,
    seq: u32,
    sni: &str,
) -> Vec<u8> {
    let mut payload = Vec::new();
    TlsClientHello::new(sni).encode(&mut payload);
    tcp_data(
        src, dst_mac, src_ip, dst_ip, src_port, dst_port, seq, 1, payload,
    )
}

/// UDP datagram with `len` opaque payload bytes (proprietary binary
/// discovery protocols several vendors use).
#[allow(clippy::too_many_arguments)]
pub fn udp_opaque(
    src: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: Port,
    dst_port: Port,
    len: usize,
    fill: u8,
) -> Vec<u8> {
    udp_ipv4(
        src,
        dst_mac,
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        vec![fill; len],
    )
}

/// An 802.3/LLC frame with `len` payload bytes (non-IP hub chatter,
/// e.g. proprietary ZigBee-bridge keep-alives).
pub fn llc_frame(src: MacAddr, dst: MacAddr, dsap: u8, ssap: u8, len: usize) -> Vec<u8> {
    let mut out = Vec::new();
    EthernetHeader::Llc {
        dst,
        src,
        length: (len + 3) as u16,
        dsap,
        ssap,
        control: 0x03,
    }
    .encode(&mut out);
    out.extend(std::iter::repeat_n(0x5a, len));
    pad_to_minimum(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::AppPayload;
    use crate::protocol::AppProtocol;
    use crate::time::SimTime;
    use crate::wire::decode_frame;

    fn mac(last: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, last])
    }

    const GW: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 1);
    const DEV: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 50);

    #[test]
    fn every_composer_output_decodes() {
        let frames: Vec<(&str, Vec<u8>)> = vec![
            ("eapol_start", eapol_start(mac(1), mac(0))),
            ("eapol_key", eapol_key(mac(1), mac(0), 2)),
            ("arp_probe", arp_probe(mac(1), DEV)),
            ("arp_announce", arp_announce(mac(1), DEV)),
            ("arp_request", arp_request(mac(1), DEV, GW)),
            ("arp_reply", arp_reply(mac(1), mac(0), DEV, GW)),
            ("dhcp_discover", dhcp_discover(mac(1), 1, "dev")),
            ("dhcp_request", dhcp_request(mac(1), 1, DEV, GW, "dev")),
            ("bootp_request", bootp_request(mac(1), 1)),
            ("dhcp_inform", dhcp_inform(mac(1), 1, DEV)),
            (
                "dhcp_ack",
                dhcp_server_reply(mac(0), mac(1), DhcpMessageType::Ack, 1, DEV, GW),
            ),
            (
                "dns_query",
                dns_query(
                    mac(1),
                    mac(0),
                    DEV,
                    GW,
                    7,
                    "cloud.example.com",
                    Port::new(50000),
                ),
            ),
            (
                "dns_response",
                dns_response(
                    mac(0),
                    mac(1),
                    GW,
                    DEV,
                    7,
                    "cloud.example.com",
                    Ipv4Addr::new(52, 1, 2, 3),
                    Port::new(50000),
                ),
            ),
            ("mdns_query", mdns_query(mac(1), DEV, "_hap._tcp.local")),
            (
                "mdns_announce",
                mdns_announce(mac(1), DEV, "_hap._tcp.local", "bulb-1"),
            ),
            (
                "ssdp_msearch",
                ssdp_msearch(mac(1), DEV, "upnp:rootdevice", Port::new(50001)),
            ),
            (
                "ssdp_notify",
                ssdp_notify(
                    mac(1),
                    DEV,
                    "upnp:rootdevice",
                    "http://192.168.1.50/d.xml",
                    "dev/1.0",
                ),
            ),
            ("igmp_join", igmp_join(mac(1), DEV, SSDP_GROUP)),
            (
                "igmp_join_padded",
                igmp_join_padded(mac(1), DEV, MDNS_GROUP),
            ),
            (
                "ntp_request",
                ntp_request(
                    mac(1),
                    mac(0),
                    DEV,
                    Ipv4Addr::new(17, 253, 1, 1),
                    Port::new(50002),
                    9,
                ),
            ),
            ("icmp_echo", icmp_echo(mac(1), mac(0), DEV, GW, 1, 1)),
            ("icmpv6_rs", icmpv6_router_solicit(mac(1))),
            ("icmpv6_ns", icmpv6_neighbor_solicit(mac(1))),
            ("mldv2_report", mldv2_report(mac(1))),
            (
                "tcp_syn",
                tcp_syn(
                    mac(1),
                    mac(0),
                    DEV,
                    Ipv4Addr::new(52, 1, 2, 3),
                    Port::new(50003),
                    Port::HTTPS,
                    100,
                ),
            ),
            (
                "tcp_ack",
                tcp_ack(
                    mac(1),
                    mac(0),
                    DEV,
                    Ipv4Addr::new(52, 1, 2, 3),
                    Port::new(50003),
                    Port::HTTPS,
                    101,
                    1,
                ),
            ),
            (
                "tcp_fin",
                tcp_fin(
                    mac(1),
                    mac(0),
                    DEV,
                    Ipv4Addr::new(52, 1, 2, 3),
                    Port::new(50003),
                    Port::HTTPS,
                    102,
                    2,
                ),
            ),
            (
                "http_get",
                http_get(
                    mac(1),
                    mac(0),
                    DEV,
                    Ipv4Addr::new(52, 1, 2, 3),
                    Port::new(50003),
                    Port::HTTP,
                    1,
                    "h",
                    "/",
                    "ua",
                ),
            ),
            (
                "http_post",
                http_post(
                    mac(1),
                    mac(0),
                    DEV,
                    Ipv4Addr::new(52, 1, 2, 3),
                    Port::new(50003),
                    Port::HTTP,
                    1,
                    "h",
                    "/",
                    "ua",
                    b"{}".to_vec(),
                ),
            ),
            (
                "tls_client_hello",
                tls_client_hello(
                    mac(1),
                    mac(0),
                    DEV,
                    Ipv4Addr::new(52, 1, 2, 3),
                    Port::new(50003),
                    Port::HTTPS,
                    1,
                    "cloud.example.com",
                ),
            ),
            (
                "udp_opaque",
                udp_opaque(
                    mac(1),
                    mac(0),
                    DEV,
                    Ipv4Addr::new(255, 255, 255, 255),
                    Port::new(50004),
                    Port::new(20560),
                    32,
                    0xaa,
                ),
            ),
            (
                "llc_frame",
                llc_frame(mac(1), MacAddr::BROADCAST, 0x42, 0x42, 16),
            ),
        ];
        for (name, frame) in frames {
            assert!(
                frame.len() >= 60,
                "{name}: frame below ethernet minimum ({} bytes)",
                frame.len()
            );
            let pkt = decode_frame(&frame, SimTime::ZERO)
                .unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
            assert_eq!(pkt.wire_len(), frame.len(), "{name}: wire length mismatch");
        }
    }

    #[test]
    fn app_protocol_classification_after_round_trip() {
        let cases: Vec<(Vec<u8>, AppProtocol)> = vec![
            (dhcp_discover(mac(1), 1, "d"), AppProtocol::Dhcp),
            (bootp_request(mac(1), 1), AppProtocol::Bootp),
            (
                dns_query(mac(1), mac(0), DEV, GW, 7, "x.example", Port::new(50000)),
                AppProtocol::Dns,
            ),
            (mdns_query(mac(1), DEV, "_x._tcp.local"), AppProtocol::Mdns),
            (
                ssdp_msearch(mac(1), DEV, "ssdp:all", Port::new(50001)),
                AppProtocol::Ssdp,
            ),
            (
                ntp_request(mac(1), mac(0), DEV, GW, Port::new(50002), 9),
                AppProtocol::Ntp,
            ),
            (
                http_get(
                    mac(1),
                    mac(0),
                    DEV,
                    GW,
                    Port::new(50003),
                    Port::HTTP,
                    1,
                    "h",
                    "/",
                    "ua",
                ),
                AppProtocol::Http,
            ),
            (
                tls_client_hello(
                    mac(1),
                    mac(0),
                    DEV,
                    GW,
                    Port::new(50003),
                    Port::HTTPS,
                    1,
                    "s",
                ),
                AppProtocol::Https,
            ),
        ];
        for (frame, expected) in cases {
            let pkt = decode_frame(&frame, SimTime::ZERO).unwrap();
            assert_eq!(pkt.app_protocol(), Some(expected), "for {expected}");
        }
    }

    #[test]
    fn igmp_join_has_router_alert() {
        let pkt = decode_frame(&igmp_join(mac(1), DEV, SSDP_GROUP), SimTime::ZERO).unwrap();
        assert!(pkt.has_router_alert());
        assert!(!pkt.has_ip_padding());
    }

    #[test]
    fn igmp_join_padded_has_both_options() {
        let pkt = decode_frame(&igmp_join_padded(mac(1), DEV, MDNS_GROUP), SimTime::ZERO).unwrap();
        assert!(pkt.has_router_alert());
        assert!(pkt.has_ip_padding());
    }

    #[test]
    fn mldv2_has_router_alert_and_icmpv6() {
        let pkt = decode_frame(&mldv2_report(mac(1)), SimTime::ZERO).unwrap();
        assert!(pkt.has_router_alert());
        assert!(pkt.is_icmpv6());
    }

    #[test]
    fn udp_opaque_classifies_as_raw_data() {
        let frame = udp_opaque(
            mac(1),
            MacAddr::BROADCAST,
            DEV,
            Ipv4Addr::BROADCAST,
            Port::new(50004),
            Port::new(20560),
            32,
            0xaa,
        );
        let pkt = decode_frame(&frame, SimTime::ZERO).unwrap();
        assert!(pkt.has_raw_data());
        assert!(matches!(pkt.app(), Some(AppPayload::Opaque { len: 32 })));
    }

    #[test]
    fn dhcp_discover_realistic_size() {
        // BOOTP fixed header (236) + cookie + options + UDP/IP/Ethernet
        // headers: should land near the ~300-byte sizes real captures
        // show.
        let frame = dhcp_discover(mac(1), 1, "smart-device");
        assert!((290..=360).contains(&frame.len()), "got {}", frame.len());
    }
}
