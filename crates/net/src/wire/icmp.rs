//! ICMP, ICMPv6 and IGMP message encoding and decoding.
//!
//! ICMPv6 covers the neighbour/router discovery and MLD messages IoT
//! devices emit while joining a network; IGMP covers IPv4 multicast
//! joins (which carry the Router Alert IP option the fingerprint
//! observes).

use bytes::BufMut;

use crate::error::WireError;
use crate::wire::ipv4::internet_checksum;
use crate::wire::Reader;

/// ICMP echo request type.
pub const ICMP_ECHO_REQUEST: u8 = 8;
/// ICMP echo reply type.
pub const ICMP_ECHO_REPLY: u8 = 0;
/// ICMPv6 router solicitation type.
pub const ICMPV6_ROUTER_SOLICIT: u8 = 133;
/// ICMPv6 neighbour solicitation type.
pub const ICMPV6_NEIGHBOR_SOLICIT: u8 = 135;
/// ICMPv6 neighbour advertisement type.
pub const ICMPV6_NEIGHBOR_ADVERT: u8 = 136;
/// ICMPv6 MLDv2 listener report type.
pub const ICMPV6_MLDV2_REPORT: u8 = 143;
/// IGMPv2 membership report type.
pub const IGMP_V2_REPORT: u8 = 0x16;
/// IGMPv3 membership report type.
pub const IGMP_V3_REPORT: u8 = 0x22;

/// A generic ICMP (v4 or v6) message: type, code and opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpMessage {
    /// Message type.
    pub icmp_type: u8,
    /// Message code.
    pub code: u8,
    /// Message body after the 4-byte type/code/checksum prefix.
    pub body: Vec<u8>,
}

impl IcmpMessage {
    /// An ICMPv4 echo request with identifier/sequence and a 32-byte
    /// payload (the classic `ping` shape).
    pub fn echo_request(identifier: u16, sequence: u16) -> Self {
        let mut body = Vec::with_capacity(36);
        body.put_u16(identifier);
        body.put_u16(sequence);
        body.extend((0u8..32).map(|i| 0x61 + (i % 23)));
        IcmpMessage {
            icmp_type: ICMP_ECHO_REQUEST,
            code: 0,
            body,
        }
    }

    /// An ICMPv6 router solicitation (devices probe for routers when
    /// bringing up an interface).
    pub fn router_solicitation() -> Self {
        IcmpMessage {
            icmp_type: ICMPV6_ROUTER_SOLICIT,
            code: 0,
            body: vec![0, 0, 0, 0],
        }
    }

    /// An ICMPv6 neighbour solicitation for duplicate address
    /// detection of `target` (16 address bytes).
    pub fn neighbor_solicitation(target: [u8; 16]) -> Self {
        let mut body = vec![0, 0, 0, 0];
        body.extend_from_slice(&target);
        IcmpMessage {
            icmp_type: ICMPV6_NEIGHBOR_SOLICIT,
            code: 0,
            body,
        }
    }

    /// An MLDv2 multicast listener report with `records` group records
    /// (each 20 bytes: header + one IPv6 group address).
    pub fn mldv2_report(groups: &[[u8; 16]]) -> Self {
        let mut body = Vec::new();
        body.put_u16(0); // reserved
        body.put_u16(groups.len() as u16);
        for g in groups {
            body.put_u8(4); // change-to-exclude
            body.put_u8(0); // aux data len
            body.put_u16(0); // number of sources
            body.extend_from_slice(g);
        }
        IcmpMessage {
            icmp_type: ICMPV6_MLDV2_REPORT,
            code: 0,
            body,
        }
    }

    /// Encodes the message with a valid internet checksum over
    /// type/code/body (the ICMPv6 pseudo-header is omitted; monitor-side
    /// decoding does not verify it).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.put_u8(self.icmp_type);
        out.put_u8(self.code);
        out.put_u16(0);
        out.put_slice(&self.body);
        let sum = internet_checksum(&out[start..]);
        out[start + 2] = (sum >> 8) as u8;
        out[start + 3] = (sum & 0xff) as u8;
    }

    /// Decodes a message from the remainder of `r`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than 4 bytes remain.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let icmp_type = r.read_u8("icmp type")?;
        let code = r.read_u8("icmp code")?;
        let _checksum = r.read_u16("icmp checksum")?;
        let body = r.read_rest().to_vec();
        Ok(IcmpMessage {
            icmp_type,
            code,
            body,
        })
    }
}

/// An IGMP message (v2 report/leave or v3 report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IgmpMessage {
    /// Message type.
    pub msg_type: u8,
    /// Body after the 4-byte type/mrt/checksum prefix.
    pub body: Vec<u8>,
}

impl IgmpMessage {
    /// An IGMPv3 membership report joining `group` (exclude-mode, no
    /// sources), as sent when a device subscribes to the SSDP or mDNS
    /// multicast group.
    pub fn v3_join(group: std::net::Ipv4Addr) -> Self {
        let mut body = Vec::new();
        body.put_u16(0); // reserved
        body.put_u16(1); // one group record
        body.put_u8(4); // change-to-exclude
        body.put_u8(0);
        body.put_u16(0);
        body.extend_from_slice(&group.octets());
        IgmpMessage {
            msg_type: IGMP_V3_REPORT,
            body,
        }
    }

    /// An IGMPv2 membership report for `group`.
    pub fn v2_report(group: std::net::Ipv4Addr) -> Self {
        IgmpMessage {
            msg_type: IGMP_V2_REPORT,
            body: group.octets().to_vec(),
        }
    }

    /// Encodes the message with a valid checksum.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.put_u8(self.msg_type);
        out.put_u8(0); // max response time / reserved
        out.put_u16(0);
        out.put_slice(&self.body);
        let sum = internet_checksum(&out[start..]);
        out[start + 2] = (sum >> 8) as u8;
        out[start + 3] = (sum & 0xff) as u8;
    }

    /// Decodes a message from the remainder of `r`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than 4 bytes remain.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let msg_type = r.read_u8("igmp type")?;
        let _mrt = r.read_u8("igmp mrt")?;
        let _checksum = r.read_u16("igmp checksum")?;
        let body = r.read_rest().to_vec();
        Ok(IgmpMessage { msg_type, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn echo_request_round_trip() {
        let msg = IcmpMessage::echo_request(0x1234, 1);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert_eq!(internet_checksum(&buf), 0, "checksum must validate");
        let decoded = IcmpMessage::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.icmp_type, ICMP_ECHO_REQUEST);
        assert_eq!(decoded.body, msg.body);
    }

    #[test]
    fn mldv2_report_shape() {
        let g1 = [0xffu8; 16];
        let msg = IcmpMessage::mldv2_report(&[g1]);
        assert_eq!(msg.icmp_type, ICMPV6_MLDV2_REPORT);
        // 4 bytes header + 20 bytes group record.
        assert_eq!(msg.body.len(), 24);
    }

    #[test]
    fn igmp_v3_join_round_trip() {
        let msg = IgmpMessage::v3_join(Ipv4Addr::new(239, 255, 255, 250));
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert_eq!(internet_checksum(&buf), 0);
        let decoded = IgmpMessage::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.msg_type, IGMP_V3_REPORT);
        assert_eq!(decoded.body, msg.body);
    }

    #[test]
    fn igmp_v2_report_carries_group() {
        let msg = IgmpMessage::v2_report(Ipv4Addr::new(224, 0, 0, 251));
        assert_eq!(msg.body, vec![224, 0, 0, 251]);
    }

    #[test]
    fn truncated_icmp_errors() {
        let buf = [8u8, 0];
        assert!(IcmpMessage::decode(&mut Reader::new(&buf)).is_err());
    }
}
