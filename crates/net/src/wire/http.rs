//! HTTP/1.x message text and a minimal TLS record codec.
//!
//! The monitor never needs full HTTP semantics — only to recognise
//! HTTP request/response text (port-80 cleartext setup APIs) and TLS
//! records (port-443 cloud connections) well enough to classify the
//! packet and size it realistically.

use bytes::BufMut;

use crate::error::WireError;

/// Recognised HTTP request methods.
const METHODS: [&str; 7] = ["GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH"];

/// An HTTP/1.1 request (start line + headers + optional body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// A GET request with standard IoT-client headers.
    pub fn get(host: &str, path: &str, user_agent: &str) -> Self {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            headers: vec![
                ("Host".into(), host.into()),
                ("User-Agent".into(), user_agent.into()),
                ("Accept".into(), "*/*".into()),
                ("Connection".into(), "close".into()),
            ],
            body: Vec::new(),
        }
    }

    /// A POST request carrying `body`.
    pub fn post(host: &str, path: &str, user_agent: &str, body: Vec<u8>) -> Self {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            headers: vec![
                ("Host".into(), host.into()),
                ("User-Agent".into(), user_agent.into()),
                ("Content-Type".into(), "application/json".into()),
                ("Content-Length".into(), body.len().to_string()),
            ],
            body,
        }
    }

    /// Encodes the request as wire text.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_slice(self.method.as_bytes());
        out.put_u8(b' ');
        out.put_slice(self.path.as_bytes());
        out.put_slice(b" HTTP/1.1\r\n");
        for (k, v) in &self.headers {
            out.put_slice(k.as_bytes());
            out.put_slice(b": ");
            out.put_slice(v.as_bytes());
            out.put_slice(b"\r\n");
        }
        out.put_slice(b"\r\n");
        out.put_slice(&self.body);
    }
}

/// Classification result for a TCP payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpPayloadKind {
    /// HTTP request with the given method.
    HttpRequest(String),
    /// HTTP response (status line).
    HttpResponse,
    /// A TLS record with the given content type (22 = handshake).
    Tls(u8),
    /// Unrecognised bytes.
    Opaque,
}

/// Classifies a TCP payload as HTTP text, TLS record or opaque bytes —
/// the same level of insight a passive monitor has.
pub fn classify_tcp_payload(payload: &[u8]) -> TcpPayloadKind {
    if payload.is_empty() {
        return TcpPayloadKind::Opaque;
    }
    // TLS record header: content type 20-23, version major 3.
    if payload.len() >= 3 && (20..=23).contains(&payload[0]) && payload[1] == 3 {
        return TcpPayloadKind::Tls(payload[0]);
    }
    if let Ok(text) = std::str::from_utf8(&payload[..payload.len().min(96)]) {
        if text.starts_with("HTTP/1.") {
            return TcpPayloadKind::HttpResponse;
        }
        for m in METHODS {
            if text.starts_with(m) && text.as_bytes().get(m.len()) == Some(&b' ') {
                return TcpPayloadKind::HttpRequest(m.to_string());
            }
        }
    }
    TcpPayloadKind::Opaque
}

/// A minimal TLS ClientHello record carrying an SNI host name — enough
/// to give HTTPS flows realistic first-packet sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlsClientHello {
    /// The server name indication.
    pub sni: String,
}

impl TlsClientHello {
    /// Creates a hello for `sni`.
    pub fn new(sni: &str) -> Self {
        TlsClientHello { sni: sni.into() }
    }

    /// Encodes a TLS 1.2 record containing a ClientHello handshake with
    /// an SNI extension. Cryptographic fields are deterministic filler.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let sni = self.sni.as_bytes();
        // SNI extension: type 0, list with one host_name entry.
        let sni_entry_len = 3 + sni.len();
        let sni_ext_len = 2 + sni_entry_len;
        let extensions_len = 4 + sni_ext_len;
        // ClientHello body: version(2) random(32) session-id(1)
        // ciphers(2+8) compression(2) extensions(2+len).
        let hello_len = 2 + 32 + 1 + 10 + 2 + 2 + extensions_len;
        let handshake_len = 4 + hello_len;
        out.put_u8(22); // content type: handshake
        out.put_u8(3);
        out.put_u8(3); // TLS 1.2
        out.put_u16(handshake_len as u16);
        out.put_u8(1); // handshake type: client hello
        out.put_u8(0);
        out.put_u16(hello_len as u16);
        out.put_u8(3);
        out.put_u8(3);
        out.put_slice(&[0xab; 32]); // random
        out.put_u8(0); // session id length
        out.put_u16(8); // cipher suites length
        out.put_slice(&[0x13, 0x01, 0x13, 0x02, 0x13, 0x03, 0xc0, 0x2f]);
        out.put_u8(1); // compression methods length
        out.put_u8(0);
        out.put_u16(extensions_len as u16);
        out.put_u16(0); // extension type: server_name
        out.put_u16(sni_ext_len as u16);
        out.put_u16(sni_entry_len as u16);
        out.put_u8(0); // name type: host_name
        out.put_u16(sni.len() as u16);
        out.put_slice(sni);
    }

    /// Extracts the SNI from an encoded ClientHello record.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidField`] if the record is not a
    /// handshake ClientHello with an SNI extension.
    pub fn decode_sni(record: &[u8]) -> Result<String, WireError> {
        if record.len() < 5 || record[0] != 22 {
            return Err(WireError::invalid_field("tls record", "not a handshake"));
        }
        // Scan for the server_name extension marker rather than fully
        // parsing: type 0x0000 followed by plausible lengths.
        let mut i = 5;
        while i + 9 <= record.len() {
            if record[i] == 0 && record[i + 1] == 0 {
                let name_len = u16::from_be_bytes([record[i + 7], record[i + 8]]) as usize;
                let start = i + 9;
                if start + name_len <= record.len() {
                    let name = &record[start..start + name_len];
                    if !name.is_empty() && name.iter().all(|b| b.is_ascii_graphic()) {
                        return Ok(String::from_utf8_lossy(name).into_owned());
                    }
                }
            }
            i += 1;
        }
        Err(WireError::invalid_field("tls client hello", "no sni"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_get_encodes_as_text() {
        let req = HttpRequest::get("api.example.com", "/v1/register", "edimax-plug/1.0");
        let mut buf = Vec::new();
        req.encode(&mut buf);
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("GET /v1/register HTTP/1.1\r\n"));
        assert!(text.contains("Host: api.example.com\r\n"));
        assert_eq!(
            classify_tcp_payload(&buf),
            TcpPayloadKind::HttpRequest("GET".into())
        );
    }

    #[test]
    fn http_post_carries_body() {
        let req = HttpRequest::post("h", "/p", "ua", b"{\"k\":1}".to_vec());
        let mut buf = Vec::new();
        req.encode(&mut buf);
        assert!(buf.ends_with(b"{\"k\":1}"));
        assert_eq!(
            classify_tcp_payload(&buf),
            TcpPayloadKind::HttpRequest("POST".into())
        );
    }

    #[test]
    fn http_response_classification() {
        assert_eq!(
            classify_tcp_payload(b"HTTP/1.1 200 OK\r\n\r\n"),
            TcpPayloadKind::HttpResponse
        );
    }

    #[test]
    fn tls_hello_round_trip_sni() {
        let hello = TlsClientHello::new("cloud.vendor.example");
        let mut buf = Vec::new();
        hello.encode(&mut buf);
        assert_eq!(classify_tcp_payload(&buf), TcpPayloadKind::Tls(22));
        assert_eq!(
            TlsClientHello::decode_sni(&buf).unwrap(),
            "cloud.vendor.example"
        );
    }

    #[test]
    fn opaque_payloads() {
        assert_eq!(classify_tcp_payload(b""), TcpPayloadKind::Opaque);
        assert_eq!(
            classify_tcp_payload(&[0x00, 0x01, 0x02]),
            TcpPayloadKind::Opaque
        );
        assert_eq!(classify_tcp_payload(b"GETX/"), TcpPayloadKind::Opaque);
    }

    #[test]
    fn tls_application_data() {
        let payload = [23u8, 3, 3, 0, 16, 1, 2, 3];
        assert_eq!(classify_tcp_payload(&payload), TcpPayloadKind::Tls(23));
    }
}
