//! SSDP (Simple Service Discovery Protocol) — HTTP-like text messages
//! over UDP 1900, used by UPnP devices during setup to discover or
//! announce services.

use std::fmt::Write as _;

use crate::error::WireError;

/// SSDP multicast group address 239.255.255.250.
pub const SSDP_GROUP: std::net::Ipv4Addr = std::net::Ipv4Addr::new(239, 255, 255, 250);

/// SSDP method kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SsdpMethod {
    /// `M-SEARCH * HTTP/1.1` — active discovery.
    MSearch,
    /// `NOTIFY * HTTP/1.1` — presence announcement.
    Notify,
    /// `HTTP/1.1 200 OK` — unicast search response.
    Response,
}

impl SsdpMethod {
    /// The request/status line for this method.
    pub fn start_line(self) -> &'static str {
        match self {
            SsdpMethod::MSearch => "M-SEARCH * HTTP/1.1",
            SsdpMethod::Notify => "NOTIFY * HTTP/1.1",
            SsdpMethod::Response => "HTTP/1.1 200 OK",
        }
    }

    /// The canonical method token (used by the packet summary).
    pub fn token(self) -> &'static str {
        match self {
            SsdpMethod::MSearch => "M-SEARCH",
            SsdpMethod::Notify => "NOTIFY",
            SsdpMethod::Response => "RESPONSE",
        }
    }
}

/// An SSDP message: method plus ordered headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsdpMessage {
    /// The method.
    pub method: SsdpMethod,
    /// Header name/value pairs in wire order.
    pub headers: Vec<(String, String)>,
}

impl SsdpMessage {
    /// A multicast M-SEARCH for the given search target.
    pub fn msearch(search_target: &str) -> Self {
        SsdpMessage {
            method: SsdpMethod::MSearch,
            headers: vec![
                ("HOST".into(), "239.255.255.250:1900".into()),
                ("MAN".into(), "\"ssdp:discover\"".into()),
                ("MX".into(), "3".into()),
                ("ST".into(), search_target.into()),
            ],
        }
    }

    /// A NOTIFY ssdp:alive announcement for `nt` served at `location`.
    pub fn notify_alive(nt: &str, location: &str, server: &str) -> Self {
        SsdpMessage {
            method: SsdpMethod::Notify,
            headers: vec![
                ("HOST".into(), "239.255.255.250:1900".into()),
                ("CACHE-CONTROL".into(), "max-age=1800".into()),
                ("LOCATION".into(), location.into()),
                ("NT".into(), nt.into()),
                ("NTS".into(), "ssdp:alive".into()),
                ("SERVER".into(), server.into()),
            ],
        }
    }

    /// Looks up a header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Encodes the message as CRLF-delimited text.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut text = String::new();
        let _ = write!(text, "{}\r\n", self.method.start_line());
        for (k, v) in &self.headers {
            let _ = write!(text, "{k}: {v}\r\n");
        }
        text.push_str("\r\n");
        out.extend_from_slice(text.as_bytes());
    }

    /// Decodes a message from UDP payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidUtf8`] for non-text payloads and
    /// [`WireError::InvalidField`] for an unrecognised start line.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let text =
            std::str::from_utf8(payload).map_err(|_| WireError::InvalidUtf8 { context: "ssdp" })?;
        let mut lines = text.split("\r\n");
        let start = lines
            .next()
            .ok_or_else(|| WireError::invalid_field("ssdp start line", "missing"))?;
        let method = if start.starts_with("M-SEARCH") {
            SsdpMethod::MSearch
        } else if start.starts_with("NOTIFY") {
            SsdpMethod::Notify
        } else if start.starts_with("HTTP/1.1 200") {
            SsdpMethod::Response
        } else {
            return Err(WireError::invalid_field("ssdp start line", start));
        };
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                headers.push((k.trim().to_string(), v.trim().to_string()));
            }
        }
        Ok(SsdpMessage { method, headers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msearch_round_trip() {
        let msg = SsdpMessage::msearch("urn:dial-multiscreen-org:service:dial:1");
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let decoded = SsdpMessage::decode(&buf).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(decoded.method.token(), "M-SEARCH");
    }

    #[test]
    fn notify_round_trip_and_header_lookup() {
        let msg = SsdpMessage::notify_alive(
            "upnp:rootdevice",
            "http://192.168.1.50:49152/desc.xml",
            "Linux UPnP/1.0 device/1.0",
        );
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let decoded = SsdpMessage::decode(&buf).unwrap();
        assert_eq!(decoded.header("nts"), Some("ssdp:alive"));
        assert_eq!(
            decoded.header("LOCATION"),
            Some("http://192.168.1.50:49152/desc.xml")
        );
    }

    #[test]
    fn rejects_binary_payload() {
        assert!(matches!(
            SsdpMessage::decode(&[0xff, 0xfe, 0x00]),
            Err(WireError::InvalidUtf8 { .. })
        ));
    }

    #[test]
    fn rejects_non_ssdp_text() {
        assert!(SsdpMessage::decode(b"GET / HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn response_start_line() {
        let buf = b"HTTP/1.1 200 OK\r\nST: upnp:rootdevice\r\n\r\n";
        let decoded = SsdpMessage::decode(buf).unwrap();
        assert_eq!(decoded.method, SsdpMethod::Response);
    }
}
