//! EAPoL (802.1X) frames — the WPA2 four-way handshake every WiFi
//! device performs when associating with the gateway.

use bytes::BufMut;

use crate::error::WireError;
use crate::wire::Reader;

/// EAPoL packet type: EAP packet.
pub const TYPE_EAP_PACKET: u8 = 0;
/// EAPoL packet type: EAPOL-Start.
pub const TYPE_START: u8 = 1;
/// EAPoL packet type: EAPOL-Logoff.
pub const TYPE_LOGOFF: u8 = 2;
/// EAPoL packet type: EAPOL-Key (the 4-way handshake).
pub const TYPE_KEY: u8 = 3;

/// An EAPoL frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EapolFrame {
    /// Protocol version (2 for 802.1X-2004).
    pub version: u8,
    /// Packet type.
    pub packet_type: u8,
    /// Body bytes (key descriptor for EAPOL-Key frames).
    pub body: Vec<u8>,
}

impl EapolFrame {
    /// An EAPOL-Start frame.
    pub fn start() -> Self {
        EapolFrame {
            version: 2,
            packet_type: TYPE_START,
            body: Vec::new(),
        }
    }

    /// One message of the WPA2 four-way handshake (`msg` in 1..=4).
    /// The body is a fixed-size RSN key descriptor (95 bytes) with the
    /// key-info field distinguishing the message number.
    ///
    /// # Panics
    ///
    /// Panics if `msg` is not in `1..=4`.
    pub fn key_handshake(msg: u8) -> Self {
        assert!((1..=4).contains(&msg), "handshake message must be 1-4");
        let key_info: u16 = match msg {
            1 => 0x008a, // pairwise, ack
            2 => 0x010a, // pairwise, mic
            3 => 0x13ca, // pairwise, install, ack, mic, secure
            _ => 0x030a, // pairwise, mic, secure
        };
        let mut body = vec![2u8]; // descriptor type: RSN
        body.extend_from_slice(&key_info.to_be_bytes());
        body.extend_from_slice(&16u16.to_be_bytes()); // key length
        body.extend_from_slice(&u64::from(msg).to_be_bytes()); // replay counter
        body.extend_from_slice(&[msg; 32]); // nonce (deterministic filler)
        body.extend_from_slice(&[0; 16]); // key iv
        body.extend_from_slice(&[0; 8]); // key rsc
        body.extend_from_slice(&[0; 8]); // key id
        body.extend_from_slice(&[0; 16]); // mic
        body.extend_from_slice(&0u16.to_be_bytes()); // key data length
        EapolFrame {
            version: 2,
            packet_type: TYPE_KEY,
            body,
        }
    }

    /// Encodes the frame.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u8(self.version);
        out.put_u8(self.packet_type);
        out.put_u16(self.body.len() as u16);
        out.put_slice(&self.body);
    }

    /// Decodes a frame from the remainder of `r`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on short input.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let version = r.read_u8("eapol version")?;
        let packet_type = r.read_u8("eapol type")?;
        let len = r.read_u16("eapol length")? as usize;
        let body_len = len.min(r.remaining());
        let body = r.read_slice("eapol body", body_len)?.to_vec();
        Ok(EapolFrame {
            version,
            packet_type,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_round_trip() {
        let f = EapolFrame::start();
        let mut buf = Vec::new();
        f.encode(&mut buf);
        assert_eq!(buf.len(), 4);
        let decoded = EapolFrame::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn key_messages_have_distinct_key_info() {
        let mut infos = Vec::new();
        for msg in 1..=4 {
            let f = EapolFrame::key_handshake(msg);
            assert_eq!(f.packet_type, TYPE_KEY);
            assert_eq!(f.body.len(), 95);
            infos.push([f.body[1], f.body[2]]);
        }
        infos.dedup();
        assert_eq!(infos.len(), 4, "key-info must differ across messages");
    }

    #[test]
    #[should_panic(expected = "handshake message must be 1-4")]
    fn key_handshake_rejects_bad_msg() {
        let _ = EapolFrame::key_handshake(5);
    }

    #[test]
    fn key_round_trip() {
        let f = EapolFrame::key_handshake(3);
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let decoded = EapolFrame::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn tolerates_padding_after_body() {
        let f = EapolFrame::start();
        let mut buf = Vec::new();
        f.encode(&mut buf);
        buf.extend_from_slice(&[0u8; 40]); // ethernet padding
        let decoded = EapolFrame::decode(&mut Reader::new(&buf)).unwrap();
        assert!(decoded.body.is_empty());
    }
}
