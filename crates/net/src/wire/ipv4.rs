//! IPv4 header encoding and decoding, including the two header options
//! the IoT Sentinel fingerprint observes: padding (NOP/EOL) and Router
//! Alert (RFC 2113, carried by IGMP membership messages).

use std::net::Ipv4Addr;

use bytes::BufMut;

use crate::error::WireError;
use crate::wire::Reader;

/// An IPv4 header option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ipv4Option {
    /// End of options list (type 0), a padding byte.
    EndOfOptions,
    /// No-operation (type 1), a padding byte.
    Nop,
    /// Router Alert (type 148) with its 16-bit value (0 = examine
    /// packet).
    RouterAlert(u16),
}

impl Ipv4Option {
    /// Encoded length of this option in bytes.
    pub fn wire_len(self) -> usize {
        match self {
            Ipv4Option::EndOfOptions | Ipv4Option::Nop => 1,
            Ipv4Option::RouterAlert(_) => 4,
        }
    }

    /// Whether this option is padding for fingerprint purposes.
    pub fn is_padding(self) -> bool {
        matches!(self, Ipv4Option::EndOfOptions | Ipv4Option::Nop)
    }
}

/// A decoded IPv4 header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services code point (6 bits) + ECN (2 bits).
    pub dscp_ecn: u8,
    /// Identification field.
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number.
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Header options, in wire order.
    pub options: Vec<Ipv4Option>,
    /// Total length field (header + payload). Filled in by
    /// [`Ipv4Header::encode`]; on decode, reflects the wire value.
    pub total_len: u16,
}

impl Ipv4Header {
    /// Creates a plain header with no options, TTL 64 and DF set.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            identification: 0,
            dont_fragment: true,
            ttl: 64,
            protocol,
            src,
            dst,
            options: Vec::new(),
            total_len: 0,
        }
    }

    /// Adds a Router Alert option followed by padding to a 4-byte
    /// boundary is unnecessary (RA is exactly 4 bytes); provided for
    /// IGMP-style headers.
    pub fn with_router_alert(mut self) -> Self {
        self.options.push(Ipv4Option::RouterAlert(0));
        self
    }

    /// Adds NOP+EOL padding options (2 NOPs + 2 EOLs = one 4-byte word).
    pub fn with_padding(mut self) -> Self {
        self.options.push(Ipv4Option::Nop);
        self.options.push(Ipv4Option::Nop);
        self.options.push(Ipv4Option::EndOfOptions);
        self.options.push(Ipv4Option::EndOfOptions);
        self
    }

    /// Whether any option is padding.
    pub fn has_padding(&self) -> bool {
        self.options.iter().any(|o| o.is_padding())
    }

    /// Whether a Router Alert option is present.
    pub fn has_router_alert(&self) -> bool {
        self.options
            .iter()
            .any(|o| matches!(o, Ipv4Option::RouterAlert(_)))
    }

    /// Header length in bytes including options (always a multiple of
    /// 4; options are implicitly padded with EOL on encode).
    pub fn header_len(&self) -> usize {
        let opt_bytes: usize = self.options.iter().map(|o| o.wire_len()).sum();
        20 + opt_bytes.div_ceil(4) * 4
    }

    /// Encodes the header (computing total length and checksum) for a
    /// payload of `payload_len` bytes.
    pub fn encode(&self, out: &mut Vec<u8>, payload_len: usize) {
        let header_len = self.header_len();
        let ihl = (header_len / 4) as u8;
        let total_len = (header_len + payload_len) as u16;
        let start = out.len();
        out.put_u8(0x40 | ihl);
        out.put_u8(self.dscp_ecn);
        out.put_u16(total_len);
        out.put_u16(self.identification);
        out.put_u16(if self.dont_fragment { 0x4000 } else { 0 });
        out.put_u8(self.ttl);
        out.put_u8(self.protocol);
        out.put_u16(0); // checksum placeholder
        out.put_slice(&self.src.octets());
        out.put_slice(&self.dst.octets());
        let mut opt_bytes = 0usize;
        for opt in &self.options {
            match opt {
                Ipv4Option::EndOfOptions => out.put_u8(0),
                Ipv4Option::Nop => out.put_u8(1),
                Ipv4Option::RouterAlert(v) => {
                    out.put_u8(148);
                    out.put_u8(4);
                    out.put_u16(*v);
                }
            }
            opt_bytes += opt.wire_len();
        }
        while !opt_bytes.is_multiple_of(4) {
            out.put_u8(0);
            opt_bytes += 1;
        }
        let checksum = internet_checksum(&out[start..start + header_len]);
        out[start + 10] = (checksum >> 8) as u8;
        out[start + 11] = (checksum & 0xff) as u8;
    }

    /// Decodes a header, leaving `r` positioned at the payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on short input and
    /// [`WireError::InvalidField`] on a bad version or IHL.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let ver_ihl = r.read_u8("ipv4 version/ihl")?;
        if ver_ihl >> 4 != 4 {
            return Err(WireError::invalid_field("ipv4 version", ver_ihl >> 4));
        }
        let ihl = (ver_ihl & 0x0f) as usize;
        if ihl < 5 {
            return Err(WireError::invalid_field("ipv4 ihl", ihl));
        }
        let dscp_ecn = r.read_u8("ipv4 dscp")?;
        let total_len = r.read_u16("ipv4 total length")?;
        let identification = r.read_u16("ipv4 identification")?;
        let flags_frag = r.read_u16("ipv4 flags")?;
        let ttl = r.read_u8("ipv4 ttl")?;
        let protocol = r.read_u8("ipv4 protocol")?;
        let _checksum = r.read_u16("ipv4 checksum")?;
        let src = Ipv4Addr::from(r.read_array::<4>("ipv4 src")?);
        let dst = Ipv4Addr::from(r.read_array::<4>("ipv4 dst")?);
        let mut options = Vec::new();
        let mut remaining = ihl * 4 - 20;
        while remaining > 0 {
            let t = r.read_u8("ipv4 option type")?;
            remaining -= 1;
            match t {
                0 => options.push(Ipv4Option::EndOfOptions),
                1 => options.push(Ipv4Option::Nop),
                148 => {
                    let len = r.read_u8("ipv4 router alert length")?;
                    if len != 4 {
                        return Err(WireError::invalid_field("ipv4 router alert length", len));
                    }
                    let v = r.read_u16("ipv4 router alert value")?;
                    options.push(Ipv4Option::RouterAlert(v));
                    remaining = remaining.saturating_sub(3);
                }
                other => {
                    // Skip unknown TLV options.
                    let len = r.read_u8("ipv4 option length")? as usize;
                    if len < 2 {
                        return Err(WireError::invalid_field("ipv4 option length", other));
                    }
                    r.skip("ipv4 option data", len - 2)?;
                    remaining = remaining.saturating_sub(len - 1);
                }
            }
        }
        Ok(Ipv4Header {
            dscp_ecn,
            identification,
            dont_fragment: flags_frag & 0x4000 != 0,
            ttl,
            protocol,
            src,
            dst,
            options,
            total_len,
        })
    }
}

/// RFC 1071 internet checksum.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_header_round_trip() {
        let hdr = Ipv4Header::new(
            Ipv4Addr::new(192, 168, 1, 50),
            Ipv4Addr::new(192, 168, 1, 1),
            17,
        );
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 100);
        assert_eq!(buf.len(), 20);
        let decoded = Ipv4Header::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.src, hdr.src);
        assert_eq!(decoded.dst, hdr.dst);
        assert_eq!(decoded.protocol, 17);
        assert_eq!(decoded.total_len, 120);
        assert!(!decoded.has_padding());
        assert!(!decoded.has_router_alert());
    }

    #[test]
    fn router_alert_round_trip() {
        let hdr = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 9), Ipv4Addr::new(224, 0, 0, 22), 2)
            .with_router_alert();
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 8);
        assert_eq!(buf.len(), 24);
        let decoded = Ipv4Header::decode(&mut Reader::new(&buf)).unwrap();
        assert!(decoded.has_router_alert());
        assert!(!decoded.has_padding());
    }

    #[test]
    fn padding_round_trip() {
        let hdr = Ipv4Header::new(Ipv4Addr::LOCALHOST, Ipv4Addr::LOCALHOST, 6).with_padding();
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 0);
        assert_eq!(buf.len(), 24);
        let decoded = Ipv4Header::decode(&mut Reader::new(&buf)).unwrap();
        assert!(decoded.has_padding());
    }

    #[test]
    fn checksum_is_valid() {
        let hdr = Ipv4Header::new(Ipv4Addr::new(172, 16, 0, 7), Ipv4Addr::new(8, 8, 8, 8), 17);
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 32);
        // Re-checksumming a valid header yields zero.
        assert_eq!(internet_checksum(&buf), 0);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        Ipv4Header::new(Ipv4Addr::LOCALHOST, Ipv4Addr::LOCALHOST, 6).encode(&mut buf, 0);
        buf[0] = 0x65; // version 6
        assert!(Ipv4Header::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071 discussions.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_checksum() {
        let data = [0xffu8, 0x00, 0xff];
        // 0xff00 + 0xff00 = 0x1fe00 -> 0xfe01 -> !0xfe01 = 0x01fe
        assert_eq!(internet_checksum(&data), 0x01fe);
    }
}
