//! IPv6 header encoding and decoding, including the hop-by-hop Router
//! Alert option carried by MLD multicast listener reports.

use std::net::Ipv6Addr;

use bytes::BufMut;

use crate::error::WireError;
use crate::wire::Reader;

/// Next-header value for the hop-by-hop options extension header.
pub const NEXT_HEADER_HOP_BY_HOP: u8 = 0;

/// A decoded IPv6 header (fixed part plus an optional hop-by-hop
/// extension carrying Router Alert).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Traffic class.
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
    /// Hop limit.
    pub hop_limit: u8,
    /// The payload protocol (after any hop-by-hop header).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Whether a hop-by-hop Router Alert option is present.
    pub router_alert: bool,
    /// Payload length field from the wire (filled by encode).
    pub payload_len: u16,
}

impl Ipv6Header {
    /// Creates a plain header with hop limit 255 (link-local control
    /// traffic default).
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, protocol: u8) -> Self {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            hop_limit: 255,
            protocol,
            src,
            dst,
            router_alert: false,
            payload_len: 0,
        }
    }

    /// Adds a hop-by-hop Router Alert option (as MLD reports carry).
    pub fn with_router_alert(mut self) -> Self {
        self.router_alert = true;
        self
    }

    /// Encoded header length: 40 bytes fixed, +8 for hop-by-hop.
    pub fn header_len(&self) -> usize {
        if self.router_alert {
            48
        } else {
            40
        }
    }

    /// Encodes the header for a payload of `payload_len` bytes.
    pub fn encode(&self, out: &mut Vec<u8>, payload_len: usize) {
        let hbh_len = if self.router_alert { 8 } else { 0 };
        let wire_payload_len = (payload_len + hbh_len) as u16;
        let first = 0x6000_0000u32
            | (u32::from(self.traffic_class) << 20)
            | (self.flow_label & 0x000f_ffff);
        out.put_u32(first);
        out.put_u16(wire_payload_len);
        out.put_u8(if self.router_alert {
            NEXT_HEADER_HOP_BY_HOP
        } else {
            self.protocol
        });
        out.put_u8(self.hop_limit);
        out.put_slice(&self.src.octets());
        out.put_slice(&self.dst.octets());
        if self.router_alert {
            // Hop-by-hop: next header, length 0 (8 bytes), RA option
            // (type 5, len 2, value 0 = MLD), PadN(0).
            out.put_u8(self.protocol);
            out.put_u8(0);
            out.put_slice(&[0x05, 0x02, 0x00, 0x00, 0x01, 0x00]);
        }
    }

    /// Decodes a header, leaving `r` positioned at the payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on short input and
    /// [`WireError::InvalidField`] on a bad version field.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let first = r.read_u32("ipv6 version/class/flow")?;
        if first >> 28 != 6 {
            return Err(WireError::invalid_field("ipv6 version", first >> 28));
        }
        let traffic_class = ((first >> 20) & 0xff) as u8;
        let flow_label = first & 0x000f_ffff;
        let payload_len = r.read_u16("ipv6 payload length")?;
        let mut protocol = r.read_u8("ipv6 next header")?;
        let hop_limit = r.read_u8("ipv6 hop limit")?;
        let src = Ipv6Addr::from(r.read_array::<16>("ipv6 src")?);
        let dst = Ipv6Addr::from(r.read_array::<16>("ipv6 dst")?);
        let mut router_alert = false;
        if protocol == NEXT_HEADER_HOP_BY_HOP {
            let next = r.read_u8("hop-by-hop next header")?;
            let hbh_len = r.read_u8("hop-by-hop length")? as usize;
            let opt_bytes = 6 + hbh_len * 8;
            let opts = r.read_slice("hop-by-hop options", opt_bytes)?;
            let mut i = 0;
            while i < opts.len() {
                match opts[i] {
                    0 => i += 1, // Pad1
                    5 => {
                        router_alert = true;
                        i += 2 + opts.get(i + 1).copied().unwrap_or(0) as usize;
                    }
                    _ => {
                        i += 2 + opts.get(i + 1).copied().unwrap_or(0) as usize;
                    }
                }
            }
            protocol = next;
        }
        Ok(Ipv6Header {
            traffic_class,
            flow_label,
            hop_limit,
            protocol,
            src,
            dst,
            router_alert,
            payload_len,
        })
    }
}

/// The link-local address a device derives from its MAC via EUI-64.
pub fn link_local_from_mac(mac: crate::MacAddr) -> Ipv6Addr {
    let m = mac.octets();
    Ipv6Addr::new(
        0xfe80,
        0,
        0,
        0,
        u16::from_be_bytes([m[0] ^ 0x02, m[1]]),
        u16::from_be_bytes([m[2], 0xff]),
        u16::from_be_bytes([0xfe, m[3]]),
        u16::from_be_bytes([m[4], m[5]]),
    )
}

/// The IPv6 all-MLDv2-routers multicast address `ff02::16`.
pub fn all_mld_routers() -> Ipv6Addr {
    Ipv6Addr::new(0xff02, 0, 0, 0, 0, 0, 0, 0x16)
}

/// The IPv6 all-routers multicast address `ff02::2`.
pub fn all_routers() -> Ipv6Addr {
    Ipv6Addr::new(0xff02, 0, 0, 0, 0, 0, 0, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MacAddr;

    #[test]
    fn plain_round_trip() {
        let hdr = Ipv6Header::new(
            link_local_from_mac(MacAddr::new([2, 0, 0, 0, 0, 7])),
            all_routers(),
            58,
        );
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 24);
        assert_eq!(buf.len(), 40);
        let decoded = Ipv6Header::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.protocol, 58);
        assert_eq!(decoded.src, hdr.src);
        assert!(!decoded.router_alert);
        assert_eq!(decoded.payload_len, 24);
    }

    #[test]
    fn router_alert_round_trip() {
        let hdr = Ipv6Header::new(
            link_local_from_mac(MacAddr::new([2, 0, 0, 0, 0, 7])),
            all_mld_routers(),
            58,
        )
        .with_router_alert();
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 28);
        assert_eq!(buf.len(), 48);
        let decoded = Ipv6Header::decode(&mut Reader::new(&buf)).unwrap();
        assert!(decoded.router_alert);
        assert_eq!(decoded.protocol, 58);
        assert_eq!(decoded.payload_len, 36); // 28 + 8 hop-by-hop
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        Ipv6Header::new(Ipv6Addr::LOCALHOST, Ipv6Addr::LOCALHOST, 17).encode(&mut buf, 0);
        buf[0] = 0x45;
        assert!(Ipv6Header::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn eui64_link_local() {
        let ll = link_local_from_mac(MacAddr::new([0x00, 0x11, 0x22, 0x33, 0x44, 0x55]));
        let segs = ll.segments();
        assert_eq!(segs[0], 0xfe80);
        assert_eq!(segs[4], 0x0211); // universal/local bit flipped
        assert_eq!(segs[5], 0x22ff);
        assert_eq!(segs[6], 0xfe33);
        assert_eq!(segs[7], 0x4455);
    }
}
