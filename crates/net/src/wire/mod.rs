//! Wire-format encoding and decoding.
//!
//! Every protocol the IoT Sentinel fingerprint observes has a real byte
//! codec here. [`decode_frame`] parses a raw Ethernet frame into the
//! header-level [`Packet`] model — the exact path a tcpdump-based
//! Security Gateway deployment would run — and [`compose`] builds the
//! frames the device simulator emits.

pub mod arp;
pub mod compose;
pub mod dhcp;
pub mod dns;
pub mod eapol;
pub mod ethernet;
pub mod http;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod ntp;
pub mod ssdp;
pub mod tcp;
pub mod udp;

use crate::error::WireError;
use crate::packet::{
    self, AppPayload, ArpInfo, Ipv4Info, Ipv6Info, LinkHeader, NetHeader, Packet, TransportHeader,
};
use crate::port::Port;
use crate::protocol::{EtherType, IpProtocol};
use crate::time::SimTime;

/// A bounds-checked cursor over a byte slice. All codec `decode`
/// functions consume from a `Reader`, turning short input into
/// [`WireError::Truncated`] instead of panics.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn ensure(&self, context: &'static str, n: usize) -> Result<(), WireError> {
        if self.remaining() < n {
            Err(WireError::truncated(context, n, self.remaining()))
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if no bytes remain.
    pub fn read_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        self.ensure(context, 1)?;
        let v = self.data[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Reads a big-endian u16.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than 2 bytes remain.
    pub fn read_u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.read_array::<2>(context)?))
    }

    /// Reads a big-endian u32.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than 4 bytes remain.
    pub fn read_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.read_array::<4>(context)?))
    }

    /// Reads a big-endian u64.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than 8 bytes remain.
    pub fn read_u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.read_array::<8>(context)?))
    }

    /// Reads a fixed-size array.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `N` bytes remain.
    pub fn read_array<const N: usize>(
        &mut self,
        context: &'static str,
    ) -> Result<[u8; N], WireError> {
        self.ensure(context, N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    /// Reads `n` bytes as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn read_slice(&mut self, context: &'static str, n: usize) -> Result<&'a [u8], WireError> {
        self.ensure(context, n)?;
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Skips `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn skip(&mut self, context: &'static str, n: usize) -> Result<(), WireError> {
        self.ensure(context, n)?;
        self.pos += n;
        Ok(())
    }

    /// Consumes and returns all remaining bytes.
    pub fn read_rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }

    /// Peeks at the next `N` bytes without consuming, or `None` if
    /// fewer remain.
    pub fn peek_array<const N: usize>(&self) -> Option<[u8; N]> {
        if self.remaining() < N {
            return None;
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        Some(out)
    }
}

/// Decodes a raw Ethernet frame into the header-level [`Packet`] model.
///
/// Unknown EtherTypes and transport protocols decode into packets with
/// the corresponding layers absent rather than failing, matching what a
/// passive monitor does with traffic it cannot parse.
///
/// # Errors
///
/// Returns [`WireError`] if the frame is too short for its own framing
/// (truncated Ethernet, IP or transport headers).
///
/// # Examples
///
/// ```
/// use sentinel_net::wire::{compose, decode_frame};
/// use sentinel_net::{AppProtocol, MacAddr, SimTime};
///
/// let mac = MacAddr::new([2, 0, 0, 0, 0, 9]);
/// let frame = compose::dhcp_discover(mac, 42, "plug");
/// let pkt = decode_frame(&frame, SimTime::from_millis(5))?;
/// assert_eq!(pkt.app_protocol(), Some(AppProtocol::Dhcp));
/// # Ok::<(), sentinel_net::WireError>(())
/// ```
pub fn decode_frame(bytes: &[u8], time: SimTime) -> Result<Packet, WireError> {
    let wire_len = bytes.len();
    let mut r = Reader::new(bytes);
    let eth = ethernet::EthernetHeader::decode(&mut r)?;
    let src_mac = eth.src();
    let dst_mac = eth.dst();
    let (link, net, transport, app) = match eth {
        ethernet::EthernetHeader::Llc {
            dsap,
            ssap,
            control,
            ..
        } => (
            LinkHeader::Llc {
                dsap,
                ssap,
                control,
            },
            None,
            None,
            None,
        ),
        ethernet::EthernetHeader::TypeII { ethertype, .. } => {
            let et = EtherType::from_u16(ethertype);
            let link = LinkHeader::Ethernet { ethertype: et };
            match et {
                EtherType::Arp => {
                    let arp = arp::ArpPacket::decode(&mut r)?;
                    (
                        link,
                        Some(NetHeader::Arp(ArpInfo {
                            operation: arp.operation,
                            sender_ip: arp.sender_ip,
                            target_ip: arp.target_ip,
                        })),
                        None,
                        None,
                    )
                }
                EtherType::Eapol => {
                    let f = eapol::EapolFrame::decode(&mut r)?;
                    (
                        link,
                        Some(NetHeader::Eapol {
                            version: f.version,
                            packet_type: f.packet_type,
                        }),
                        None,
                        None,
                    )
                }
                EtherType::Ipv4 => {
                    let ip = ipv4::Ipv4Header::decode(&mut r)?;
                    let info = Ipv4Info {
                        src: ip.src,
                        dst: ip.dst,
                        protocol: IpProtocol::from_u8(ip.protocol),
                        ttl: ip.ttl,
                        has_padding_option: ip.has_padding(),
                        has_router_alert: ip.has_router_alert(),
                    };
                    // Respect the IP total-length field so Ethernet
                    // padding is not mistaken for payload.
                    let ip_payload_len = (ip.total_len as usize)
                        .saturating_sub(ip.header_len())
                        .min(r.remaining());
                    let payload = r.read_slice("ipv4 payload", ip_payload_len)?;
                    let (transport, app) = decode_ipv4_payload(info.protocol, payload)?;
                    (link, Some(NetHeader::Ipv4(info)), transport, app)
                }
                EtherType::Ipv6 => {
                    let ip = ipv6::Ipv6Header::decode(&mut r)?;
                    let info = Ipv6Info {
                        src: ip.src,
                        dst: ip.dst,
                        protocol: IpProtocol::from_u8(ip.protocol),
                        hop_limit: ip.hop_limit,
                        has_router_alert: ip.router_alert,
                    };
                    let (transport, app) = decode_ipv6_payload(info.protocol, &mut r)?;
                    (link, Some(NetHeader::Ipv6(info)), transport, app)
                }
                EtherType::Other(_) => (link, None, None, None),
            }
        }
    };
    Ok(packet::assemble(
        time, src_mac, dst_mac, link, net, transport, app, wire_len,
    ))
}

fn decode_ipv4_payload(
    protocol: IpProtocol,
    payload: &[u8],
) -> Result<(Option<TransportHeader>, Option<AppPayload>), WireError> {
    let mut r = Reader::new(payload);
    match protocol {
        IpProtocol::Tcp => {
            let seg = tcp::TcpSegment::decode(&mut r)?;
            let app = classify_tcp(&seg.payload);
            Ok((
                Some(TransportHeader::Tcp {
                    src_port: seg.src_port,
                    dst_port: seg.dst_port,
                    flags: seg.flags,
                }),
                app,
            ))
        }
        IpProtocol::Udp => {
            let dg = udp::UdpDatagram::decode(&mut r)?;
            let app = classify_udp(dg.src_port, dg.dst_port, &dg.payload);
            Ok((
                Some(TransportHeader::Udp {
                    src_port: dg.src_port,
                    dst_port: dg.dst_port,
                }),
                app,
            ))
        }
        IpProtocol::Icmp => {
            let m = icmp::IcmpMessage::decode(&mut r)?;
            Ok((
                Some(TransportHeader::Icmp {
                    icmp_type: m.icmp_type,
                    code: m.code,
                }),
                None,
            ))
        }
        IpProtocol::Igmp => {
            let m = icmp::IgmpMessage::decode(&mut r)?;
            Ok((
                Some(TransportHeader::Igmp {
                    msg_type: m.msg_type,
                }),
                None,
            ))
        }
        _ => Ok((None, None)),
    }
}

fn decode_ipv6_payload(
    protocol: IpProtocol,
    r: &mut Reader<'_>,
) -> Result<(Option<TransportHeader>, Option<AppPayload>), WireError> {
    match protocol {
        IpProtocol::Icmpv6 => {
            let m = icmp::IcmpMessage::decode(r)?;
            Ok((
                Some(TransportHeader::Icmpv6 {
                    icmp_type: m.icmp_type,
                    code: m.code,
                }),
                None,
            ))
        }
        IpProtocol::Udp => {
            let dg = udp::UdpDatagram::decode(r)?;
            let app = classify_udp(dg.src_port, dg.dst_port, &dg.payload);
            Ok((
                Some(TransportHeader::Udp {
                    src_port: dg.src_port,
                    dst_port: dg.dst_port,
                }),
                app,
            ))
        }
        IpProtocol::Tcp => {
            let seg = tcp::TcpSegment::decode(r)?;
            let app = classify_tcp(&seg.payload);
            Ok((
                Some(TransportHeader::Tcp {
                    src_port: seg.src_port,
                    dst_port: seg.dst_port,
                    flags: seg.flags,
                }),
                app,
            ))
        }
        _ => Ok((None, None)),
    }
}

fn classify_tcp(payload: &[u8]) -> Option<AppPayload> {
    if payload.is_empty() {
        return None;
    }
    Some(match http::classify_tcp_payload(payload) {
        http::TcpPayloadKind::HttpRequest(method) => AppPayload::Http { method },
        http::TcpPayloadKind::HttpResponse => AppPayload::Http {
            method: "RESPONSE".into(),
        },
        http::TcpPayloadKind::Tls(ct) => AppPayload::Tls { content_type: ct },
        http::TcpPayloadKind::Opaque => AppPayload::Opaque { len: payload.len() },
    })
}

fn classify_udp(src: Port, dst: Port, payload: &[u8]) -> Option<AppPayload> {
    let sp = src.as_u16();
    let dp = dst.as_u16();
    if payload.is_empty() {
        return None;
    }
    if sp == 67 || sp == 68 || dp == 67 || dp == 68 {
        if let Ok(msg) = dhcp::DhcpMessage::decode(&mut Reader::new(payload)) {
            return Some(match msg.message_type() {
                Some(t) => AppPayload::Dhcp {
                    message_type: t as u8,
                },
                None => AppPayload::Bootp,
            });
        }
    }
    if sp == 53 || dp == 53 || sp == 5353 || dp == 5353 {
        if let Ok(msg) = dns::DnsMessage::decode(&mut Reader::new(payload)) {
            return Some(AppPayload::Dns {
                response: msg.response,
                questions: msg.questions.len() as u16,
            });
        }
    }
    if sp == 1900 || dp == 1900 {
        if let Ok(msg) = ssdp::SsdpMessage::decode(payload) {
            return Some(AppPayload::Ssdp {
                method: msg.method.token().to_string(),
            });
        }
    }
    if (sp == 123 || dp == 123) && payload.len() >= 48 {
        if let Ok(p) = ntp::NtpPacket::decode(&mut Reader::new(payload)) {
            return Some(AppPayload::Ntp { mode: p.mode });
        }
    }
    Some(AppPayload::Opaque { len: payload.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacAddr;
    use crate::protocol::AppProtocol;
    use std::net::Ipv4Addr;

    fn mac(last: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, last])
    }

    #[test]
    fn reader_truncation_reports_context() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.read_u32("test field").unwrap_err();
        match err {
            WireError::Truncated {
                context,
                needed,
                available,
            } => {
                assert_eq!(context, "test field");
                assert_eq!(needed, 4);
                assert_eq!(available, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reader_sequential_reads() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05];
        let mut r = Reader::new(&data);
        assert_eq!(r.read_u8("a").unwrap(), 1);
        assert_eq!(r.read_u16("b").unwrap(), 0x0203);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.read_rest(), &[4, 5]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn decode_dhcp_discover_frame() {
        let frame = compose::dhcp_discover(mac(9), 0x42, "test-device");
        let pkt = decode_frame(&frame, SimTime::ZERO).unwrap();
        assert_eq!(pkt.src_mac(), mac(9));
        assert_eq!(pkt.dst_mac(), MacAddr::BROADCAST);
        assert_eq!(pkt.app_protocol(), Some(AppProtocol::Dhcp));
        assert!(pkt.is_udp());
        assert_eq!(pkt.wire_len(), frame.len());
    }

    #[test]
    fn decode_arp_probe_frame() {
        let frame = compose::arp_probe(mac(9), Ipv4Addr::new(192, 168, 1, 50));
        let pkt = decode_frame(&frame, SimTime::ZERO).unwrap();
        assert!(pkt.is_arp());
        assert!(!pkt.is_ip());
        assert_eq!(pkt.dst_ip(), None);
    }

    #[test]
    fn decode_unknown_ethertype_keeps_link_only() {
        let mut frame = Vec::new();
        ethernet::EthernetHeader::TypeII {
            dst: mac(1),
            src: mac(2),
            ethertype: 0x9999,
        }
        .encode(&mut frame);
        frame.extend_from_slice(&[0u8; 46]);
        let pkt = decode_frame(&frame, SimTime::ZERO).unwrap();
        assert!(!pkt.is_ip());
        assert!(!pkt.is_arp());
        assert_eq!(pkt.app_protocol(), None);
    }

    #[test]
    fn ethernet_padding_not_counted_as_payload() {
        // A tiny UDP payload on a frame padded to 60 bytes must not
        // classify the padding as opaque data.
        let frame = compose::ntp_request(
            mac(3),
            mac(1),
            Ipv4Addr::new(192, 168, 1, 7),
            Ipv4Addr::new(192, 168, 1, 1),
            Port::new(50123),
            7,
        );
        let pkt = decode_frame(&frame, SimTime::ZERO).unwrap();
        assert_eq!(pkt.app_protocol(), Some(AppProtocol::Ntp));
    }
}
