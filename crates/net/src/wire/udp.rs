//! UDP datagram encoding and decoding.

use bytes::BufMut;

use crate::error::WireError;
use crate::port::Port;
use crate::wire::Reader;

/// A UDP datagram: ports plus payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: Port,
    /// Destination port.
    pub dst_port: Port,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src_port: Port, dst_port: Port, payload: Vec<u8>) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Encodes the datagram (checksum left zero, which is legal for
    /// IPv4 UDP).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u16(self.src_port.as_u16());
        out.put_u16(self.dst_port.as_u16());
        out.put_u16((8 + self.payload.len()) as u16);
        out.put_u16(0); // checksum
        out.put_slice(&self.payload);
    }

    /// Decodes a datagram from the remainder of `r`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on short input or
    /// [`WireError::InvalidField`] if the length field is shorter than
    /// the header.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let src_port = Port::new(r.read_u16("udp src port")?);
        let dst_port = Port::new(r.read_u16("udp dst port")?);
        let len = r.read_u16("udp length")? as usize;
        let _checksum = r.read_u16("udp checksum")?;
        if len < 8 {
            return Err(WireError::invalid_field("udp length", len));
        }
        let body_len = (len - 8).min(r.remaining());
        let payload = r.read_slice("udp payload", body_len)?.to_vec();
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let dg = UdpDatagram::new(Port::new(50000), Port::DNS, vec![1, 2, 3, 4]);
        let mut buf = Vec::new();
        dg.encode(&mut buf);
        assert_eq!(buf.len(), 12);
        let decoded = UdpDatagram::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, dg);
    }

    #[test]
    fn empty_payload() {
        let dg = UdpDatagram::new(Port::NTP, Port::NTP, Vec::new());
        let mut buf = Vec::new();
        dg.encode(&mut buf);
        let decoded = UdpDatagram::decode(&mut Reader::new(&buf)).unwrap();
        assert!(decoded.payload.is_empty());
    }

    #[test]
    fn rejects_undersized_length_field() {
        let mut buf = Vec::new();
        UdpDatagram::new(Port::new(1), Port::new(2), vec![]).encode(&mut buf);
        buf[4] = 0;
        buf[5] = 4; // length 4 < 8
        assert!(UdpDatagram::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn tolerates_padded_frames() {
        // Ethernet padding may leave trailing bytes beyond the UDP
        // length field; decode must not consume them as payload.
        let dg = UdpDatagram::new(Port::new(68), Port::new(67), vec![9; 10]);
        let mut buf = Vec::new();
        dg.encode(&mut buf);
        buf.extend_from_slice(&[0u8; 14]); // ethernet padding
        let decoded = UdpDatagram::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.payload.len(), 10);
    }
}
