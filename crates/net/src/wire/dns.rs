//! DNS / mDNS message encoding and decoding (RFC 1035 subset).
//!
//! Supports questions and a minimal answer section — enough for the
//! queries and announcements IoT devices emit during setup (A/AAAA
//! lookups of vendor cloud hosts, mDNS PTR/SRV/TXT service
//! announcements).

use bytes::BufMut;

use crate::error::WireError;
use crate::wire::Reader;

/// DNS record type A (IPv4 host address).
pub const TYPE_A: u16 = 1;
/// DNS record type PTR.
pub const TYPE_PTR: u16 = 12;
/// DNS record type TXT.
pub const TYPE_TXT: u16 = 16;
/// DNS record type AAAA (IPv6 host address).
pub const TYPE_AAAA: u16 = 28;
/// DNS record type SRV.
pub const TYPE_SRV: u16 = 33;
/// DNS class IN.
pub const CLASS_IN: u16 = 1;

/// A DNS question entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuestion {
    /// Queried name, dot-separated.
    pub name: String,
    /// Query type (A, AAAA, PTR, …).
    pub qtype: u16,
    /// Query class (`CLASS_IN`, possibly with the mDNS unicast-response
    /// bit 0x8000).
    pub qclass: u16,
}

/// A DNS resource record (answer/authority/additional).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    /// Record name, dot-separated.
    pub name: String,
    /// Record type.
    pub rtype: u16,
    /// Record class.
    pub rclass: u16,
    /// Time to live.
    pub ttl: u32,
    /// Raw RDATA bytes.
    pub rdata: Vec<u8>,
}

/// A DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction identifier (0 for mDNS).
    pub id: u16,
    /// Whether this is a response (QR bit).
    pub response: bool,
    /// Whether recursion is desired.
    pub recursion_desired: bool,
    /// Question entries.
    pub questions: Vec<DnsQuestion>,
    /// Answer records.
    pub answers: Vec<DnsRecord>,
}

impl DnsMessage {
    /// A standard recursive A query for `name`.
    pub fn query_a(id: u16, name: &str) -> Self {
        DnsMessage {
            id,
            response: false,
            recursion_desired: true,
            questions: vec![DnsQuestion {
                name: name.to_string(),
                qtype: TYPE_A,
                qclass: CLASS_IN,
            }],
            answers: Vec::new(),
        }
    }

    /// An mDNS PTR query for a service name such as
    /// `_hap._tcp.local` (id 0, no recursion).
    pub fn mdns_query_ptr(service: &str) -> Self {
        DnsMessage {
            id: 0,
            response: false,
            recursion_desired: false,
            questions: vec![DnsQuestion {
                name: service.to_string(),
                qtype: TYPE_PTR,
                qclass: CLASS_IN,
            }],
            answers: Vec::new(),
        }
    }

    /// An mDNS announcement (response) advertising `instance` under
    /// `service` with a TXT record.
    pub fn mdns_announce(service: &str, instance: &str) -> Self {
        let full = format!("{instance}.{service}");
        DnsMessage {
            id: 0,
            response: true,
            recursion_desired: false,
            questions: Vec::new(),
            answers: vec![
                DnsRecord {
                    name: service.to_string(),
                    rtype: TYPE_PTR,
                    rclass: CLASS_IN | 0x8000, // cache-flush
                    ttl: 4500,
                    rdata: encode_name_bytes(&full),
                },
                DnsRecord {
                    name: full,
                    rtype: TYPE_TXT,
                    rclass: CLASS_IN | 0x8000,
                    ttl: 4500,
                    rdata: b"\x09md=device".to_vec(),
                },
            ],
        }
    }

    /// A response answering `question_name` with an A record.
    pub fn response_a(id: u16, question_name: &str, addr: std::net::Ipv4Addr) -> Self {
        DnsMessage {
            id,
            response: true,
            recursion_desired: true,
            questions: vec![DnsQuestion {
                name: question_name.to_string(),
                qtype: TYPE_A,
                qclass: CLASS_IN,
            }],
            answers: vec![DnsRecord {
                name: question_name.to_string(),
                rtype: TYPE_A,
                rclass: CLASS_IN,
                ttl: 300,
                rdata: addr.octets().to_vec(),
            }],
        }
    }

    /// Encodes the message.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u16(self.id);
        let mut flags = 0u16;
        if self.response {
            flags |= 0x8000;
        }
        if self.recursion_desired {
            flags |= 0x0100;
        }
        out.put_u16(flags);
        out.put_u16(self.questions.len() as u16);
        out.put_u16(self.answers.len() as u16);
        out.put_u16(0); // authority
        out.put_u16(0); // additional
        for q in &self.questions {
            encode_name(&q.name, out);
            out.put_u16(q.qtype);
            out.put_u16(q.qclass);
        }
        for a in &self.answers {
            encode_name(&a.name, out);
            out.put_u16(a.rtype);
            out.put_u16(a.rclass);
            out.put_u32(a.ttl);
            out.put_u16(a.rdata.len() as u16);
            out.put_slice(&a.rdata);
        }
    }

    /// Decodes a message from the remainder of `r`.
    ///
    /// Name-compression pointers are followed one level (sufficient
    /// for the frames this crate emits and typical capture content).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on short input.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let full = r.read_rest().to_vec();
        let mut cur = Reader::new(&full);
        let id = cur.read_u16("dns id")?;
        let flags = cur.read_u16("dns flags")?;
        let qcount = cur.read_u16("dns question count")?;
        let acount = cur.read_u16("dns answer count")?;
        let _ns = cur.read_u16("dns authority count")?;
        let _ar = cur.read_u16("dns additional count")?;
        let mut questions = Vec::new();
        for _ in 0..qcount {
            let name = decode_name(&mut cur, &full)?;
            let qtype = cur.read_u16("dns qtype")?;
            let qclass = cur.read_u16("dns qclass")?;
            questions.push(DnsQuestion {
                name,
                qtype,
                qclass,
            });
        }
        let mut answers = Vec::new();
        for _ in 0..acount {
            let name = decode_name(&mut cur, &full)?;
            let rtype = cur.read_u16("dns rtype")?;
            let rclass = cur.read_u16("dns rclass")?;
            let ttl = cur.read_u32("dns ttl")?;
            let rdlen = cur.read_u16("dns rdlength")? as usize;
            let rdata = cur.read_slice("dns rdata", rdlen)?.to_vec();
            answers.push(DnsRecord {
                name,
                rtype,
                rclass,
                ttl,
                rdata,
            });
        }
        Ok(DnsMessage {
            id,
            response: flags & 0x8000 != 0,
            recursion_desired: flags & 0x0100 != 0,
            questions,
            answers,
        })
    }
}

/// Encodes a dot-separated name in DNS label format into `out`.
fn encode_name(name: &str, out: &mut Vec<u8>) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        out.put_u8(label.len() as u8);
        out.put_slice(label.as_bytes());
    }
    out.put_u8(0);
}

/// Encodes a name into a standalone byte vector (used for PTR rdata).
pub fn encode_name_bytes(name: &str) -> Vec<u8> {
    let mut out = Vec::new();
    encode_name(name, &mut out);
    out
}

/// Decodes a DNS name at the current reader position, following at most
/// one compression pointer into `full`.
fn decode_name(r: &mut Reader<'_>, full: &[u8]) -> Result<String, WireError> {
    let mut labels: Vec<String> = Vec::new();
    loop {
        let len = r.read_u8("dns label length")?;
        if len == 0 {
            break;
        }
        if len & 0xc0 == 0xc0 {
            let lo = r.read_u8("dns pointer low byte")?;
            let offset = ((u16::from(len & 0x3f) << 8) | u16::from(lo)) as usize;
            if offset >= full.len() {
                return Err(WireError::invalid_field("dns compression offset", offset));
            }
            let mut sub = Reader::new(&full[offset..]);
            // One level only: recursive pointers in pointed-to names are
            // rejected by the nested call reading a pointer again.
            let rest = decode_name_simple(&mut sub)?;
            if !rest.is_empty() {
                labels.push(rest);
            }
            break;
        }
        let bytes = r.read_slice("dns label", len as usize)?;
        labels.push(String::from_utf8_lossy(bytes).into_owned());
    }
    Ok(labels.join("."))
}

/// Decodes a name without following compression pointers.
fn decode_name_simple(r: &mut Reader<'_>) -> Result<String, WireError> {
    let mut labels: Vec<String> = Vec::new();
    loop {
        let len = r.read_u8("dns label length")?;
        if len == 0 {
            break;
        }
        if len & 0xc0 == 0xc0 {
            return Err(WireError::invalid_field("dns nested compression", len));
        }
        let bytes = r.read_slice("dns label", len as usize)?;
        labels.push(String::from_utf8_lossy(bytes).into_owned());
    }
    Ok(labels.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn query_round_trip() {
        let msg = DnsMessage::query_a(0x1234, "api.vendor-cloud.example.com");
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let decoded = DnsMessage::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn mdns_query_has_zero_id_no_rd() {
        let msg = DnsMessage::mdns_query_ptr("_hue._tcp.local");
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let decoded = DnsMessage::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.id, 0);
        assert!(!decoded.recursion_desired);
        assert_eq!(decoded.questions[0].qtype, TYPE_PTR);
    }

    #[test]
    fn mdns_announce_round_trip() {
        let msg = DnsMessage::mdns_announce("_ssdp._udp.local", "bridge-0042");
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let decoded = DnsMessage::decode(&mut Reader::new(&buf)).unwrap();
        assert!(decoded.response);
        assert_eq!(decoded.answers.len(), 2);
        assert_eq!(decoded.answers[0].rtype, TYPE_PTR);
        assert_eq!(decoded.answers[1].rtype, TYPE_TXT);
    }

    #[test]
    fn response_a_round_trip() {
        let msg = DnsMessage::response_a(9, "time.example.org", Ipv4Addr::new(10, 1, 2, 3));
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let decoded = DnsMessage::decode(&mut Reader::new(&buf)).unwrap();
        assert!(decoded.response);
        assert_eq!(decoded.answers[0].rdata, vec![10, 1, 2, 3]);
    }

    #[test]
    fn compression_pointer_is_followed() {
        // Hand-build: header, question "a.b", answer with name pointer
        // to offset 12 (the question name).
        let mut buf = Vec::new();
        buf.extend_from_slice(&[0, 1, 0x80, 0, 0, 1, 0, 1, 0, 0, 0, 0]);
        buf.extend_from_slice(&[1, b'a', 1, b'b', 0]); // "a.b" at offset 12
        buf.extend_from_slice(&TYPE_A.to_be_bytes());
        buf.extend_from_slice(&CLASS_IN.to_be_bytes());
        buf.extend_from_slice(&[0xc0, 12]); // pointer to offset 12
        buf.extend_from_slice(&TYPE_A.to_be_bytes());
        buf.extend_from_slice(&CLASS_IN.to_be_bytes());
        buf.extend_from_slice(&300u32.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let decoded = DnsMessage::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.answers[0].name, "a.b");
    }

    #[test]
    fn truncated_errors() {
        let msg = DnsMessage::query_a(1, "example.com");
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        buf.truncate(6);
        assert!(DnsMessage::decode(&mut Reader::new(&buf)).is_err());
    }
}
