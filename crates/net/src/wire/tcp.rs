//! TCP segment encoding and decoding (header + opaque payload).

use bytes::BufMut;

use crate::error::WireError;
use crate::packet::TcpFlags;
use crate::port::Port;
use crate::wire::Reader;

/// A TCP segment: header fields plus payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: Port,
    /// Destination port.
    pub dst_port: Port,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (meaningful when ACK set).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Maximum segment size option for SYN segments, if any.
    pub mss: Option<u16>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// A SYN segment opening a connection, advertising MSS 1460.
    pub fn syn(src_port: Port, dst_port: Port, seq: u32) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 29200,
            mss: Some(1460),
            payload: Vec::new(),
        }
    }

    /// A bare ACK segment.
    pub fn ack_only(src_port: Port, dst_port: Port, seq: u32, ack: u32) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags: TcpFlags {
                ack: true,
                ..TcpFlags::default()
            },
            window: 29200,
            mss: None,
            payload: Vec::new(),
        }
    }

    /// A PSH+ACK segment carrying `payload`.
    pub fn push(src_port: Port, dst_port: Port, seq: u32, ack: u32, payload: Vec<u8>) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..TcpFlags::default()
            },
            window: 29200,
            mss: None,
            payload,
        }
    }

    /// A FIN+ACK segment closing a connection.
    pub fn fin(src_port: Port, dst_port: Port, seq: u32, ack: u32) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags: TcpFlags {
                ack: true,
                fin: true,
                ..TcpFlags::default()
            },
            window: 29200,
            mss: None,
            payload: Vec::new(),
        }
    }

    /// Header length in bytes (20 + options).
    pub fn header_len(&self) -> usize {
        if self.mss.is_some() {
            24
        } else {
            20
        }
    }

    /// Encodes the segment (checksum left zero; link simulations do not
    /// verify TCP checksums).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let data_offset = (self.header_len() / 4) as u8;
        out.put_u16(self.src_port.as_u16());
        out.put_u16(self.dst_port.as_u16());
        out.put_u32(self.seq);
        out.put_u32(self.ack);
        out.put_u8(data_offset << 4);
        out.put_u8(self.flags.to_byte());
        out.put_u16(self.window);
        out.put_u16(0); // checksum (not computed)
        out.put_u16(0); // urgent pointer
        if let Some(mss) = self.mss {
            out.put_u8(2); // kind: MSS
            out.put_u8(4); // length
            out.put_u16(mss);
        }
        out.put_slice(&self.payload);
    }

    /// Decodes a segment from the remainder of `r`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on short input and
    /// [`WireError::InvalidField`] on a data offset below 5.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let src_port = Port::new(r.read_u16("tcp src port")?);
        let dst_port = Port::new(r.read_u16("tcp dst port")?);
        let seq = r.read_u32("tcp seq")?;
        let ack = r.read_u32("tcp ack")?;
        let offset_byte = r.read_u8("tcp data offset")?;
        let data_offset = (offset_byte >> 4) as usize;
        if data_offset < 5 {
            return Err(WireError::invalid_field("tcp data offset", data_offset));
        }
        let flags = TcpFlags::from_byte(r.read_u8("tcp flags")?);
        let window = r.read_u16("tcp window")?;
        let _checksum = r.read_u16("tcp checksum")?;
        let _urgent = r.read_u16("tcp urgent")?;
        let mut mss = None;
        let mut opt_remaining = data_offset * 4 - 20;
        while opt_remaining > 0 {
            let kind = r.read_u8("tcp option kind")?;
            opt_remaining -= 1;
            match kind {
                0 => break,
                1 => continue,
                2 => {
                    let len = r.read_u8("tcp mss length")?;
                    if len != 4 {
                        return Err(WireError::invalid_field("tcp mss length", len));
                    }
                    mss = Some(r.read_u16("tcp mss value")?);
                    opt_remaining = opt_remaining.saturating_sub(3);
                }
                _ => {
                    let len = r.read_u8("tcp option length")? as usize;
                    if len < 2 {
                        return Err(WireError::invalid_field("tcp option length", len));
                    }
                    r.skip("tcp option data", len - 2)?;
                    opt_remaining = opt_remaining.saturating_sub(len - 1);
                }
            }
        }
        let payload = r.read_rest().to_vec();
        Ok(TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            mss,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syn_round_trip() {
        let seg = TcpSegment::syn(Port::new(51000), Port::HTTPS, 1000);
        let mut buf = Vec::new();
        seg.encode(&mut buf);
        assert_eq!(buf.len(), 24);
        let decoded = TcpSegment::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, seg);
        assert!(decoded.flags.syn);
        assert_eq!(decoded.mss, Some(1460));
    }

    #[test]
    fn push_round_trip_preserves_payload() {
        let seg = TcpSegment::push(
            Port::new(51000),
            Port::HTTP,
            2000,
            555,
            b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        );
        let mut buf = Vec::new();
        seg.encode(&mut buf);
        let decoded = TcpSegment::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.payload, seg.payload);
        assert!(decoded.flags.psh);
        assert!(decoded.flags.ack);
    }

    #[test]
    fn fin_and_ack_flags() {
        let seg = TcpSegment::fin(Port::new(51000), Port::HTTP, 1, 2);
        assert!(seg.flags.fin && seg.flags.ack && !seg.flags.syn);
        let ack = TcpSegment::ack_only(Port::new(51000), Port::HTTP, 1, 2);
        assert!(ack.flags.ack && !ack.flags.fin);
        assert!(ack.payload.is_empty());
    }

    #[test]
    fn rejects_bad_data_offset() {
        let seg = TcpSegment::ack_only(Port::new(1), Port::new(2), 0, 0);
        let mut buf = Vec::new();
        seg.encode(&mut buf);
        buf[12] = 0x20; // data offset 2
        assert!(TcpSegment::decode(&mut Reader::new(&buf)).is_err());
    }
}
