//! DHCP / BOOTP message encoding and decoding (RFC 2131).
//!
//! The fingerprint distinguishes DHCP (a BOOTP message carrying the
//! message-type option 53) from plain BOOTP, so the decoder reports
//! both cases.

use std::net::Ipv4Addr;

use bytes::BufMut;

use crate::error::WireError;
use crate::mac::MacAddr;
use crate::wire::Reader;

/// DHCP magic cookie following the BOOTP fixed header.
pub const MAGIC_COOKIE: [u8; 4] = [0x63, 0x82, 0x53, 0x63];

/// DHCP message types (option 53 values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DhcpMessageType {
    /// Client broadcast to locate servers.
    Discover = 1,
    /// Server offer of parameters.
    Offer = 2,
    /// Client request of offered parameters.
    Request = 3,
    /// Client-to-server address decline.
    Decline = 4,
    /// Server acknowledgment.
    Ack = 5,
    /// Server negative acknowledgment.
    Nak = 6,
    /// Client release of its lease.
    Release = 7,
    /// Client asking for local configuration only.
    Inform = 8,
}

impl DhcpMessageType {
    /// Decodes an option 53 value.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => DhcpMessageType::Discover,
            2 => DhcpMessageType::Offer,
            3 => DhcpMessageType::Request,
            4 => DhcpMessageType::Decline,
            5 => DhcpMessageType::Ack,
            6 => DhcpMessageType::Nak,
            7 => DhcpMessageType::Release,
            8 => DhcpMessageType::Inform,
            _ => return None,
        })
    }
}

/// A DHCP option (subset used by IoT device setup flows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhcpOption {
    /// Option 53: message type.
    MessageType(DhcpMessageType),
    /// Option 50: requested IP address.
    RequestedIp(Ipv4Addr),
    /// Option 54: server identifier.
    ServerId(Ipv4Addr),
    /// Option 12: host name.
    HostName(String),
    /// Option 60: vendor class identifier.
    VendorClassId(String),
    /// Option 55: parameter request list.
    ParameterRequestList(Vec<u8>),
    /// Option 51: lease time in seconds.
    LeaseTime(u32),
    /// Any other option, kept as raw code + bytes.
    Other(u8, Vec<u8>),
}

/// A BOOTP/DHCP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpMessage {
    /// 1 = BOOTREQUEST, 2 = BOOTREPLY.
    pub op: u8,
    /// Transaction id.
    pub xid: u32,
    /// Seconds elapsed since the client began acquisition.
    pub secs: u16,
    /// Broadcast flag.
    pub broadcast: bool,
    /// Client address (when renewing).
    pub ciaddr: Ipv4Addr,
    /// "Your" address (server-assigned).
    pub yiaddr: Ipv4Addr,
    /// Server address.
    pub siaddr: Ipv4Addr,
    /// Client hardware address.
    pub chaddr: MacAddr,
    /// Options, in wire order. Empty for plain BOOTP.
    pub options: Vec<DhcpOption>,
}

impl DhcpMessage {
    /// A client DHCPDISCOVER broadcast.
    pub fn discover(chaddr: MacAddr, xid: u32, hostname: &str) -> Self {
        DhcpMessage {
            op: 1,
            xid,
            secs: 0,
            broadcast: false,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            siaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            options: vec![
                DhcpOption::MessageType(DhcpMessageType::Discover),
                DhcpOption::HostName(hostname.to_string()),
                DhcpOption::ParameterRequestList(vec![1, 3, 6, 15, 28]),
            ],
        }
    }

    /// A client DHCPREQUEST for `requested` from `server`.
    pub fn request(
        chaddr: MacAddr,
        xid: u32,
        requested: Ipv4Addr,
        server: Ipv4Addr,
        hostname: &str,
    ) -> Self {
        DhcpMessage {
            op: 1,
            xid,
            secs: 0,
            broadcast: false,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            siaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            options: vec![
                DhcpOption::MessageType(DhcpMessageType::Request),
                DhcpOption::RequestedIp(requested),
                DhcpOption::ServerId(server),
                DhcpOption::HostName(hostname.to_string()),
                DhcpOption::ParameterRequestList(vec![1, 3, 6, 15, 28]),
            ],
        }
    }

    /// A server DHCPOFFER or DHCPACK for `yiaddr`.
    pub fn server_reply(
        msg_type: DhcpMessageType,
        chaddr: MacAddr,
        xid: u32,
        yiaddr: Ipv4Addr,
        server: Ipv4Addr,
    ) -> Self {
        DhcpMessage {
            op: 2,
            xid,
            secs: 0,
            broadcast: false,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr,
            siaddr: server,
            chaddr,
            options: vec![
                DhcpOption::MessageType(msg_type),
                DhcpOption::ServerId(server),
                DhcpOption::LeaseTime(86400),
            ],
        }
    }

    /// A client DHCPINFORM from an already-configured address.
    pub fn inform(chaddr: MacAddr, xid: u32, ciaddr: Ipv4Addr) -> Self {
        DhcpMessage {
            op: 1,
            xid,
            secs: 0,
            broadcast: false,
            ciaddr,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            siaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            options: vec![DhcpOption::MessageType(DhcpMessageType::Inform)],
        }
    }

    /// A plain BOOTP request (no DHCP options at all).
    pub fn bootp_request(chaddr: MacAddr, xid: u32) -> Self {
        DhcpMessage {
            op: 1,
            xid,
            secs: 0,
            broadcast: false,
            ciaddr: Ipv4Addr::UNSPECIFIED,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            siaddr: Ipv4Addr::UNSPECIFIED,
            chaddr,
            options: Vec::new(),
        }
    }

    /// The message type, or `None` for plain BOOTP.
    pub fn message_type(&self) -> Option<DhcpMessageType> {
        self.options.iter().find_map(|o| match o {
            DhcpOption::MessageType(t) => Some(*t),
            _ => None,
        })
    }

    /// Encodes the message.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u8(self.op);
        out.put_u8(1); // htype: ethernet
        out.put_u8(6); // hlen
        out.put_u8(0); // hops
        out.put_u32(self.xid);
        out.put_u16(self.secs);
        out.put_u16(if self.broadcast { 0x8000 } else { 0 });
        out.put_slice(&self.ciaddr.octets());
        out.put_slice(&self.yiaddr.octets());
        out.put_slice(&self.siaddr.octets());
        out.put_slice(&Ipv4Addr::UNSPECIFIED.octets()); // giaddr
        out.put_slice(&self.chaddr.octets());
        out.put_slice(&[0u8; 10]); // chaddr padding
        out.put_slice(&[0u8; 64]); // sname
        out.put_slice(&[0u8; 128]); // file
        if !self.options.is_empty() {
            out.put_slice(&MAGIC_COOKIE);
            for opt in &self.options {
                match opt {
                    DhcpOption::MessageType(t) => {
                        out.put_slice(&[53, 1, *t as u8]);
                    }
                    DhcpOption::RequestedIp(ip) => {
                        out.put_slice(&[50, 4]);
                        out.put_slice(&ip.octets());
                    }
                    DhcpOption::ServerId(ip) => {
                        out.put_slice(&[54, 4]);
                        out.put_slice(&ip.octets());
                    }
                    DhcpOption::HostName(name) => {
                        out.put_u8(12);
                        out.put_u8(name.len() as u8);
                        out.put_slice(name.as_bytes());
                    }
                    DhcpOption::VendorClassId(id) => {
                        out.put_u8(60);
                        out.put_u8(id.len() as u8);
                        out.put_slice(id.as_bytes());
                    }
                    DhcpOption::ParameterRequestList(params) => {
                        out.put_u8(55);
                        out.put_u8(params.len() as u8);
                        out.put_slice(params);
                    }
                    DhcpOption::LeaseTime(t) => {
                        out.put_slice(&[51, 4]);
                        out.put_u32(*t);
                    }
                    DhcpOption::Other(code, data) => {
                        out.put_u8(*code);
                        out.put_u8(data.len() as u8);
                        out.put_slice(data);
                    }
                }
            }
            out.put_u8(255); // end option
        }
    }

    /// Decodes a message from the remainder of `r`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] on short input and
    /// [`WireError::InvalidField`] for a bad op code.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let op = r.read_u8("dhcp op")?;
        if op != 1 && op != 2 {
            return Err(WireError::invalid_field("dhcp op", op));
        }
        let _htype = r.read_u8("dhcp htype")?;
        let _hlen = r.read_u8("dhcp hlen")?;
        let _hops = r.read_u8("dhcp hops")?;
        let xid = r.read_u32("dhcp xid")?;
        let secs = r.read_u16("dhcp secs")?;
        let flags = r.read_u16("dhcp flags")?;
        let ciaddr = Ipv4Addr::from(r.read_array::<4>("dhcp ciaddr")?);
        let yiaddr = Ipv4Addr::from(r.read_array::<4>("dhcp yiaddr")?);
        let siaddr = Ipv4Addr::from(r.read_array::<4>("dhcp siaddr")?);
        let _giaddr = r.read_array::<4>("dhcp giaddr")?;
        let chaddr = MacAddr::new(r.read_array::<6>("dhcp chaddr")?);
        r.skip("dhcp chaddr padding", 10)?;
        r.skip("dhcp sname", 64)?;
        r.skip("dhcp file", 128)?;
        let mut options = Vec::new();
        if r.remaining() >= 4 && r.peek_array::<4>() == Some(MAGIC_COOKIE) {
            r.skip("dhcp magic", 4)?;
            loop {
                if r.remaining() == 0 {
                    break;
                }
                let code = r.read_u8("dhcp option code")?;
                match code {
                    0 => continue, // pad
                    255 => break,  // end
                    _ => {
                        let len = r.read_u8("dhcp option length")? as usize;
                        let data = r.read_slice("dhcp option data", len)?;
                        options.push(match code {
                            53 if len == 1 => match DhcpMessageType::from_u8(data[0]) {
                                Some(t) => DhcpOption::MessageType(t),
                                None => DhcpOption::Other(53, data.to_vec()),
                            },
                            50 if len == 4 => DhcpOption::RequestedIp(Ipv4Addr::new(
                                data[0], data[1], data[2], data[3],
                            )),
                            54 if len == 4 => DhcpOption::ServerId(Ipv4Addr::new(
                                data[0], data[1], data[2], data[3],
                            )),
                            12 => DhcpOption::HostName(String::from_utf8_lossy(data).into_owned()),
                            60 => DhcpOption::VendorClassId(
                                String::from_utf8_lossy(data).into_owned(),
                            ),
                            55 => DhcpOption::ParameterRequestList(data.to_vec()),
                            51 if len == 4 => DhcpOption::LeaseTime(u32::from_be_bytes([
                                data[0], data[1], data[2], data[3],
                            ])),
                            _ => DhcpOption::Other(code, data.to_vec()),
                        });
                    }
                }
            }
        }
        Ok(DhcpMessage {
            op,
            xid,
            secs,
            broadcast: flags & 0x8000 != 0,
            ciaddr,
            yiaddr,
            siaddr,
            chaddr,
            options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, 7])
    }

    #[test]
    fn discover_round_trip() {
        let msg = DhcpMessage::discover(mac(), 0xdeadbeef, "smart-plug");
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let decoded = DhcpMessage::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(decoded.message_type(), Some(DhcpMessageType::Discover));
    }

    #[test]
    fn request_carries_requested_ip_and_server() {
        let msg = DhcpMessage::request(
            mac(),
            7,
            Ipv4Addr::new(192, 168, 1, 50),
            Ipv4Addr::new(192, 168, 1, 1),
            "cam",
        );
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let decoded = DhcpMessage::decode(&mut Reader::new(&buf)).unwrap();
        assert!(decoded
            .options
            .contains(&DhcpOption::RequestedIp(Ipv4Addr::new(192, 168, 1, 50))));
        assert!(decoded
            .options
            .contains(&DhcpOption::ServerId(Ipv4Addr::new(192, 168, 1, 1))));
    }

    #[test]
    fn server_ack_round_trip() {
        let msg = DhcpMessage::server_reply(
            DhcpMessageType::Ack,
            mac(),
            7,
            Ipv4Addr::new(192, 168, 1, 50),
            Ipv4Addr::new(192, 168, 1, 1),
        );
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let decoded = DhcpMessage::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.op, 2);
        assert_eq!(decoded.yiaddr, Ipv4Addr::new(192, 168, 1, 50));
        assert_eq!(decoded.message_type(), Some(DhcpMessageType::Ack));
    }

    #[test]
    fn plain_bootp_has_no_message_type() {
        let msg = DhcpMessage::bootp_request(mac(), 42);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let decoded = DhcpMessage::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.message_type(), None);
        assert!(decoded.options.is_empty());
    }

    #[test]
    fn fixed_header_is_236_bytes_without_options() {
        let msg = DhcpMessage::bootp_request(mac(), 42);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert_eq!(buf.len(), 236);
    }

    #[test]
    fn rejects_bad_op() {
        let msg = DhcpMessage::bootp_request(mac(), 42);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        buf[0] = 9;
        assert!(DhcpMessage::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn message_type_round_trip_all_values() {
        for v in 1u8..=8 {
            let t = DhcpMessageType::from_u8(v).unwrap();
            assert_eq!(t as u8, v);
        }
        assert!(DhcpMessageType::from_u8(0).is_none());
        assert!(DhcpMessageType::from_u8(9).is_none());
    }
}
