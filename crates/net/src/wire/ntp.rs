//! NTP (RFC 5905) packet encoding and decoding — the 48-byte fixed
//! header, which is all IoT clients exchange during time sync.

use bytes::BufMut;

use crate::error::WireError;
use crate::wire::Reader;

/// NTP mode: client request.
pub const MODE_CLIENT: u8 = 3;
/// NTP mode: server response.
pub const MODE_SERVER: u8 = 4;

/// A 48-byte NTP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NtpPacket {
    /// Leap indicator (2 bits).
    pub leap: u8,
    /// Protocol version (3 bits), typically 4.
    pub version: u8,
    /// Association mode (3 bits): 3 = client, 4 = server.
    pub mode: u8,
    /// Stratum of the clock (0 for client requests).
    pub stratum: u8,
    /// Poll interval (log2 seconds).
    pub poll: i8,
    /// Clock precision (log2 seconds).
    pub precision: i8,
    /// Transmit timestamp in NTP 64-bit format.
    pub transmit_timestamp: u64,
}

impl NtpPacket {
    /// A version-4 client request with the given transmit timestamp.
    pub fn client(transmit_timestamp: u64) -> Self {
        NtpPacket {
            leap: 0,
            version: 4,
            mode: MODE_CLIENT,
            stratum: 0,
            poll: 6,
            precision: -20,
            transmit_timestamp,
        }
    }

    /// A stratum-2 server response.
    pub fn server(transmit_timestamp: u64) -> Self {
        NtpPacket {
            leap: 0,
            version: 4,
            mode: MODE_SERVER,
            stratum: 2,
            poll: 6,
            precision: -20,
            transmit_timestamp,
        }
    }

    /// Encodes the packet (48 bytes).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u8((self.leap << 6) | (self.version << 3) | self.mode);
        out.put_u8(self.stratum);
        out.put_i8(self.poll);
        out.put_i8(self.precision);
        out.put_u32(0); // root delay
        out.put_u32(0); // root dispersion
        out.put_u32(0); // reference id
        out.put_u64(0); // reference timestamp
        out.put_u64(0); // origin timestamp
        out.put_u64(0); // receive timestamp
        out.put_u64(self.transmit_timestamp);
    }

    /// Decodes a packet.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if fewer than 48 bytes remain
    /// and [`WireError::InvalidField`] for an invalid mode.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let first = r.read_u8("ntp li/vn/mode")?;
        let mode = first & 0x07;
        if mode == 0 || mode > 7 {
            return Err(WireError::invalid_field("ntp mode", mode));
        }
        let stratum = r.read_u8("ntp stratum")?;
        let poll = r.read_u8("ntp poll")? as i8;
        let precision = r.read_u8("ntp precision")? as i8;
        r.skip("ntp root fields", 12)?;
        r.skip("ntp timestamps", 24)?;
        let transmit_timestamp = r.read_u64("ntp transmit timestamp")?;
        Ok(NtpPacket {
            leap: first >> 6,
            version: (first >> 3) & 0x07,
            mode,
            stratum,
            poll,
            precision,
            transmit_timestamp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_round_trip() {
        let pkt = NtpPacket::client(0xdead_beef_0000_0001);
        let mut buf = Vec::new();
        pkt.encode(&mut buf);
        assert_eq!(buf.len(), 48);
        let decoded = NtpPacket::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, pkt);
    }

    #[test]
    fn server_mode() {
        let pkt = NtpPacket::server(7);
        let mut buf = Vec::new();
        pkt.encode(&mut buf);
        let decoded = NtpPacket::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded.mode, MODE_SERVER);
        assert_eq!(decoded.stratum, 2);
    }

    #[test]
    fn rejects_mode_zero() {
        let mut buf = Vec::new();
        NtpPacket::client(0).encode(&mut buf);
        buf[0] &= !0x07; // mode 0
        assert!(NtpPacket::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn truncated_errors() {
        let mut buf = Vec::new();
        NtpPacket::client(0).encode(&mut buf);
        buf.truncate(40);
        assert!(matches!(
            NtpPacket::decode(&mut Reader::new(&buf)),
            Err(WireError::Truncated { .. })
        ));
    }
}
