//! Network packet substrate for the IoT Sentinel reproduction.
//!
//! This crate stands in for the capture plane of the paper's lab setup
//! (tcpdump on the Security Gateway's WiFi and Ethernet interfaces). It
//! provides:
//!
//! * a **decoded packet model** ([`Packet`]) carrying exactly the
//!   header-level information the IoT Sentinel fingerprint consumes
//!   (link/network/transport/application protocols, IP options, sizes,
//!   ports, addresses — never payload semantics),
//! * a **wire codec** ([`wire`]) that encodes and decodes real byte
//!   frames for Ethernet, ARP, IPv4/IPv6, TCP/UDP, ICMP/ICMPv6, DHCP/BOOTP,
//!   DNS/mDNS, SSDP, NTP, EAPoL, HTTP and TLS client hellos,
//! * **pcap I/O** ([`pcap`]) in the classic libpcap format so captures can
//!   be persisted and exchanged, and
//! * a **capture monitor** ([`capture`]) that watches a frame stream for
//!   previously unseen MAC addresses and collects each new device's setup
//!   traffic until the packet rate decays, mirroring §IV-A of the paper
//!   ("the end of the setup phase can be automatically identified by a
//!   decrease in the rate of packets sent").
//!
//! Device behaviour simulation lives in `sentinel-devices`; feature
//! extraction lives in `sentinel-fingerprint`. Both operate on the types
//! defined here.
//!
//! # Example
//!
//! ```
//! use sentinel_net::wire;
//! use sentinel_net::{MacAddr, SimTime};
//!
//! // Compose a DHCP Discover as raw bytes, then decode it back.
//! let device = MacAddr::new([0x13, 0x73, 0x74, 0x7e, 0xa9, 0xc2]);
//! let frame = wire::compose::dhcp_discover(device, 0x1234, "sensor");
//! let packet = wire::decode_frame(&frame, SimTime::ZERO)?;
//! assert_eq!(packet.src_mac(), device);
//! assert!(packet.app().is_some());
//! # Ok::<(), sentinel_net::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod error;
pub mod mac;
pub mod packet;
pub mod pcap;
pub mod port;
pub mod protocol;
pub mod time;
pub mod wire;

pub use capture::{
    CaptureMonitor, CapturedFrame, DeviceCapture, SetupDetectorConfig, TraceCapture,
};
pub use error::WireError;
pub use mac::MacAddr;
pub use packet::{AppPayload, LinkHeader, NetHeader, Packet, PacketBuilder, TransportHeader};
pub use port::{Port, PortClass};
pub use protocol::{AppProtocol, EtherType, IpProtocol};
pub use time::{SimDuration, SimTime};
