//! Transport ports and IANA port classes.
//!
//! The last two features of the IoT Sentinel fingerprint (Table I) map
//! source and destination ports to their IANA *class* rather than the raw
//! number:
//!
//! * no port → 0
//! * well-known `[0, 1023]` → 1
//! * registered `[1024, 49151]` → 2
//! * dynamic `[49152, 65535]` → 3

use std::fmt;

/// A transport-layer (TCP/UDP) port number.
///
/// # Examples
///
/// ```
/// use sentinel_net::{Port, PortClass};
///
/// assert_eq!(Port::HTTP.class(), PortClass::WellKnown);
/// assert_eq!(Port::new(51000).class(), PortClass::Dynamic);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Port(u16);

impl Port {
    /// HTTP (80/tcp).
    pub const HTTP: Port = Port(80);
    /// HTTPS (443/tcp).
    pub const HTTPS: Port = Port(443);
    /// DNS (53/udp).
    pub const DNS: Port = Port(53);
    /// DHCP server (67/udp); also the BOOTP server port.
    pub const DHCP_SERVER: Port = Port(67);
    /// DHCP client (68/udp); also the BOOTP client port.
    pub const DHCP_CLIENT: Port = Port(68);
    /// NTP (123/udp).
    pub const NTP: Port = Port(123);
    /// SSDP (1900/udp).
    pub const SSDP: Port = Port(1900);
    /// Multicast DNS (5353/udp).
    pub const MDNS: Port = Port(5353);

    /// Creates a port from its raw number.
    pub const fn new(raw: u16) -> Self {
        Port(raw)
    }

    /// The raw port number.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// The IANA class of this port.
    pub const fn class(self) -> PortClass {
        match self.0 {
            0..=1023 => PortClass::WellKnown,
            1024..=49151 => PortClass::Registered,
            _ => PortClass::Dynamic,
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for Port {
    fn from(raw: u16) -> Self {
        Port(raw)
    }
}

impl From<Port> for u16 {
    fn from(port: Port) -> u16 {
        port.0
    }
}

/// IANA port class, encoded exactly as the paper's feature values.
///
/// `PortClass::feature_value` yields the integer used in fingerprint
/// vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PortClass {
    /// The packet carries no transport port (feature value 0).
    #[default]
    None,
    /// Well-known range `[0, 1023]` (feature value 1).
    WellKnown,
    /// Registered range `[1024, 49151]` (feature value 2).
    Registered,
    /// Dynamic/private range `[49152, 65535]` (feature value 3).
    Dynamic,
}

impl PortClass {
    /// Classifies an optional port, mapping `None` to
    /// [`PortClass::None`].
    ///
    /// # Examples
    ///
    /// ```
    /// use sentinel_net::{Port, PortClass};
    ///
    /// assert_eq!(PortClass::of(None), PortClass::None);
    /// assert_eq!(PortClass::of(Some(Port::DNS)), PortClass::WellKnown);
    /// ```
    pub fn of(port: Option<Port>) -> PortClass {
        port.map_or(PortClass::None, Port::class)
    }

    /// The integer feature value used in fingerprints (0–3).
    pub const fn feature_value(self) -> u32 {
        match self {
            PortClass::None => 0,
            PortClass::WellKnown => 1,
            PortClass::Registered => 2,
            PortClass::Dynamic => 3,
        }
    }
}

impl fmt::Display for PortClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PortClass::None => "none",
            PortClass::WellKnown => "well-known",
            PortClass::Registered => "registered",
            PortClass::Dynamic => "dynamic",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_boundaries_match_paper() {
        assert_eq!(Port::new(0).class(), PortClass::WellKnown);
        assert_eq!(Port::new(1023).class(), PortClass::WellKnown);
        assert_eq!(Port::new(1024).class(), PortClass::Registered);
        assert_eq!(Port::new(49151).class(), PortClass::Registered);
        assert_eq!(Port::new(49152).class(), PortClass::Dynamic);
        assert_eq!(Port::new(65535).class(), PortClass::Dynamic);
    }

    #[test]
    fn feature_values_match_paper() {
        assert_eq!(PortClass::None.feature_value(), 0);
        assert_eq!(PortClass::WellKnown.feature_value(), 1);
        assert_eq!(PortClass::Registered.feature_value(), 2);
        assert_eq!(PortClass::Dynamic.feature_value(), 3);
    }

    #[test]
    fn well_known_service_constants() {
        assert_eq!(Port::HTTP.as_u16(), 80);
        assert_eq!(Port::HTTPS.as_u16(), 443);
        assert_eq!(Port::DNS.as_u16(), 53);
        assert_eq!(Port::DHCP_SERVER.as_u16(), 67);
        assert_eq!(Port::DHCP_CLIENT.as_u16(), 68);
        assert_eq!(Port::NTP.as_u16(), 123);
        assert_eq!(Port::SSDP.as_u16(), 1900);
        assert_eq!(Port::MDNS.as_u16(), 5353);
    }

    #[test]
    fn conversions() {
        let p: Port = 8080u16.into();
        let raw: u16 = p.into();
        assert_eq!(raw, 8080);
        assert_eq!(p.to_string(), "8080");
    }
}
