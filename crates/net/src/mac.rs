//! MAC (EUI-48) addresses.
//!
//! IoT Sentinel keys every per-device data structure — captures,
//! fingerprints, enforcement rules — on the device's MAC address
//! (§V: "We identify traffic to/from any device using device MAC
//! addresses, assuming that IoT devices use static MAC addresses").

use std::fmt;
use std::str::FromStr;

use crate::error::WireError;

/// A 48-bit IEEE 802 MAC address.
///
/// # Examples
///
/// ```
/// use sentinel_net::MacAddr;
///
/// let mac: MacAddr = "13-73-74-7E-A9-C2".parse()?;
/// assert_eq!(mac.to_string(), "13:73:74:7e:a9:c2");
/// assert!(!mac.is_broadcast());
/// # Ok::<(), sentinel_net::WireError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as a placeholder (e.g. ARP target
    /// hardware address in requests).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// The six octets of the address.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Whether the group bit (least-significant bit of the first octet)
    /// is set; broadcast and multicast addresses are both "group"
    /// addresses.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Whether the locally-administered bit is set.
    pub fn is_locally_administered(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// The 24-bit Organizationally Unique Identifier (vendor prefix).
    pub fn oui(self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }

    /// Builds a unicast address from a vendor OUI and a 24-bit device
    /// suffix. The group bit of the OUI is cleared so the result is
    /// always unicast.
    ///
    /// # Examples
    ///
    /// ```
    /// use sentinel_net::MacAddr;
    ///
    /// let mac = MacAddr::from_oui([0xb0, 0xc5, 0x54], 7);
    /// assert_eq!(mac.oui(), [0xb0, 0xc5, 0x54]);
    /// assert!(!mac.is_multicast());
    /// ```
    pub fn from_oui(oui: [u8; 3], suffix: u32) -> Self {
        let s = suffix.to_be_bytes();
        MacAddr([oui[0] & !0x01, oui[1], oui[2], s[1], s[2], s[3]])
    }

    /// The IPv4 multicast MAC for a given group address suffix, as used
    /// by SSDP (239.255.255.250 → `01:00:5e:7f:ff:fa`) and mDNS
    /// (224.0.0.251 → `01:00:5e:00:00:fb`).
    pub fn ipv4_multicast(group_low23: u32) -> Self {
        let b = group_low23.to_be_bytes();
        MacAddr([0x01, 0x00, 0x5e, b[1] & 0x7f, b[2], b[3]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl FromStr for MacAddr {
    type Err = WireError;

    /// Parses `aa:bb:cc:dd:ee:ff` or `AA-BB-CC-DD-EE-FF`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = if s.contains(':') {
            s.split(':').collect()
        } else {
            s.split('-').collect()
        };
        if parts.len() != 6 {
            return Err(WireError::invalid_field("mac address", s));
        }
        let mut octets = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            octets[i] =
                u8::from_str_radix(p, 16).map_err(|_| WireError::invalid_field("mac octet", p))?;
        }
        Ok(MacAddr(octets))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl AsRef<[u8]> for MacAddr {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_colon_and_dash_formats() {
        let a: MacAddr = "13:73:74:7e:a9:c2".parse().unwrap();
        let b: MacAddr = "13-73-74-7E-A9-C2".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.octets(), [0x13, 0x73, 0x74, 0x7e, 0xa9, 0xc2]);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("12:34:56".parse::<MacAddr>().is_err());
        assert!("zz:zz:zz:zz:zz:zz".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_and_multicast_flags() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let unicast = MacAddr::new([0x00, 0x11, 0x22, 0x33, 0x44, 0x55]);
        assert!(!unicast.is_broadcast());
        assert!(!unicast.is_multicast());
        let mcast = MacAddr::ipv4_multicast(0x7ffffa);
        assert!(mcast.is_multicast());
        assert!(!mcast.is_broadcast());
    }

    #[test]
    fn from_oui_is_unicast_and_keeps_prefix() {
        let mac = MacAddr::from_oui([0xff, 0xaa, 0xbb], 0x123456);
        assert!(!mac.is_multicast());
        assert_eq!(mac.octets()[1..3], [0xaa, 0xbb]);
        assert_eq!(mac.octets()[3..6], [0x12, 0x34, 0x56]);
    }

    #[test]
    fn ssdp_and_mdns_multicast_macs() {
        // 239.255.255.250 low 23 bits -> 7f:ff:fa
        assert_eq!(
            MacAddr::ipv4_multicast(0x007f_fffa).to_string(),
            "01:00:5e:7f:ff:fa"
        );
        // 224.0.0.251 low 23 bits -> 00:00:fb
        assert_eq!(
            MacAddr::ipv4_multicast(0xfb).to_string(),
            "01:00:5e:00:00:fb"
        );
    }

    #[test]
    fn display_round_trips() {
        let mac = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        let parsed: MacAddr = mac.to_string().parse().unwrap();
        assert_eq!(mac, parsed);
    }
}
