//! Protocol identifiers across the link, network, transport and
//! application layers.
//!
//! These enums name the 16 protocols the IoT Sentinel fingerprint flags
//! (Table I): ARP and LLC at the link layer; IP, ICMP, ICMPv6 and EAPoL at
//! the network layer; TCP and UDP at the transport layer; HTTP, HTTPS,
//! DHCP, BOOTP, SSDP, DNS, MDNS and NTP at the application layer.

use std::fmt;

use crate::port::Port;

/// EtherType values relevant to the IoT Sentinel capture plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// 0x0800 — IPv4.
    Ipv4,
    /// 0x86dd — IPv6.
    Ipv6,
    /// 0x0806 — Address Resolution Protocol.
    Arp,
    /// 0x888e — EAP over LAN (802.1X), used by the WPA2 handshake.
    Eapol,
    /// Any other EtherType, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Decodes a raw EtherType value.
    pub fn from_u16(raw: u16) -> EtherType {
        match raw {
            0x0800 => EtherType::Ipv4,
            0x86dd => EtherType::Ipv6,
            0x0806 => EtherType::Arp,
            0x888e => EtherType::Eapol,
            other => EtherType::Other(other),
        }
    }

    /// The wire value of this EtherType.
    pub fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Arp => 0x0806,
            EtherType::Eapol => 0x888e,
            EtherType::Other(v) => v,
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => f.write_str("IPv4"),
            EtherType::Ipv6 => f.write_str("IPv6"),
            EtherType::Arp => f.write_str("ARP"),
            EtherType::Eapol => f.write_str("EAPoL"),
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
        }
    }
}

/// IP protocol numbers relevant to the capture plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// 1 — ICMP.
    Icmp,
    /// 6 — TCP.
    Tcp,
    /// 17 — UDP.
    Udp,
    /// 58 — ICMPv6.
    Icmpv6,
    /// 2 — IGMP (seen during multicast joins; carried but not a
    /// fingerprint feature of its own).
    Igmp,
    /// Any other protocol number, preserved verbatim.
    Other(u8),
}

impl IpProtocol {
    /// Decodes a raw protocol number.
    pub fn from_u8(raw: u8) -> IpProtocol {
        match raw {
            1 => IpProtocol::Icmp,
            2 => IpProtocol::Igmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            58 => IpProtocol::Icmpv6,
            other => IpProtocol::Other(other),
        }
    }

    /// The wire value of this protocol.
    pub fn as_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Igmp => 2,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Icmpv6 => 58,
            IpProtocol::Other(v) => v,
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => f.write_str("ICMP"),
            IpProtocol::Igmp => f.write_str("IGMP"),
            IpProtocol::Tcp => f.write_str("TCP"),
            IpProtocol::Udp => f.write_str("UDP"),
            IpProtocol::Icmpv6 => f.write_str("ICMPv6"),
            IpProtocol::Other(v) => write!(f, "proto{v}"),
        }
    }
}

/// The eight application-layer protocols the fingerprint flags.
///
/// Classification is primarily payload-driven when a codec recognised the
/// payload, with port-based fallback via [`AppProtocol::from_ports`] —
/// the same information a passive monitor has for encrypted traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppProtocol {
    /// Plain HTTP.
    Http,
    /// TLS on port 443.
    Https,
    /// DHCP (a BOOTP message carrying option 53).
    Dhcp,
    /// BOOTP framing (always set when DHCP is set; may appear alone for
    /// plain BOOTP).
    Bootp,
    /// Simple Service Discovery Protocol (UPnP) on 1900/udp.
    Ssdp,
    /// Unicast DNS on 53/udp (or tcp).
    Dns,
    /// Multicast DNS on 5353/udp.
    Mdns,
    /// Network Time Protocol on 123/udp.
    Ntp,
}

impl AppProtocol {
    /// All application protocols in fingerprint feature order.
    pub const ALL: [AppProtocol; 8] = [
        AppProtocol::Http,
        AppProtocol::Https,
        AppProtocol::Dhcp,
        AppProtocol::Bootp,
        AppProtocol::Ssdp,
        AppProtocol::Dns,
        AppProtocol::Mdns,
        AppProtocol::Ntp,
    ];

    /// Port-based classification fallback used when the payload itself
    /// was not decodable (e.g. encrypted or unparsed traffic). Returns
    /// `None` when neither port names a known service.
    ///
    /// # Examples
    ///
    /// ```
    /// use sentinel_net::{AppProtocol, Port};
    ///
    /// let proto = AppProtocol::from_ports(Some(Port::new(51234)), Some(Port::HTTPS));
    /// assert_eq!(proto, Some(AppProtocol::Https));
    /// ```
    pub fn from_ports(src: Option<Port>, dst: Option<Port>) -> Option<AppProtocol> {
        let hit = |p: Option<Port>| -> Option<AppProtocol> {
            match p?.as_u16() {
                80 | 8080 => Some(AppProtocol::Http),
                443 | 8443 => Some(AppProtocol::Https),
                53 => Some(AppProtocol::Dns),
                67 | 68 => Some(AppProtocol::Dhcp),
                123 => Some(AppProtocol::Ntp),
                1900 => Some(AppProtocol::Ssdp),
                5353 => Some(AppProtocol::Mdns),
                _ => None,
            }
        };
        // Destination port is the stronger signal for client traffic.
        hit(dst).or_else(|| hit(src))
    }
}

impl fmt::Display for AppProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AppProtocol::Http => "HTTP",
            AppProtocol::Https => "HTTPS",
            AppProtocol::Dhcp => "DHCP",
            AppProtocol::Bootp => "BOOTP",
            AppProtocol::Ssdp => "SSDP",
            AppProtocol::Dns => "DNS",
            AppProtocol::Mdns => "MDNS",
            AppProtocol::Ntp => "NTP",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethertype_round_trip() {
        for raw in [0x0800u16, 0x86dd, 0x0806, 0x888e, 0x1234] {
            assert_eq!(EtherType::from_u16(raw).as_u16(), raw);
        }
    }

    #[test]
    fn ip_protocol_round_trip() {
        for raw in [1u8, 2, 6, 17, 58, 200] {
            assert_eq!(IpProtocol::from_u8(raw).as_u8(), raw);
        }
    }

    #[test]
    fn port_classification_prefers_destination() {
        // src 53 (DNS), dst 80 (HTTP): a response from a DNS server to an
        // ephemeral port never looks like this, but the tie-break is
        // deterministic and destination wins.
        let p = AppProtocol::from_ports(Some(Port::DNS), Some(Port::HTTP));
        assert_eq!(p, Some(AppProtocol::Http));
    }

    #[test]
    fn port_classification_falls_back_to_source() {
        let p = AppProtocol::from_ports(Some(Port::NTP), Some(Port::new(50000)));
        assert_eq!(p, Some(AppProtocol::Ntp));
    }

    #[test]
    fn unknown_ports_classify_as_none() {
        assert_eq!(
            AppProtocol::from_ports(Some(Port::new(50000)), Some(Port::new(40000))),
            None
        );
        assert_eq!(AppProtocol::from_ports(None, None), None);
    }

    #[test]
    fn all_lists_eight_protocols_in_feature_order() {
        assert_eq!(AppProtocol::ALL.len(), 8);
        assert_eq!(AppProtocol::ALL[0], AppProtocol::Http);
        assert_eq!(AppProtocol::ALL[7], AppProtocol::Ntp);
    }
}
